//! Root crate of the MobiVine reproduction workspace.
//!
//! This crate exists to host cross-crate integration tests (in `tests/`)
//! and runnable examples (in `examples/`). The actual functionality lives
//! in the member crates; see [`mobivine`] for the core middleware layer.
//!
//! Re-exports the workspace crates under stable names so examples and
//! integration tests can reach everything through one dependency.

pub use mobivine;
pub use mobivine_android as android;
pub use mobivine_apps as apps;
pub use mobivine_device as device;
pub use mobivine_mplugin as mplugin;
pub use mobivine_proxydl as proxydl;
pub use mobivine_s60 as s60;
pub use mobivine_telemetry as telemetry;
pub use mobivine_webview as webview;
