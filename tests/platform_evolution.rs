//! The maintenance experiment (paper §5 Q3) as an executable test:
//! Android 1.0 changed `addProximityAlert` to take a `PendingIntent`;
//! the native app breaks, the proxy app runs unchanged.

use std::sync::Arc;

use mobivine::registry::Mobivine;
use mobivine_android::activity::ActivityHost;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_apps::logic::AppEvents;
use mobivine_apps::native_android::NativeAndroidApp;
use mobivine_apps::proxy_app::ProxyWorkforceApp;
use mobivine_apps::scenario::{Scenario, ScenarioOutcome};

fn run_native(version: SdkVersion) -> ScenarioOutcome {
    let scenario = Scenario::two_site_patrol(1);
    let platform = AndroidPlatform::new(scenario.device.clone(), version);
    let events = AppEvents::new();
    let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = ActivityHost::new(app, platform.new_context());
    host.launch().expect("activity launches either way");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    ScenarioOutcome::collect(&scenario)
}

fn run_proxy(version: SdkVersion) -> ScenarioOutcome {
    let scenario = Scenario::two_site_patrol(1);
    let platform = AndroidPlatform::new(scenario.device.clone(), version);
    let events = AppEvents::new();
    let mut app = ProxyWorkforceApp::new(
        Mobivine::for_android(platform.new_context()),
        scenario.config.clone(),
        events,
    )
    .unwrap();
    app.start().expect("proxy app starts on every SDK");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    ScenarioOutcome::collect(&scenario)
}

#[test]
fn native_app_works_on_m5_but_breaks_on_1_0() {
    let expected = ScenarioOutcome::expected_two_site();
    assert_eq!(run_native(SdkVersion::M5Rc15), expected);
    let broken = run_native(SdkVersion::V1_0);
    assert_ne!(broken, expected);
    // Specifically: no alert ever fires, so nothing reaches the server.
    assert_eq!(broken.activity_entries, 0);
    assert_eq!(broken.completed_tasks, 0);
}

#[test]
fn proxy_app_works_unchanged_on_both_sdk_versions() {
    let expected = ScenarioOutcome::expected_two_site();
    assert_eq!(run_proxy(SdkVersion::M5Rc15), expected);
    assert_eq!(run_proxy(SdkVersion::V1_0), expected);
}

#[test]
fn the_version_difference_is_visible_at_the_platform_level() {
    use mobivine_android::intent::Intent;
    use mobivine_android::pending_intent::PendingIntent;
    use mobivine_device::Device;

    // Old overload exists on m5-rc15, gone in 1.0.
    let m5 = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context();
    assert!(m5
        .location_manager()
        .add_proximity_alert(28.5, 77.3, 10.0, -1, Intent::new("x"))
        .is_ok());
    let v1 = AndroidPlatform::new(Device::builder().build(), SdkVersion::V1_0).new_context();
    assert!(v1
        .location_manager()
        .add_proximity_alert(28.5, 77.3, 10.0, -1, Intent::new("x"))
        .is_err());
    assert!(v1
        .location_manager()
        .add_proximity_alert_pending(
            28.5,
            77.3,
            10.0,
            -1,
            PendingIntent::get_broadcast(Intent::new("x"))
        )
        .is_ok());
}
