//! Concurrency stress for the sharded metrics registry.
//!
//! A Prometheus scrape walks every shard and sorts the series; heavy
//! recording keeps hammering the same shards from several threads while
//! scrapes run. The registry must neither deadlock nor block recorders
//! behind a scrape in a way that loses increments: after the dust
//! settles, every single increment must be visible, and the scraper
//! must have kept producing expositions throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use mobivine_telemetry::metrics::{Labels, MetricsRegistry};

const RECORDERS: usize = 4;
const INCREMENTS_PER_RECORDER: u64 = 21_000;
const SERIES_PER_RECORDER: u64 = 3;

fn series_labels(recorder: usize, series: u64) -> Labels {
    Labels::new(&[
        ("recorder", &format!("r{recorder}")),
        ("series", &format!("s{series}")),
    ])
}

#[test]
fn scrape_concurrent_with_heavy_recording_loses_nothing() {
    let registry = MetricsRegistry::shared();
    let done = Arc::new(AtomicBool::new(false));

    let scrapes_seen = thread::scope(|scope| {
        let recorders: Vec<_> = (0..RECORDERS)
            .map(|recorder| {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    // Resolve handles once (the cached-instrument
                    // pattern), then record through them — the shape of
                    // the traced hot path.
                    let series: Vec<_> = (0..SERIES_PER_RECORDER)
                        .map(|s| {
                            let labels = series_labels(recorder, s);
                            (
                                registry.counter("stress_total", &labels),
                                registry.histogram("stress_ms", &labels),
                            )
                        })
                        .collect();
                    for i in 0..INCREMENTS_PER_RECORDER {
                        let (counter, histogram) = &series[(i % SERIES_PER_RECORDER) as usize];
                        counter.inc();
                        histogram.record(i % 64);
                    }
                })
            })
            .collect();

        // The scraper races the recorders for the registry's shards
        // until every recorder has finished.
        let scraper = {
            let registry = Arc::clone(&registry);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut scrapes = 0u64;
                while !done.load(Ordering::Acquire) {
                    let exposition = registry.render_prometheus();
                    std::hint::black_box(&exposition);
                    scrapes += 1;
                }
                scrapes
            })
        };

        for handle in recorders {
            handle.join().expect("recorder thread completes");
        }
        done.store(true, Ordering::Release);
        scraper.join().expect("scraper thread completes")
    });
    assert!(scrapes_seen > 0, "the scraper must have run at least once");

    // Exact accounting: every increment from every recorder landed,
    // scrape interleaving notwithstanding.
    let expected = INCREMENTS_PER_RECORDER / SERIES_PER_RECORDER;
    for recorder in 0..RECORDERS {
        for s in 0..SERIES_PER_RECORDER {
            let labels = series_labels(recorder, s);
            assert_eq!(
                registry.counter_value("stress_total", &labels),
                expected,
                "recorder {recorder} series {s}"
            );
            assert_eq!(registry.histogram("stress_ms", &labels).count(), expected);
        }
    }
    let exposition = registry.render_prometheus();
    assert!(exposition.contains("stress_total"));
    assert!(exposition.contains("stress_ms"));
}
