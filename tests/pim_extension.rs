//! The paper's future-work interfaces (§7: "extend MobiVine
//! implementation to cover other platform interfaces like those related
//! to calendaring and contact list information"), implemented as
//! extension features: uniform Contacts and Calendar proxies on Android
//! and S60.

use mobivine::api::{CalendarProxy, CallProxy, ContactsProxy};
use mobivine::error::ProxyErrorKind;
use mobivine::registry::Mobivine;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

fn populated_device() -> Device {
    let device = Device::builder().build();
    device
        .contacts()
        .add("Region Supervisor", &["+91-98-SUPERVISOR"], &[]);
    device.contacts().add(
        "Dispatcher Desk",
        &["+91-11-5550100"],
        &["desk@wfm.example"],
    );
    device
        .calendar()
        .add("Morning shift", 0, 4 * 3_600_000, "Depot 4")
        .unwrap();
    device
        .calendar()
        .add("Safety briefing", 5 * 3_600_000, 6 * 3_600_000, "HQ")
        .unwrap();
    device
}

#[test]
fn contacts_uniform_across_android_and_s60() {
    let device = populated_device();
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let android_found = Mobivine::for_android(android.new_context())
        .proxy::<dyn ContactsProxy>()
        .unwrap()
        .find_contacts("supervisor")
        .unwrap();
    let s60_found = Mobivine::for_s60(S60Platform::new(device))
        .proxy::<dyn ContactsProxy>()
        .unwrap()
        .find_contacts("supervisor")
        .unwrap();
    assert_eq!(android_found, s60_found);
    assert_eq!(android_found.len(), 1);
    assert_eq!(android_found[0].numbers, vec!["+91-98-SUPERVISOR"]);
}

#[test]
fn calendar_uniform_across_android_and_s60() {
    let device = populated_device();
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let a = Mobivine::for_android(android.new_context())
        .proxy::<dyn CalendarProxy>()
        .unwrap()
        .entries_between(0, 4 * 3_600_000)
        .unwrap();
    let s = Mobivine::for_s60(S60Platform::new(device))
        .proxy::<dyn CalendarProxy>()
        .unwrap()
        .entries_between(0, 4 * 3_600_000)
        .unwrap();
    assert_eq!(a, s);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].title, "Morning shift");
}

#[test]
fn pim_not_bound_on_webview_is_a_clean_unsupported_error() {
    let device = populated_device();
    let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
    let runtime = Mobivine::for_webview(std::sync::Arc::new(WebView::new(platform.new_context())));
    assert!(!runtime.supports("Contacts"));
    assert!(!runtime.supports("Calendar"));
    assert_eq!(
        runtime.proxy::<dyn ContactsProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
    assert_eq!(
        runtime.proxy::<dyn CalendarProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
}

#[test]
fn pim_lookup_drives_the_call_proxy() {
    // The combination the future work motivates: look up the supervisor
    // in contacts, then call them — all through uniform proxies.
    let device = populated_device();
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context());
    let supervisor = runtime
        .proxy::<dyn ContactsProxy>()
        .unwrap()
        .find_contacts("supervisor")
        .unwrap()
        .remove(0);
    let call = runtime.proxy::<dyn CallProxy>().unwrap();
    let id = call.make_a_call(&supervisor.numbers[0]).unwrap();
    device.advance_ms(10_000);
    assert_eq!(
        call.call_progress(id).unwrap(),
        mobivine::types::CallProgress::Connected
    );
}
