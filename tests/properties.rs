//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;

use mobivine_device::geo::GeoPoint;
use mobivine_device::sms::{segment_message, SmsEncoding};
use mobivine_proxydl::xml::{escape, unescape, XmlNode};
use mobivine_proxydl::{
    MethodSpec, PlatformBinding, PlatformId, PropertySpec, ProxyDescriptor, SemanticPlane,
};
use mobivine_webview::{JsValue, WireBuf};

fn arb_latitude() -> impl Strategy<Value = f64> {
    -85.0..85.0f64
}

/// Arbitrary XML trees: names from a safe alphabet, attribute values and
/// text with entity-needing characters, bounded depth and fanout.
/// Text is only attached to leaves because the renderer emits
/// mixed-content text on its own line, which the parser then trims.
fn arb_xml_node() -> impl Strategy<Value = mobivine_proxydl::xml::XmlNode> {
    use mobivine_proxydl::xml::XmlNode;
    let name = "[a-zA-Z][a-zA-Z0-9_-]{0,8}";
    let value = "[ -~&&[^\\\\]]{0,20}"; // printable ascii
    let leaf = (name, proptest::collection::vec((name, value), 0..3), value).prop_map(
        |(name, attrs, text)| {
            let mut node = XmlNode::new(&name).text(text.trim());
            for (k, v) in attrs {
                node = node.attr(&k, &v);
            }
            node
        },
    );
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            name,
            proptest::collection::vec((name, value), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut node = XmlNode::new(&name);
                for (k, v) in attrs {
                    node = node.attr(&k, &v);
                }
                for child in children {
                    node = node.child(child);
                }
                node
            })
    })
}

fn arb_longitude() -> impl Strategy<Value = f64> {
    -179.0..179.0f64
}

/// Arbitrary JavaScript values: every scalar shape (NaN included, via
/// the unconstrained `f64`), empty strings, and nested arrays/objects
/// of bounded depth — the full domain the WebView wire arena must
/// carry without loss.
fn arb_js_value() -> impl Strategy<Value = JsValue> {
    let leaf = (0u8..5, any::<f64>(), "[ -~]{0,12}").prop_map(|(tag, n, s)| match tag {
        0 => JsValue::Undefined,
        1 => JsValue::Null,
        2 => JsValue::Bool(n.to_bits() & 1 == 1),
        3 => JsValue::Number(n),
        _ => JsValue::Str(s),
    });
    leaf.prop_recursive(3, 32, 4, |inner| {
        (
            any::<bool>(),
            proptest::collection::vec(inner.clone(), 0..4),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4),
        )
            .prop_map(|(as_object, items, entries)| {
                if as_object {
                    JsValue::Object(entries.into_iter().collect())
                } else {
                    JsValue::Array(items)
                }
            })
    })
}

/// Structural equality that treats NaN as equal to itself — the wire
/// arena round-trips the bit pattern, but `f64::eq` would reject it.
fn js_eq(a: &JsValue, b: &JsValue) -> bool {
    match (a, b) {
        (JsValue::Number(x), JsValue::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        (JsValue::Array(xs), JsValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| js_eq(x, y))
        }
        (JsValue::Object(xs), JsValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && js_eq(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    // ---- Geodesic invariants -------------------------------------

    #[test]
    fn distance_is_symmetric(
        lat1 in arb_latitude(), lon1 in arb_longitude(),
        lat2 in arb_latitude(), lon2 in arb_longitude(),
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d1 = a.distance_m(&b);
        let d2 = b.distance_m(&a);
        prop_assert!((d1 - d2).abs() < 1e-6);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn distance_to_self_is_zero(lat in arb_latitude(), lon in arb_longitude()) {
        let p = GeoPoint::new(lat, lon);
        prop_assert!(p.distance_m(&p) < 1e-6);
    }

    #[test]
    fn destination_travels_the_requested_distance(
        lat in arb_latitude(), lon in arb_longitude(),
        bearing in 0.0..360.0f64,
        distance in 1.0..100_000.0f64,
    ) {
        let start = GeoPoint::new(lat, lon);
        let end = start.destination(bearing, distance);
        prop_assert!(end.is_valid(), "{end:?}");
        let measured = start.distance_m(&end);
        // Spherical round-off tolerance: 0.1% or 0.5 m.
        let tolerance = (distance * 0.001).max(0.5);
        prop_assert!((measured - distance).abs() < tolerance,
            "asked {distance}, measured {measured}");
    }

    #[test]
    fn destination_bearing_round_trip(
        lat in -60.0..60.0f64, lon in arb_longitude(),
        bearing in 0.0..360.0f64,
        distance in 100.0..50_000.0f64,
    ) {
        let start = GeoPoint::new(lat, lon);
        let end = start.destination(bearing, distance);
        let measured_bearing = start.bearing_deg(&end);
        let diff = (measured_bearing - bearing).abs();
        let wrapped = diff.min(360.0 - diff);
        prop_assert!(wrapped < 0.5, "asked {bearing}, measured {measured_bearing}");
    }

    #[test]
    fn triangle_inequality_holds(
        lat1 in arb_latitude(), lon1 in arb_longitude(),
        lat2 in arb_latitude(), lon2 in arb_longitude(),
        lat3 in arb_latitude(), lon3 in arb_longitude(),
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        // Great-circle distances satisfy the triangle inequality up to
        // floating error.
        prop_assert!(a.distance_m(&c) <= a.distance_m(&b) + b.distance_m(&c) + 1e-3);
    }

    // ---- GSM segmentation ----------------------------------------

    #[test]
    fn segments_reassemble_to_original(body in ".{0,500}") {
        let segments = segment_message(&body);
        prop_assert_eq!(segments.parts.concat(), body);
    }

    #[test]
    fn ascii_bodies_use_gsm7_within_limits(body in "[a-zA-Z0-9 .,!?-]{1,400}") {
        let segments = segment_message(&body);
        prop_assert_eq!(segments.encoding, SmsEncoding::Gsm7);
        let n_chars = body.chars().count();
        if n_chars <= 160 {
            prop_assert_eq!(segments.count(), 1);
        } else {
            prop_assert_eq!(segments.count(), n_chars.div_ceil(153));
            for part in &segments.parts {
                prop_assert!(part.chars().count() <= 153);
            }
        }
    }

    #[test]
    fn segment_count_is_monotone_in_length(len_a in 0usize..400, len_b in 0usize..400) {
        let a = segment_message(&"x".repeat(len_a));
        let b = segment_message(&"x".repeat(len_b));
        if len_a <= len_b {
            prop_assert!(a.count() <= b.count());
        }
    }

    // ---- XML round trips -----------------------------------------

    #[test]
    fn escape_unescape_round_trips(s in ".{0,200}") {
        prop_assert_eq!(unescape(&escape(&s)).unwrap(), s);
    }

    #[test]
    fn xml_text_content_round_trips(text in "[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,100}") {
        let node = XmlNode::new("t").text(text.trim());
        let parsed = XmlNode::parse(&node.render()).unwrap();
        prop_assert_eq!(parsed.text, text.trim());
    }

    #[test]
    fn xml_attribute_values_round_trip(value in "[^\u{0}-\u{1f}]{0,80}") {
        let node = XmlNode::new("t").attr("v", &value);
        let parsed = XmlNode::parse(&node.render()).unwrap();
        prop_assert_eq!(parsed.attribute("v"), Some(value.as_str()));
    }

    // ---- Arbitrary XML trees -------------------------------------

    #[test]
    fn arbitrary_xml_trees_round_trip(root in arb_xml_node()) {
        let text = root.render();
        let parsed = XmlNode::parse(&text).unwrap();
        prop_assert_eq!(parsed, root);
    }

    // ---- Proxy descriptors ---------------------------------------

    #[test]
    fn generated_descriptors_round_trip_through_xml(
        n_methods in 1usize..5,
        n_params in 0usize..6,
        n_props in 0usize..4,
    ) {
        let mut semantic = SemanticPlane::new("Gen");
        for m in 0..n_methods {
            let mut method = MethodSpec::new(&format!("method{m}"));
            for p in 0..n_params {
                method = method.param(&format!("param{p}"), &format!("meaning {p}"));
            }
            semantic = semantic.method(method);
        }
        let mut binding = PlatformBinding::new(PlatformId::Android, "GenImpl");
        for p in 0..n_props {
            binding = binding.property(
                PropertySpec::new(&format!("prop{p}"), "string", "generated")
                    .default_value("v"),
            );
        }
        let descriptor = ProxyDescriptor::new("Gen", "Generated", semantic)
            .syntax(mobivine_proxydl::SyntacticBinding::new(
                mobivine_proxydl::Language::Java,
            ))
            .binding(binding);
        let text = descriptor.to_xml().render();
        let back = ProxyDescriptor::parse(&text).unwrap();
        prop_assert_eq!(back, descriptor);
    }

    // ---- Packaging round trips -----------------------------------

    #[test]
    fn jar_wire_format_round_trips(
        entries in proptest::collection::vec(
            ("[a-z]{1,12}(/[a-zA-Z0-9_.]{1,16}){0,3}", proptest::collection::vec(any::<u8>(), 0..200)),
            0..10,
        ),
    ) {
        use mobivine_s60::packaging::Jar;
        let mut jar = Jar::new("gen.jar");
        for (path, content) in &entries {
            // Duplicate paths with different content conflict; skip
            // re-adds so the property focuses on the wire format.
            if !jar.contains(path) {
                jar.add_entry(path, content.clone()).unwrap();
            }
        }
        let back = Jar::from_bytes(&jar.to_bytes()).unwrap();
        prop_assert_eq!(back, jar);
    }

    #[test]
    fn jad_render_parse_round_trips(
        name in "[A-Za-z][A-Za-z0-9 ]{0,20}",
        vendor in "[A-Za-z][A-Za-z0-9]{0,12}",
        major in 0u8..10, minor in 0u8..10,
        size in 0usize..1_000_000,
    ) {
        use mobivine_s60::packaging::{Jar, JadDescriptor};
        let jar = Jar::new("x.jar");
        let mut jad = JadDescriptor::for_jar(&jar, name.trim(), &vendor, &format!("{major}.{minor}"));
        jad.jar_size = size;
        jad.permissions = vec!["javax.microedition.location.Location".to_owned()];
        let back = JadDescriptor::parse(&jad.render()).unwrap();
        prop_assert_eq!(back, jad);
    }

    // ---- Movement models -----------------------------------------

    #[test]
    fn waypoint_position_never_overshoots_route(
        distance_m in 100.0..5_000.0f64,
        speed in 1.0..30.0f64,
        t_ms in 0u64..1_000_000,
    ) {
        use mobivine_device::movement::MovementModel;
        let start = GeoPoint::new(28.5, 77.3);
        let end = start.destination(90.0, distance_m);
        let mut model = MovementModel::waypoints(vec![start, end], speed);
        let position = model.position_at(t_ms, start);
        // The walker is always between start and end (within route
        // length + small slack from the spherical interpolation).
        prop_assert!(start.distance_m(&position) <= distance_m + 1.0);
        prop_assert!(end.distance_m(&position) <= distance_m + 1.0);
    }

    // ---- Property bag --------------------------------------------

    #[test]
    fn property_bag_accepts_exactly_the_allowed_values(
        allowed in proptest::collection::vec("[a-z]{1,8}", 1..5),
        candidate in "[a-z]{1,8}",
    ) {
        use mobivine::property::{PropertyBag, PropertyValue};
        let allowed_refs: Vec<&str> = allowed.iter().map(String::as_str).collect();
        let bag = PropertyBag::new(
            PlatformBinding::new(PlatformId::Android, "X").property(
                PropertySpec::new("p", "string", "").allowed(&allowed_refs),
            ),
        );
        let result = bag.set("p", PropertyValue::str(&candidate));
        prop_assert_eq!(result.is_ok(), allowed.contains(&candidate));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---- Event queue ordering ------------------------------------

    #[test]
    fn events_always_fire_in_timestamp_order(times in proptest::collection::vec(0u64..10_000, 1..40)) {
        use mobivine_device::event::EventQueue;
        use std::sync::{Arc, Mutex};
        let queue = EventQueue::new();
        let fired = Arc::new(Mutex::new(Vec::new()));
        for t in &times {
            let sink = Arc::clone(&fired);
            queue.schedule_at(*t, "prop", move |at| sink.lock().unwrap().push(at));
        }
        queue.run_until(10_000);
        let fired = fired.lock().unwrap();
        prop_assert_eq!(fired.len(), times.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    }

    // ---- Proximity geometry --------------------------------------

    #[test]
    fn proximity_fires_iff_route_enters_radius(
        offset_m in 0.0..1_000.0f64,
        radius_m in 50.0..400.0f64,
    ) {
        use mobivine::api::LocationProxy;
        use mobivine::registry::Mobivine;
        use mobivine_android::{AndroidPlatform, SdkVersion};
        use mobivine_device::movement::MovementModel;
        use mobivine_device::Device;
        use std::sync::{Arc, Mutex};

        // The agent walks east along a line offset `offset_m` north of
        // the region center; it passes within the radius iff
        // offset < radius.
        let center = GeoPoint::new(28.5355, 77.3910);
        let start = center.destination(0.0, offset_m).destination(270.0, 1_000.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 20.0))
            .build();
        device.gps().set_noise_enabled(false);
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Mobivine::for_android(platform.new_context());
        let fired = Arc::new(Mutex::new(false));
        let sink = Arc::clone(&fired);
        runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .add_proximity_alert(
                center.latitude,
                center.longitude,
                0.0,
                radius_m,
                -1,
                Arc::new(move |e: &mobivine::types::ProximityEvent| {
                    if e.entering {
                        *sink.lock().unwrap() = true;
                    }
                }),
            )
            .unwrap();
        device.advance_ms(120_000);
        let fired = *fired.lock().unwrap();
        // Exclude the knife-edge where the closest approach is within
        // one 1-second check step (20 m) of the radius.
        if (offset_m - radius_m).abs() > 25.0 {
            prop_assert_eq!(fired, offset_m < radius_m,
                "offset {}, radius {}", offset_m, radius_m);
        }
    }
}

proptest! {
    // ---- Telemetry label canonicalisation ------------------------

    /// `Labels::new` canonicalises: keys come out strictly sorted and,
    /// when the input repeats a key, the *last* value wins. Building a
    /// label set from its own canonical pairs is a fixpoint. (The
    /// deterministic mirror of this property lives in the telemetry
    /// crate's `labels_invariant_randomized` unit test.)
    #[test]
    fn labels_are_sorted_and_last_duplicate_wins(
        pairs in proptest::collection::vec(("[a-c]{1,2}", "[a-z]{0,4}"), 0..8)
    ) {
        use mobivine_telemetry::Labels;
        let refs: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let labels = Labels::new(&refs);
        let keys: Vec<&str> = labels.pairs().iter().map(|(k, _)| k.as_str()).collect();
        prop_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys not strictly sorted: {:?}", keys
        );
        for (key, value) in labels.pairs() {
            let expected = refs
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .expect("every output key appeared in the input");
            prop_assert_eq!(value.as_str(), expected, "later duplicate must win");
        }
        prop_assert_eq!(labels.pairs().len(), keys.len());
        let canonical: Vec<(&str, &str)> = labels
            .pairs()
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        prop_assert_eq!(&Labels::new(&canonical), &labels, "canonical form is a fixpoint");
    }

    /// The sharded registry's exporters are insertion-order (and
    /// shard-layout) independent: registering the same series in any
    /// permutation renders byte-identical Prometheus text.
    #[test]
    fn prometheus_export_is_insertion_order_independent(
        order in proptest::collection::vec(0usize..12, 12..13)
    ) {
        use mobivine_telemetry::{Labels, MetricsRegistry};
        let mut order = order;
        let series: Vec<Labels> = (0..12)
            .map(|i| Labels::call("Location", &format!("method{i:02}"), "android"))
            .collect();

        let sorted = MetricsRegistry::new();
        for labels in &series {
            sorted.counter("proxy_calls_total", labels).inc();
        }

        let shuffled = MetricsRegistry::new();
        order.extend(0..12); // ensure every series is registered
        for &i in &order {
            shuffled.counter("proxy_calls_total", &series[i]).inc();
        }
        // Equalise the counts so only ordering is under test.
        for labels in &series {
            let want = shuffled.counter_value("proxy_calls_total", labels);
            sorted.counter("proxy_calls_total", labels).add(want - 1);
        }
        prop_assert_eq!(sorted.render_prometheus(), shuffled.render_prometheus());
    }
}

proptest! {
    // ---- WebView wire arena --------------------------------------

    /// Every JavaScript value survives `JsValue → WireBuf → WireValue →
    /// JsValue` unchanged, and a cleared (capacity-retaining) arena
    /// encodes it identically — the invariant behind reusing one
    /// scratch buffer pair per bridge handle. (The deterministic mirror
    /// lives in the wire module's `random_js_values_round_trip_deterministically`.)
    #[test]
    fn js_values_round_trip_through_the_wire_arena(value in arb_js_value()) {
        let mut buf = WireBuf::new();
        let node = buf.push_js(&value);
        prop_assert!(js_eq(&buf.view(node).to_js(), &value));
        buf.clear();
        let node = buf.push_js(&value);
        prop_assert!(js_eq(&buf.view(node).to_js(), &value));
    }

    /// Batch framing: N call frames in produce N reply frames out, in
    /// order, each carrying either its result or its own error code —
    /// one entry failing never disturbs its neighbours.
    #[test]
    fn batch_framing_preserves_order_and_error_codes(
        methods in proptest::collection::vec("[a-z]{1,8}", 1..8),
        failures in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        use mobivine_webview::ErrorCode;
        let mut call = WireBuf::new();
        for method in &methods {
            let args = call.empty_args();
            call.push_frame(method, args);
        }
        prop_assert_eq!(call.frame_count(), methods.len());
        for (i, method) in methods.iter().enumerate() {
            prop_assert_eq!(call.frame(i).0, method.as_str());
        }
        let mut reply = WireBuf::new();
        for i in 0..methods.len() {
            if failures[i % failures.len()] {
                reply.push_err_frame(ErrorCode::Deadline, &format!("entry {i}"));
            } else {
                let node = reply.push_number(i as f64);
                reply.push_ok_frame(node);
            }
        }
        prop_assert_eq!(reply.reply_count(), methods.len());
        let replies = reply.replies();
        prop_assert_eq!(replies.len(), methods.len());
        for i in 0..methods.len() {
            let failed = failures[i % failures.len()];
            match replies.get(i).expect("one reply per frame") {
                Ok(value) => {
                    prop_assert!(!failed, "entry {} lost its error", i);
                    prop_assert_eq!(value.as_number(), Some(i as f64));
                }
                Err((code, message)) => {
                    prop_assert!(failed, "entry {} failed spuriously", i);
                    prop_assert_eq!(code, ErrorCode::Deadline);
                    prop_assert_eq!(message, format!("entry {i}").as_str());
                }
            }
        }
    }
}

proptest! {
    // ---- Write-ahead journal -------------------------------------

    /// Recovery is idempotent on a clean journal: scanning the durable
    /// image twice returns identical record sequences, and every
    /// fsynced payload comes back byte-identical in append order. (The
    /// deterministic mirror lives in `tests/journal_recovery.rs`,
    /// which actually executes under the offline proptest stub.)
    #[test]
    fn journal_recovery_is_idempotent(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..20,
        ),
    ) {
        use mobivine::{Journal, JournalMetrics, JournalPolicy, Lsn};
        let mut journal = Journal::new(&JournalPolicy::default(), JournalMetrics::shared());
        for payload in &payloads {
            journal.append(payload);
            journal.fsync();
        }
        let first = journal.recover(Lsn(0));
        let second = journal.recover(Lsn(0));
        prop_assert_eq!(&first, &second, "a clean scan must be repeatable");
        prop_assert_eq!(first.records.len(), payloads.len());
        for (record, payload) in first.records.iter().zip(&payloads) {
            prop_assert_eq!(&record.payload, payload);
        }
    }

    /// Whatever prefix of a mid-write frame reaches the disk queue
    /// before the crash, recovery surfaces exactly the fsynced records:
    /// a partial tail is truncated (and flagged torn), a complete tail
    /// frame commits, and nothing in between ever leaks. A second scan
    /// after the truncation reproduces the first byte-for-byte.
    #[test]
    fn torn_tails_never_surface_uncommitted_records(
        committed in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            0..12,
        ),
        tail in proptest::collection::vec(any::<u8>(), 0..48),
        torn_keep in any::<usize>(),
    ) {
        use mobivine::{Journal, JournalMetrics, JournalPolicy, Lsn};
        let mut journal = Journal::new(&JournalPolicy::default(), JournalMetrics::shared());
        for payload in &committed {
            journal.append(payload);
        }
        journal.fsync();
        journal.append(&tail);
        let frame_len = journal.volatile_len();
        let keep = torn_keep % (frame_len + 1);
        journal.crash(Some(keep));
        let recovery = journal.recover(Lsn(0));
        let tail_committed = keep == frame_len;
        prop_assert_eq!(
            recovery.records.len(),
            committed.len() + usize::from(tail_committed),
        );
        for (record, payload) in recovery.records.iter().zip(&committed) {
            prop_assert_eq!(&record.payload, payload);
        }
        if tail_committed {
            prop_assert_eq!(&recovery.records[committed.len()].payload, &tail);
        }
        prop_assert_eq!(
            recovery.torn_records,
            u64::from(keep > 0 && !tail_committed),
            "a partial frame is torn, an empty or complete one is not"
        );
        let again = journal.recover(Lsn(0));
        prop_assert_eq!(again.records, recovery.records);
        prop_assert_eq!(again.torn_records, 0, "the tail was already truncated");
    }

    /// A crash-stormed durable server converges to the same state as a
    /// crash-free one fed the identical request stream: wipe +
    /// checkpoint + replay must be invisible in the state digest, and
    /// every effect lands exactly once no matter which crash kind hits
    /// which key.
    #[test]
    fn crash_recovery_converges_to_the_crash_free_digest(
        seed in any::<u64>(),
        ops in 1u64..24,
        crash_at in 0u64..24,
        kind_tag in 0u8..3,
    ) {
        use mobivine::IdempotencyKey;
        use mobivine_apps::server::{DurabilityConfig, WfmServer};
        use mobivine_device::fault::{CrashKind, CrashSchedule};
        use mobivine_device::net::HttpRequest;
        use mobivine_device::Device;
        use std::sync::Arc;

        let kind = match kind_tag {
            0 => CrashKind::TornWrite,
            1 => CrashKind::BeforeEffect,
            _ => CrashKind::AfterEffect,
        };
        let crash_key = IdempotencyKey::derive(seed, 1, 1, crash_at % ops);
        let schedule = CrashSchedule::new([(crash_key.0, kind)]);
        schedule.arm();

        let drive = |crash: Option<Arc<CrashSchedule>>| -> (Device, WfmServer) {
            let device = Device::builder().build();
            let server = WfmServer::durable(DurabilityConfig {
                checkpoint_every: 1,
                crash,
                ..Default::default()
            });
            server.install(device.network(), "wfm.example");
            for op in 0..ops {
                let key = IdempotencyKey::derive(seed, 1, 1, op);
                let body = format!(
                    "{{\"agent_id\":1,\"latitude\":28.5,\"longitude\":77.{op},\"at_ms\":{}}}",
                    1_000 + op,
                );
                let url = format!(
                    "http://wfm.example/report-location?idem={}",
                    key.to_hex()
                );
                let post = || {
                    let req = HttpRequest::post(&url, body.clone().into_bytes()).unwrap();
                    device.network().execute(&req).unwrap().0.status
                };
                if post() == 503 {
                    assert_eq!(post(), 200, "the retry after a crash commits");
                }
            }
            (device, server)
        };
        let (_stormed_device, stormed) = drive(Some(Arc::clone(&schedule)));
        let (_clean_device, clean) = drive(None);
        prop_assert_eq!(stormed.state_digest(), clean.state_digest());
        prop_assert_eq!(stormed.counts().tracks, ops);
        let ledger = stormed.recovery_snapshot().expect("durable server");
        prop_assert_eq!(ledger.duplicates(), 0, "exactly-once under the crash");
        prop_assert_eq!(ledger.recoveries, 1);
    }
}

proptest! {
    // ---- Overload admission invariants ---------------------------

    /// However acquire/release interleave, the bulkhead never lets more
    /// than `cap` permits exist at once, and `in_flight` always equals
    /// the number of live permits.
    #[test]
    fn bulkhead_in_flight_never_exceeds_cap(
        cap in 1u32..6,
        ops in proptest::collection::vec(any::<bool>(), 0..48),
    ) {
        use mobivine::overload::Bulkhead;
        let bulkhead = Bulkhead::new(cap);
        let mut permits = Vec::new();
        for acquire in ops {
            if acquire {
                match bulkhead.try_acquire() {
                    Some(permit) => permits.push(permit),
                    None => prop_assert_eq!(
                        bulkhead.in_flight(), cap,
                        "a refusal means the bulkhead is exactly full"
                    ),
                }
            } else {
                permits.pop();
            }
            prop_assert!(bulkhead.in_flight() <= cap);
            prop_assert_eq!(bulkhead.in_flight() as usize, permits.len());
        }
        drop(permits);
        prop_assert_eq!(bulkhead.in_flight(), 0, "all permits returned");
    }

    /// Two controllers on the same seed fed the same observation/admit
    /// interleaving make identical shed decisions — decision streams
    /// are a pure function of (seed, history).
    #[test]
    fn admission_decisions_replay_per_seed(
        seed in any::<u64>(),
        history in proptest::collection::vec((0u64..500, 1u64..300), 1..60),
    ) {
        use mobivine::overload::AdmissionController;
        let a = AdmissionController::new(seed);
        let b = AdmissionController::new(seed);
        for (sojourn, target) in &history {
            a.observe(*sojourn, *target);
            b.observe(*sojourn, *target);
            prop_assert_eq!(a.admit(), b.admit());
            prop_assert_eq!(a.rate(), b.rate());
            prop_assert_eq!(a.tier(), b.tier());
        }
        // Reseeding restores the full-open gate and resynchronises the
        // decision streams no matter how they diverged before.
        a.reseed(seed ^ 1);
        b.reseed(seed ^ 1);
        for _ in 0..16 {
            prop_assert_eq!(a.admit(), b.admit());
        }
    }

    /// AIMD converges: sustained over-target sojourns drive the rate
    /// monotonically down to a positive floor (never a full outage),
    /// and sustained under-target sojourns recover it monotonically
    /// back to fully open, where every call is admitted again.
    #[test]
    fn aimd_converges_to_the_floor_and_recovers(
        seed in any::<u64>(),
        target in 1u64..100,
        pressure in 1usize..200,
    ) {
        use mobivine::overload::AdmissionController;
        let gate = AdmissionController::new(seed);
        let open_rate = gate.rate();
        prop_assert!(gate.admit(), "a fresh gate is fully open");

        let mut floor = open_rate;
        for _ in 0..pressure {
            let before = gate.rate();
            gate.observe(target + 1, target);
            prop_assert!(gate.rate() <= before, "decrease is monotone");
            floor = gate.rate();
        }
        prop_assert!(floor > 0, "the gate never closes completely");
        // The floor is stable: more pressure cannot push below it.
        for _ in 0..50 {
            gate.observe(target.saturating_mul(10), target);
        }
        prop_assert!(gate.rate() >= floor.min(gate.rate()) && gate.rate() > 0);

        // Recovery: additive increase climbs back to fully open.
        let mut last = gate.rate();
        for _ in 0..200 {
            gate.observe(0, target);
            prop_assert!(gate.rate() >= last, "increase is monotone");
            last = gate.rate();
        }
        prop_assert_eq!(last, open_rate, "converged back to fully open");
        for _ in 0..16 {
            prop_assert!(gate.admit(), "fully open admits everything");
        }
    }
}
