//! Stress and scale: many concurrent registrations, message storms,
//! long simulated runs — the event machinery must stay correct and
//! bounded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mobivine::api::{CallProxy, LocationProxy, SmsProxy};
use mobivine::registry::Mobivine;
use mobivine::types::ProximityEvent;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::movement::MovementModel;
use mobivine_device::{Device, GeoPoint};
use mobivine_s60::S60Platform;

const HOME: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

#[test]
fn fifty_proximity_alerts_fire_exactly_the_right_subset() {
    // Fifty concentric regions with radii 20, 40, ..., 1000 m; the
    // agent walks from 1100 m out to the center and back out. Every
    // region must see exactly one enter and one exit.
    let start = HOME.destination(270.0, 1_100.0);
    let device = Device::builder()
        .position(start)
        .movement(MovementModel::waypoints(vec![start, HOME, start], 25.0))
        .build();
    device.gps().set_noise_enabled(false);
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let location = runtime.proxy::<dyn LocationProxy>().unwrap();

    let counts: Vec<Arc<(AtomicUsize, AtomicUsize)>> = (0..50)
        .map(|i| {
            let pair = Arc::new((AtomicUsize::new(0), AtomicUsize::new(0)));
            let sink = Arc::clone(&pair);
            let radius = 20.0 * (i as f64 + 1.0);
            location
                .add_proximity_alert(
                    HOME.latitude,
                    HOME.longitude,
                    0.0,
                    radius,
                    -1,
                    Arc::new(move |e: &ProximityEvent| {
                        if e.entering {
                            sink.0.fetch_add(1, Ordering::SeqCst);
                        } else {
                            sink.1.fetch_add(1, Ordering::SeqCst);
                        }
                    }),
                )
                .unwrap();
            pair
        })
        .collect();

    // Full out-and-back: 2200 m at 25 m/s = 88 s.
    device.advance_ms(120_000);
    for (i, pair) in counts.iter().enumerate() {
        assert_eq!(pair.0.load(Ordering::SeqCst), 1, "region {i} enter count");
        assert_eq!(pair.1.load(Ordering::SeqCst), 1, "region {i} exit count");
    }
}

#[test]
fn sms_storm_delivers_everything_in_order() {
    let device = Device::builder().msisdn("+me").build();
    device.smsc().register_address("+hub");
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();
    for i in 0..200 {
        sms.send_text_message("+hub", &format!("msg-{i}"), None)
            .unwrap();
    }
    device.advance_ms(10_000);
    let inbox = device.smsc().inbox("+hub");
    assert_eq!(inbox.len(), 200);
    for (i, message) in inbox.iter().enumerate() {
        assert_eq!(message.body, format!("msg-{i}"), "ordering preserved");
    }
}

#[test]
fn removed_alerts_leave_no_residual_event_load() {
    // Register and immediately remove many alerts; after a long
    // advance the event queue must drain to (near) nothing — recurring
    // checks for cancelled registrations stop rescheduling.
    let device = Device::builder().position(HOME).build();
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let location = runtime.proxy::<dyn LocationProxy>().unwrap();
    for _ in 0..30 {
        let listener: mobivine::types::SharedProximityListener = Arc::new(|_: &ProximityEvent| {});
        location
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                0.0,
                50.0,
                -1,
                Arc::clone(&listener),
            )
            .unwrap();
        assert!(location.remove_proximity_alert(&listener).unwrap());
    }
    device.advance_ms(10_000);
    assert_eq!(
        device.events().pending(),
        0,
        "cancelled registrations must stop rescheduling"
    );
}

#[test]
fn expired_alerts_also_drain_the_queue() {
    let device = Device::builder().position(HOME).build();
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let location = runtime.proxy::<dyn LocationProxy>().unwrap();
    for _ in 0..20 {
        location
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                0.0,
                50.0,
                5, // expires after 5 s
                Arc::new(|_: &ProximityEvent| {}),
            )
            .unwrap();
    }
    device.advance_ms(60_000);
    assert_eq!(device.events().pending(), 0);
}

#[test]
fn s60_emulation_survives_long_runs_with_many_cycles() {
    // 30 virtual minutes of looping through a region: the S60 binding's
    // re-registration machinery must neither miss cycles nor leak.
    let start = HOME.destination(270.0, 300.0);
    let far = HOME.destination(90.0, 300.0);
    let device = Device::builder()
        .position(start)
        .movement(MovementModel::waypoint_loop(vec![start, far], 30.0))
        .build();
    device.gps().set_noise_enabled(false);
    let runtime = Mobivine::for_s60(S60Platform::new(device.clone()));
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    runtime
        .proxy::<dyn LocationProxy>()
        .unwrap()
        .add_proximity_alert(
            HOME.latitude,
            HOME.longitude,
            0.0,
            100.0,
            -1,
            Arc::new(move |e: &ProximityEvent| sink.lock().unwrap().push(e.entering)),
        )
        .unwrap();
    device.advance_ms(30 * 60 * 1_000);
    let events = events.lock().unwrap();
    // Loop period 40 s, one enter+exit per lap => ~45 laps in 30 min.
    assert!(events.len() >= 80, "saw only {} events", events.len());
    for pair in events.windows(2) {
        assert_ne!(
            pair[0],
            pair[1],
            "strict alternation over {} events",
            events.len()
        );
    }
}

#[test]
fn many_calls_in_flight_keep_independent_state() {
    let device = Device::builder().build();
    device
        .call_switch()
        .set_callee_profile("+busy", mobivine_device::call::CalleeProfile::Busy);
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let call = runtime.proxy::<dyn CallProxy>().unwrap();
    let ok_ids: Vec<u64> = (0..20)
        .map(|_| call.make_a_call("+fine").unwrap())
        .collect();
    let busy_ids: Vec<u64> = (0..20)
        .map(|_| call.make_a_call("+busy").unwrap())
        .collect();
    device.advance_ms(30_000);
    for id in ok_ids {
        assert_eq!(
            call.call_progress(id).unwrap(),
            mobivine::types::CallProgress::Connected
        );
    }
    for id in busy_ids {
        assert_eq!(
            call.call_progress(id).unwrap(),
            mobivine::types::CallProgress::Ended
        );
    }
}
