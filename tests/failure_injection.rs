//! Failure injection across the uniform proxy APIs: GPS outages,
//! network loss, SMS loss, and permission denials must surface as the
//! *same* uniform error kinds (or the same delivery outcomes) on every
//! platform binding.

use std::sync::{Arc, Mutex};

use mobivine::error::ProxyErrorKind;
use mobivine::registry::Mobivine;
use mobivine::types::DeliveryOutcome;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::gps::GpsAvailability;
use mobivine_device::{Device, GeoPoint};
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

fn device() -> Device {
    let device = Device::builder()
        .msisdn("+91-me")
        .position(GeoPoint::new(28.5355, 77.3910))
        .build();
    device.smsc().register_address("+91-sup");
    device
}

fn runtimes(device: &Device) -> Vec<(&'static str, Mobivine)> {
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    vec![
        (
            "android",
            Mobivine::for_android(android.new_context()),
        ),
        ("s60", Mobivine::for_s60(S60Platform::new(device.clone()))),
        (
            "webview",
            Mobivine::for_webview(Arc::new(WebView::new(
                AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context(),
            ))),
        ),
    ]
}

#[test]
fn gps_outage_is_unavailable_on_every_platform() {
    let device = device();
    device
        .gps()
        .set_availability(GpsAvailability::TemporarilyUnavailable);
    for (name, runtime) in runtimes(&device) {
        let err = runtime.location().unwrap().get_location().unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::Unavailable,
            "platform {name}: {err}"
        );
    }
}

#[test]
fn network_down_is_io_on_every_platform() {
    let device = device();
    device.network().set_down(true);
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .http()
            .unwrap()
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}: {err}");
    }
}

#[test]
fn sms_loss_reports_failed_delivery_uniformly() {
    let device = device();
    device.smsc().set_loss_probability(1.0);
    for (name, runtime) in runtimes(&device) {
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        runtime
            .sms()
            .unwrap()
            .send_text_message(
                "+91-sup",
                "lost",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        device.advance_ms(2_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed],
            "platform {name}"
        );
    }
}

#[test]
fn empty_arguments_rejected_uniformly() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .sms()
            .unwrap()
            .send_text_message("", "hi", None)
            .unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::IllegalArgument,
            "platform {name}: {err}"
        );
        let err = runtime
            .location()
            .unwrap()
            .add_proximity_alert(28.5, 77.3, 0.0, 0.0, -1, Arc::new(|_: &mobivine::types::ProximityEvent| {}))
            .unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::IllegalArgument,
            "platform {name} radius: {err}"
        );
    }
}

#[test]
fn gps_recovery_restores_service_everywhere() {
    let device = device();
    device
        .gps()
        .set_availability(GpsAvailability::OutOfService);
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context());
    let location = runtime.location().unwrap();
    assert!(location.get_location().is_err());
    device.gps().set_availability(GpsAvailability::Available);
    assert!(location.get_location().is_ok());
}

#[test]
fn unknown_host_and_404_are_distinguished() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let http = runtime.http().unwrap();
        // Unknown host: transport error.
        let err = http.request("GET", "http://ghost.example/", &[]).unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}");
        // Known host, unrouted path: an HTTP result, not an error.
        // (Install a server first.)
        device.network().register_route(
            "known.example",
            mobivine_device::net::Method::Get,
            "/",
            |_| mobivine_device::net::HttpResponse::ok("root"),
        );
        let resp = http
            .request("GET", "http://known.example/missing", &[])
            .unwrap();
        assert_eq!(resp.status, 404, "platform {name}");
    }
}

#[test]
fn out_of_coverage_sms_fails_uniformly_at_the_device() {
    // Configure a single cell far from the device: the radio has no
    // signal, so sends fail device-side with the uniform Io kind on
    // every platform — before the SMSC is ever involved.
    let device = device();
    device
        .coverage()
        .add_cell(GeoPoint::new(10.0, 10.0), 1_000.0);
    assert!(!device.signal_strength().in_coverage());
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .sms()
            .unwrap()
            .send_text_message("+91-sup", "anyone there?", None)
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}: {err}");
    }
    // Walking back into coverage restores service.
    device.coverage().clear();
    for (_name, runtime) in runtimes(&device) {
        assert!(runtime
            .sms()
            .unwrap()
            .send_text_message("+91-sup", "back online", None)
            .is_ok());
    }
}

#[test]
fn out_of_coverage_call_fails_on_android() {
    let device = device();
    device
        .coverage()
        .add_cell(GeoPoint::new(10.0, 10.0), 1_000.0);
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context());
    let err = runtime.call().unwrap().make_a_call("+91-sup").unwrap_err();
    assert_eq!(err.kind(), ProxyErrorKind::Io);
}

#[test]
fn intermittent_sms_loss_with_seeded_probability() {
    let device = device();
    device.smsc().set_loss_probability(0.5);
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context());
    let sms = runtime.sms().unwrap();
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..40 {
        let sink = Arc::clone(&outcomes);
        sms.send_text_message(
            "+91-sup",
            "maybe",
            Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                sink.lock().unwrap().push(o);
            })),
        )
        .unwrap();
    }
    device.advance_ms(5_000);
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 40);
    let delivered = outcomes
        .iter()
        .filter(|o| **o == DeliveryOutcome::Delivered)
        .count();
    // Seeded: both outcomes occur, roughly balanced.
    assert!(delivered > 5 && delivered < 35, "delivered {delivered}/40");
}
