//! Failure injection across the uniform proxy APIs: GPS outages,
//! network loss, SMS loss, and permission denials must surface as the
//! *same* uniform error kinds (or the same delivery outcomes) on every
//! platform binding.

mod common;

use std::sync::{Arc, Mutex};

use common::{android_runtime, device, resilient_runtimes_isolated, runtimes};
use mobivine::api::{CallProxy, HttpProxy, LocationProxy, SmsProxy};
use mobivine::error::ProxyErrorKind;
use mobivine::resilience::{CircuitState, ResiliencePolicy};
use mobivine::types::DeliveryOutcome;
use mobivine_device::fault::FaultPlan;
use mobivine_device::gps::GpsAvailability;
use mobivine_device::GeoPoint;

#[test]
fn gps_outage_is_unavailable_on_every_platform() {
    let device = device();
    device
        .gps()
        .set_availability(GpsAvailability::TemporarilyUnavailable);
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .get_location()
            .unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::Unavailable,
            "platform {name}: {err}"
        );
    }
}

#[test]
fn network_down_is_io_on_every_platform() {
    let device = device();
    device.network().set_down(true);
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .proxy::<dyn HttpProxy>()
            .unwrap()
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}: {err}");
    }
}

#[test]
fn sms_loss_reports_failed_delivery_uniformly() {
    let device = device();
    device.smsc().set_loss_probability(1.0);
    for (name, runtime) in runtimes(&device) {
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        runtime
            .proxy::<dyn SmsProxy>()
            .unwrap()
            .send_text_message(
                "+91-sup",
                "lost",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        device.advance_ms(2_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed],
            "platform {name}"
        );
    }
}

#[test]
fn empty_arguments_rejected_uniformly() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .proxy::<dyn SmsProxy>()
            .unwrap()
            .send_text_message("", "hi", None)
            .unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::IllegalArgument,
            "platform {name}: {err}"
        );
        let err = runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .add_proximity_alert(
                28.5,
                77.3,
                0.0,
                0.0,
                -1,
                Arc::new(|_: &mobivine::types::ProximityEvent| {}),
            )
            .unwrap_err();
        assert_eq!(
            err.kind(),
            ProxyErrorKind::IllegalArgument,
            "platform {name} radius: {err}"
        );
    }
}

#[test]
fn gps_recovery_restores_service_everywhere() {
    let device = device();
    device.gps().set_availability(GpsAvailability::OutOfService);
    let runtime = android_runtime(&device);
    let location = runtime.proxy::<dyn LocationProxy>().unwrap();
    assert!(location.get_location().is_err());
    device.gps().set_availability(GpsAvailability::Available);
    assert!(location.get_location().is_ok());
}

#[test]
fn unknown_host_and_404_are_distinguished() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();
        // Unknown host: transport error.
        let err = http
            .request("GET", "http://ghost.example/", &[])
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}");
        // Known host, unrouted path: an HTTP result, not an error.
        // (Install a server first.)
        device.network().register_route(
            "known.example",
            mobivine_device::net::Method::Get,
            "/",
            |_| mobivine_device::net::HttpResponse::ok("root"),
        );
        let resp = http
            .request("GET", "http://known.example/missing", &[])
            .unwrap();
        assert_eq!(resp.status, 404, "platform {name}");
    }
}

#[test]
fn out_of_coverage_sms_fails_uniformly_at_the_device() {
    // Configure a single cell far from the device: the radio has no
    // signal, so sends fail device-side with the uniform Io kind on
    // every platform — before the SMSC is ever involved.
    let device = device();
    device
        .coverage()
        .add_cell(GeoPoint::new(10.0, 10.0), 1_000.0);
    assert!(!device.signal_strength().in_coverage());
    for (name, runtime) in runtimes(&device) {
        let err = runtime
            .proxy::<dyn SmsProxy>()
            .unwrap()
            .send_text_message("+91-sup", "anyone there?", None)
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name}: {err}");
    }
    // Walking back into coverage restores service.
    device.coverage().clear();
    for (_name, runtime) in runtimes(&device) {
        assert!(runtime
            .proxy::<dyn SmsProxy>()
            .unwrap()
            .send_text_message("+91-sup", "back online", None)
            .is_ok());
    }
}

#[test]
fn out_of_coverage_call_fails_on_android() {
    let device = device();
    device
        .coverage()
        .add_cell(GeoPoint::new(10.0, 10.0), 1_000.0);
    let runtime = android_runtime(&device);
    let err = runtime
        .proxy::<dyn CallProxy>()
        .unwrap()
        .make_a_call("+91-sup")
        .unwrap_err();
    assert_eq!(err.kind(), ProxyErrorKind::Io);
}

#[test]
fn intermittent_sms_loss_with_seeded_probability() {
    let device = device();
    device.smsc().set_loss_probability(0.5);
    let runtime = android_runtime(&device);
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..40 {
        let sink = Arc::clone(&outcomes);
        sms.send_text_message(
            "+91-sup",
            "maybe",
            Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                sink.lock().unwrap().push(o);
            })),
        )
        .unwrap();
    }
    device.advance_ms(5_000);
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 40);
    let delivered = outcomes
        .iter()
        .filter(|o| **o == DeliveryOutcome::Delivered)
        .count();
    // Seeded: both outcomes occur, roughly balanced.
    assert!(delivered > 5 && delivered < 35, "delivered {delivered}/40");
}

// ---------------------------------------------------------------------
// FaultPlan-driven chaos: scheduled outage windows against resilient
// runtimes. Every platform gets its own fresh device running the same
// plan, so eventual outcomes AND attempt counts must match exactly.
// ---------------------------------------------------------------------

/// A deterministic policy whose first backoff (500–750 ms with jitter)
/// always outlives the fault windows the chaos tests schedule.
fn chaos_policy() -> ResiliencePolicy {
    ResiliencePolicy::default()
        .max_attempts(4)
        .backoff_base_ms(500)
        .jitter_seed(2009)
        .deadline_ms(60_000)
}

#[test]
fn network_partition_mid_call_is_absorbed_identically_everywhere() {
    let mut attempt_counts = Vec::new();
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        device.network().register_route(
            "wfm.example",
            mobivine_device::net::Method::Get,
            "/tasks",
            |_| mobivine_device::net::HttpResponse::ok("[]"),
        );
        // Partition opens at t=1 and heals at t=400 — before the first
        // retry (>= 501) lands.
        FaultPlan::new(&device).network_partition(1, 400);
        device.advance_ms(1);
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();
        let resp = http
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap_or_else(|e| panic!("platform {name} must recover: {e}"));
        assert_eq!(resp.status, 200, "platform {name}");
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        assert_eq!(snap.successes, 1, "platform {name}: 100% eventual success");
        assert_eq!(snap.transient_failures, 1, "platform {name}");
        attempt_counts.push((name, snap.attempts));
    }
    assert!(
        attempt_counts
            .iter()
            .all(|(_, a)| *a == attempt_counts[0].1),
        "attempt counts must be identical across platforms: {attempt_counts:?}"
    );
    assert_eq!(attempt_counts[0].1, 2, "fail once, succeed on the retry");
}

#[test]
fn gps_flap_during_tracking_is_ridden_out_by_retries() {
    let mut attempt_counts = Vec::new();
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        // Two outage windows: [1, 401) and [801, 1201).
        FaultPlan::new(&device).gps_flap(1, 400, 2);
        device.advance_ms(1);
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        // First read lands in the first outage; the retry (t >= 502)
        // falls in the recovered gap.
        let first = location
            .get_location()
            .unwrap_or_else(|e| panic!("platform {name} first read: {e}"));
        // Jump into the second outage and read again.
        device.advance_to(900);
        let second = location
            .get_location()
            .unwrap_or_else(|e| panic!("platform {name} second read: {e}"));
        assert!(second.timestamp_ms > first.timestamp_ms, "platform {name}");
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        assert_eq!(snap.successes, 2, "platform {name}: 100% eventual success");
        assert_eq!(
            snap.fallback_last_known + snap.fallback_default,
            0,
            "platform {name}: retries alone must ride out the flap"
        );
        attempt_counts.push((name, snap.attempts));
    }
    assert!(
        attempt_counts
            .iter()
            .all(|(_, a)| *a == attempt_counts[0].1),
        "attempt counts must be identical across platforms: {attempt_counts:?}"
    );
    assert_eq!(attempt_counts[0].1, 4, "two reads, one retry each");
}

#[test]
fn smsc_drop_window_notifies_listener_then_clears_uniformly() {
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        FaultPlan::new(&device).sms_loss_window(1, 10_000, 1.0);
        device.advance_ms(1);
        let sms = runtime.proxy::<dyn SmsProxy>().unwrap();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        // Submission succeeds (the radio is fine); the SMSC drops the
        // message downstream and the delivery listener must hear it.
        sms.send_text_message(
            "+91-sup",
            "into the void",
            Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                sink.lock().unwrap().push(o);
            })),
        )
        .unwrap_or_else(|e| panic!("platform {name} submit: {e}"));
        device.advance_ms(2_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed],
            "platform {name}: drop reported through the listener"
        );
        // After the window closes the channel is clean again.
        device.advance_to(10_500);
        let sink = Arc::clone(&outcomes);
        sms.send_text_message(
            "+91-sup",
            "after the storm",
            Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                sink.lock().unwrap().push(o);
            })),
        )
        .unwrap();
        device.advance_ms(2_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed, DeliveryOutcome::Delivered],
            "platform {name}: delivery restored after the window"
        );
    }
}

#[test]
fn circuit_breaker_opens_rejects_fast_and_recovers_via_half_open_probe() {
    let policy = chaos_policy()
        .max_attempts(1)
        .circuit_threshold(3)
        .circuit_cooldown_ms(5_000);
    let mut attempt_counts = Vec::new();
    for (name, device, runtime) in resilient_runtimes_isolated(&policy) {
        device.network().register_route(
            "wfm.example",
            mobivine_device::net::Method::Get,
            "/tasks",
            |_| mobivine_device::net::HttpResponse::ok("[]"),
        );
        device.network().set_down(true);
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();
        // Three straight failures open the circuit.
        for i in 0..3 {
            let err = http
                .request("GET", "http://wfm.example/tasks", &[])
                .unwrap_err();
            assert_eq!(err.kind(), ProxyErrorKind::Io, "platform {name} call {i}");
        }
        // While open: rejected fast, without touching the binding or
        // the simulated clock.
        let before = device.now_ms();
        let err = http
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::CircuitOpen, "platform {name}");
        assert_eq!(
            device.now_ms(),
            before,
            "platform {name}: no time spent while open"
        );
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        assert_eq!(
            snap.attempts, 3,
            "platform {name}: rejection never reached the binding"
        );
        assert_eq!(snap.circuit_rejections, 1, "platform {name}");
        // Cooldown elapses while the network heals; the half-open probe
        // closes the circuit again.
        device.network().set_down(false);
        device.advance_ms(5_100);
        let resp = http
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap_or_else(|e| panic!("platform {name} probe: {e}"));
        assert_eq!(resp.status, 200, "platform {name}");
        assert!(http.request("GET", "http://wfm.example/tasks", &[]).is_ok());
        attempt_counts.push((
            name,
            runtime.resilience_metrics().unwrap().snapshot().attempts,
        ));
    }
    assert!(
        attempt_counts
            .iter()
            .all(|(_, a)| *a == attempt_counts[0].1),
        "attempt counts must be identical across platforms: {attempt_counts:?}"
    );
}

#[test]
fn random_drops_yield_the_same_resilient_trace_on_every_platform() {
    // Seeded-probabilistic chaos: the same FaultPlan seed must produce
    // the same outage schedule — and therefore the same retry counters —
    // on every platform binding.
    let policy = chaos_policy().max_attempts(6).deadline_ms(600_000);
    let mut traces = Vec::new();
    for (name, device, runtime) in resilient_runtimes_isolated(&policy) {
        device.network().register_route(
            "wfm.example",
            mobivine_device::net::Method::Get,
            "/tasks",
            |_| mobivine_device::net::HttpResponse::ok("[]"),
        );
        FaultPlan::new(&device).random_network_drops(77, 0, 30_000, 5, 700);
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();
        let mut successes = 0;
        for call in 0..6 {
            device.advance_to((call as u64 + 1) * 4_000);
            if http.request("GET", "http://wfm.example/tasks", &[]).is_ok() {
                successes += 1;
            }
        }
        assert_eq!(successes, 6, "platform {name}: every call eventually lands");
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        traces.push((name, snap.attempts, snap.retries));
    }
    assert!(
        traces
            .iter()
            .all(|t| (t.1, t.2) == (traces[0].1, traces[0].2)),
        "seeded chaos must replay identically: {traces:?}"
    );
}

/// The fault-transition provenance counter for `label` on `device`.
fn fault_transitions(device: &mobivine_device::Device, label: &str) -> u64 {
    device.metrics().counter_value(
        "device_fault_transitions_total",
        &mobivine_telemetry::Labels::new(&[("fault", label)]),
    )
}

#[test]
fn http_latency_spike_window_stretches_and_restores_round_trips() {
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        device.network().register_route(
            "wfm.example",
            mobivine_device::net::Method::Get,
            "/tasks",
            |_| mobivine_device::net::HttpResponse::ok("[]"),
        );
        FaultPlan::new(&device).latency_spike(1_000, 60_000, 10);
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();

        let timed_request = |at_ms: u64| {
            device.advance_to(at_ms);
            let before = device.now_ms();
            http.request("GET", "http://wfm.example/tasks", &[])
                .unwrap_or_else(|e| panic!("platform {name}: {e}"));
            device.now_ms() - before
        };

        let baseline = timed_request(100);
        assert!(
            baseline > 0,
            "platform {name}: round trips cost virtual time"
        );
        let spiked = timed_request(2_000);
        assert!(
            spiked > baseline,
            "platform {name}: spike must stretch the round trip \
             (baseline {baseline} ms, spiked {spiked} ms)"
        );
        // Provenance: the spike transition fired, the restore is pending.
        assert_eq!(
            fault_transitions(&device, "fault.network.latency_spike"),
            1,
            "platform {name}"
        );
        assert_eq!(
            fault_transitions(&device, "fault.network.latency_restored"),
            0,
            "platform {name}"
        );
        let restored = timed_request(70_000);
        assert_eq!(
            restored, baseline,
            "platform {name}: latency must return to baseline after the window"
        );
        assert_eq!(
            fault_transitions(&device, "fault.network.latency_restored"),
            1,
            "platform {name}"
        );
        // No retries were needed — the link stayed up, just slow.
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        assert_eq!(snap.successes, 3, "platform {name}");
        assert_eq!(snap.attempts, 3, "platform {name}: slow is not failed");
    }
}

#[test]
fn smsc_overload_burst_delays_delivery_then_drains() {
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        let baseline_ms = device.smsc().latency_ms();
        FaultPlan::new(&device).overload_burst(1, 60_000, 5);
        device.advance_ms(2);
        let sms = runtime.proxy::<dyn SmsProxy>().unwrap();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        sms.send_text_message(
            "+91-sup",
            "under pressure",
            Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                sink.lock().unwrap().push(o);
            })),
        )
        .unwrap_or_else(|e| panic!("platform {name} submit: {e}"));
        // At the baseline latency nothing has landed — the saturated
        // SMSC is serving 5x slower.
        device.advance_ms(baseline_ms + 1);
        assert!(
            outcomes.lock().unwrap().is_empty(),
            "platform {name}: delivery must be delayed by the burst"
        );
        device.advance_ms(baseline_ms * 5);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Delivered],
            "platform {name}: delayed, not lost"
        );
        // Provenance: both saturation transitions fired together.
        assert_eq!(
            fault_transitions(&device, "fault.smsc.overloaded"),
            1,
            "platform {name}"
        );
        assert_eq!(
            fault_transitions(&device, "fault.network.latency_spike"),
            1,
            "platform {name}: the burst saturates the packet network too"
        );
        // After the window the SMSC drains back to its baseline.
        device.advance_to(61_000);
        assert_eq!(device.smsc().latency_ms(), baseline_ms, "platform {name}");
        assert_eq!(
            fault_transitions(&device, "fault.smsc.drained"),
            1,
            "platform {name}"
        );
    }
}

#[test]
fn coverage_outage_mid_call_is_ridden_out_where_calls_exist() {
    // S60 has no Call proxy, so the chaos case covers the two bindings
    // that do; their fault traces must match exactly.
    let mut attempt_counts = Vec::new();
    for (name, device, runtime) in resilient_runtimes_isolated(&chaos_policy()) {
        if name == "s60" {
            continue;
        }
        // Radio outage [1, 400): the first dial fails at the radio, the
        // retry (t >= 501) lands after coverage is restored.
        FaultPlan::new(&device).coverage_outage(1, 400);
        device.advance_ms(1);
        let call = runtime.proxy::<dyn CallProxy>().unwrap();
        let call_id = call
            .make_a_call("+91-sup")
            .unwrap_or_else(|e| panic!("platform {name} must recover: {e}"));
        assert!(call_id > 0, "platform {name}");
        // Provenance: both coverage transitions fired.
        assert_eq!(
            fault_transitions(&device, "fault.radio.out_of_coverage"),
            1,
            "platform {name}"
        );
        assert_eq!(
            fault_transitions(&device, "fault.radio.coverage_restored"),
            1,
            "platform {name}"
        );
        let snap = runtime.resilience_metrics().unwrap().snapshot();
        assert_eq!(snap.successes, 1, "platform {name}: eventual success");
        assert_eq!(snap.transient_failures, 1, "platform {name}");
        attempt_counts.push((name, snap.attempts));
    }
    assert_eq!(attempt_counts.len(), 2, "android and webview both dialled");
    assert!(
        attempt_counts
            .iter()
            .all(|(_, a)| *a == attempt_counts[0].1),
        "attempt counts must be identical across platforms: {attempt_counts:?}"
    );
    assert_eq!(attempt_counts[0].1, 2, "fail once, succeed on the retry");
}

#[test]
fn circuit_state_is_visible_through_the_decorator() {
    // Direct decorator-level visibility check (registry returns trait
    // objects, so this uses the concrete wrapper).
    let device = device();
    device.network().set_down(true);
    let runtime = android_runtime(&device);
    let inner = runtime.proxy::<dyn HttpProxy>().unwrap();
    let resilient = mobivine::resilience::ResilientHttpProxy::new(
        inner,
        device.clone(),
        ResiliencePolicy::default()
            .max_attempts(1)
            .circuit_threshold(2)
            .circuit_cooldown_ms(1_000),
        mobivine::resilience::ResilienceMetrics::shared(),
    );
    use mobivine::api::HttpProxy;
    assert_eq!(resilient.circuit_state(), CircuitState::Closed);
    let _ = resilient.request("GET", "http://wfm.example/", &[]);
    let _ = resilient.request("GET", "http://wfm.example/", &[]);
    assert_eq!(resilient.circuit_state(), CircuitState::Open);
    device.network().set_down(false);
    device.advance_ms(1_100);
    // The next admission flips to half-open and the success closes it.
    device.network().register_route(
        "wfm.example",
        mobivine_device::net::Method::Get,
        "/",
        |_| mobivine_device::net::HttpResponse::ok("up"),
    );
    resilient
        .request("GET", "http://wfm.example/", &[])
        .unwrap();
    assert_eq!(resilient.circuit_state(), CircuitState::Closed);
}
