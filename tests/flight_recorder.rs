//! Flight recorder end-to-end: tail-based promotion of interesting
//! traces into the incident store, verified across all three platform
//! bindings (including the WebView JS-bridge crossing), plus the
//! exemplar and eviction-counter surfaces of the Prometheus page.
//!
//! The contract under test: a traced runtime keeps only a small ring of
//! recent spans, but any trace whose root ends interestingly — an
//! error, a blown deadline — is promoted *whole* into the bounded
//! incident store, where it must still validate as one connected span
//! tree. Healthy traffic promotes nothing and the same scenario run
//! twice promotes the same trace ids.

mod common;

use common::{device, runtimes};
use mobivine::api::LocationProxy;
use mobivine::overload::{with_deadline, Deadline};
use mobivine_device::gps::GpsAvailability;
use mobivine_telemetry::export::validate_prometheus;
use mobivine_telemetry::span::{validate_tree, Plane};
use mobivine_telemetry::{PromotionPolicy, PromotionReason};

#[test]
fn blown_deadlines_promote_validated_trace_trees_on_every_platform() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let runtime = runtime.with_telemetry();
        let proxy = runtime.proxy::<dyn LocationProxy>().unwrap();

        // The batch's deadline expired 45 virtual ms ago by the time
        // the call runs — the proxy plane must stamp the span blown and
        // the recorder must promote the whole trace.
        let deadline = Deadline::after(device.clock().now_ms(), 5);
        device.clock().advance_ms(50);
        let _ = with_deadline(deadline, || proxy.get_location());

        let store = runtime.incidents().expect("recorder is on by default");
        assert_eq!(store.len(), 1, "platform {name}: one promoted trace");
        let trace = &store.traces()[0];
        assert_eq!(
            trace.reason,
            PromotionReason::DeadlineBlown,
            "platform {name}"
        );
        assert!(trace.complete, "platform {name}: tree marked complete");
        let root = validate_tree(&trace.spans).expect("promoted trace is one connected tree");
        assert_eq!(root, trace.root_span, "platform {name}");
        // The deadline expired before the call started, so every
        // binding fail-fasts early (the WebView one right at the JS
        // bridge, before the native proxy) — but the fragment that did
        // run is still promoted as one connected tree under the proxy
        // root.
        assert!(
            trace.spans.iter().any(|s| s.plane == Plane::Binding),
            "platform {name}: the binding plane is part of the promoted tree"
        );
    }
}

#[test]
fn gps_outages_promote_error_traces_uniformly() {
    let device = device();
    device
        .gps()
        .set_availability(GpsAvailability::TemporarilyUnavailable);
    for (name, runtime) in runtimes(&device) {
        let runtime = runtime.with_telemetry();
        let proxy = runtime.proxy::<dyn LocationProxy>().unwrap();
        proxy.get_location().unwrap_err();

        let store = runtime.incidents().expect("recorder is on by default");
        assert_eq!(store.promoted_total(), 1, "platform {name}");
        let trace = &store.traces()[0];
        match &trace.reason {
            PromotionReason::Error(kind) => {
                assert_eq!(kind, "Unavailable", "platform {name}")
            }
            other => panic!("platform {name}: promoted for {other:?}, expected an error"),
        }
        assert!(trace.complete, "platform {name}");
        validate_tree(&trace.spans).expect("promoted error trace is one connected tree");
        if name == "webview" {
            // The outage surfaces *below* the bridge, so the promoted
            // tree must carry the JS-bridge crossing (the context
            // travelled as a marshalled `traceparent`, not a shared
            // ambient stack).
            assert!(
                trace.spans.iter().any(|s| s.plane == Plane::Bridge),
                "the JS-bridge crossing must survive promotion: {:?}",
                trace.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn healthy_traffic_promotes_nothing() {
    let device = device();
    for (name, runtime) in runtimes(&device) {
        let runtime = runtime.with_telemetry();
        let proxy = runtime.proxy::<dyn LocationProxy>().unwrap();
        for _ in 0..5 {
            proxy.get_location().expect("gps is healthy");
        }
        let store = runtime.incidents().expect("recorder is on by default");
        assert!(store.is_empty(), "platform {name}: {} traces", store.len());
    }
}

#[test]
fn exemplars_and_recorder_counters_surface_on_the_prometheus_page() {
    let device = device();
    // Retention 1 forces ring wrap-around on every multi-span trace, so
    // the eviction counter must tick; promotion still works because the
    // recorder snapshots the tree before the ring overwrites it.
    let runtime =
        common::android_runtime(&device).with_telemetry_recorder(1, PromotionPolicy::default());
    let proxy = runtime.proxy::<dyn LocationProxy>().unwrap();

    let deadline = Deadline::after(device.clock().now_ms(), 5);
    device.clock().advance_ms(50);
    let _ = with_deadline(deadline, || proxy.get_location());

    let store = runtime.incidents().expect("recorder is on");
    assert_eq!(store.len(), 1);
    let trace_id = store.traces()[0].trace_id;

    let metrics = runtime.telemetry_metrics().expect("telemetry is on");
    let page = metrics.render_prometheus();
    let summary = validate_prometheus(&page).expect("page round-trips the validator");
    assert!(summary.exemplars >= 1, "page carries an exemplar:\n{page}");
    assert!(
        summary
            .exemplar_trace_ids
            .contains(&format!("{:016x}", trace_id.0)),
        "the exemplar links the promoted trace: {:?}",
        summary.exemplar_trace_ids
    );
    for counter in [
        "telemetry_spans_evicted_total",
        "telemetry_traces_promoted_total",
        "telemetry_promotions_dropped_total",
    ] {
        assert!(page.contains(counter), "page misses {counter}:\n{page}");
    }
    assert!(
        metrics.counter_value(
            "telemetry_spans_evicted_total",
            &mobivine_telemetry::Labels::empty()
        ) > 0,
        "retention 1 must wrap the ring"
    );
}

#[test]
fn promotion_is_deterministic_across_reruns() {
    let promoted_ids = || {
        let device = device();
        let runtime = common::android_runtime(&device).with_telemetry();
        let proxy = runtime.proxy::<dyn LocationProxy>().unwrap();
        for round in 0..4 {
            let deadline = Deadline::after(device.clock().now_ms(), 5);
            if round % 2 == 1 {
                device.clock().advance_ms(50);
            }
            let _ = with_deadline(deadline, || proxy.get_location());
        }
        let store = runtime.incidents().expect("recorder is on");
        store
            .traces()
            .iter()
            .map(|t| t.trace_id.0)
            .collect::<Vec<_>>()
    };
    let first = promoted_ids();
    assert_eq!(first.len(), 2, "two blown rounds promote two traces");
    assert_eq!(first, promoted_ids(), "same scenario, same promoted ids");
}
