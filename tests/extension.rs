//! The extension workflow (paper §3.3): "if the semantic and syntactic
//! planes already exist for other platforms, one requires to publish
//! only the binding artifacts for proxies corresponding to a new
//! platform. Moreover, as the proxy structure remains same across
//! platforms, a common proxy interpretation routine can be used to
//! develop plugins for different platforms."
//!
//! We add a hypothetical iPhone-like platform: only a binding plane is
//! published per proxy, and the drawer / dialog / manifest machinery
//! picks the platform up without modification.

use mobivine_mplugin::dialog::ConfigurationDialog;
use mobivine_mplugin::drawer::ProxyDrawer;
use mobivine_mplugin::manifest::PluginManifest;
use mobivine_proxydl::schema::validate_descriptor;
use mobivine_proxydl::{catalog, PlatformBinding, PlatformId, PropertySpec, ProxyDescriptor};

fn iphone() -> PlatformId {
    PlatformId::Custom("iphone".to_owned())
}

/// Publishes iPhone binding planes for the Location and SMS proxies —
/// the *only* artifact a new platform needs.
fn extended_catalog() -> Vec<ProxyDescriptor> {
    let mut location = catalog::location();
    location
        .extend_platform(
            PlatformBinding::new(iphone(), "com.ibm.proxies.iphone.LocationProxyImpl")
                .exception("NSInvalidArgumentException")
                .property(
                    PropertySpec::new("desiredAccuracy", "string", "CLLocationAccuracy constant")
                        .default_value("best")
                        .allowed(&["best", "nearestTenMeters", "hundredMeters"]),
                ),
        )
        .expect("extension publishes only a binding");
    let mut sms = catalog::sms();
    sms.extend_platform(PlatformBinding::new(
        iphone(),
        "com.ibm.proxies.iphone.SmsProxyImpl",
    ))
    .expect("extension publishes only a binding");
    vec![location, sms, catalog::call(), catalog::http()]
}

#[test]
fn extended_descriptors_still_validate_against_all_schemas() {
    for descriptor in extended_catalog() {
        let errors = validate_descriptor(&descriptor);
        assert!(errors.is_empty(), "{}: {errors:?}", descriptor.name);
    }
}

#[test]
fn extension_cannot_bypass_the_syntactic_plane() {
    // A platform whose language has no syntactic binding is rejected —
    // the planes build on each other (§3.1).
    let mut location = catalog::location();
    location
        .syntactic
        .retain(|s| s.language != mobivine_proxydl::Language::Java);
    let err = location
        .extend_platform(PlatformBinding::new(iphone(), "Impl"))
        .unwrap_err();
    assert!(matches!(
        err,
        mobivine_proxydl::SchemaError::MissingSyntax { .. }
    ));
}

#[test]
fn drawer_for_the_new_platform_shows_only_bound_proxies() {
    let catalog = extended_catalog();
    let drawer = ProxyDrawer::from_catalog(&catalog, iphone());
    assert!(drawer.category("Location").is_some());
    assert!(drawer.category("SMS").is_some());
    assert!(drawer.category("Call").is_none(), "no iphone Call binding");
    assert!(drawer.category("Http").is_none(), "no iphone Http binding");
}

#[test]
fn common_interpretation_routine_serves_the_new_platform() {
    // The same dialog machinery renders iPhone properties without any
    // iPhone-specific plug-in code.
    let catalog = extended_catalog();
    let location = catalog.iter().find(|d| d.name == "Location").unwrap();
    let mut dialog = ConfigurationDialog::for_api(location, iphone(), "getLocation").unwrap();
    let accuracy = dialog
        .properties()
        .iter()
        .find(|p| p.name == "desiredAccuracy")
        .expect("iphone property visible in the dialog");
    assert_eq!(accuracy.default_value.as_deref(), Some("best"));
    dialog
        .set_property("desiredAccuracy", "hundredMeters")
        .unwrap();
    assert!(dialog.set_property("desiredAccuracy", "kilometer").is_err());
    // iPhone bindings are Java-typed here (the catalog treats custom
    // platforms as Java-language), so the Java generator serves them.
    let source = dialog.source_preview().unwrap();
    assert!(source.contains("LocationProxyImpl"));
    assert!(source.contains("setProperty(\"desiredAccuracy\", \"hundredMeters\")"));
    assert!(source.contains("NSInvalidArgumentException"));
}

#[test]
fn manifest_for_the_new_platform_derives_automatically() {
    let catalog = extended_catalog();
    let drawer = ProxyDrawer::from_catalog(&catalog, iphone());
    let manifest = PluginManifest::from_drawer("com.ibm.mobivine.iphone", &drawer);
    let text = manifest.render();
    assert!(text.contains("platform=\"iphone\""));
    assert!(text.contains("addProximityAlert"));
    let back = PluginManifest::parse(&text).unwrap();
    assert_eq!(back, manifest);
}

#[test]
fn xml_round_trip_preserves_the_extension() {
    for descriptor in extended_catalog() {
        let text = descriptor.to_xml().render();
        let back = ProxyDescriptor::parse(&text).unwrap();
        assert_eq!(back, descriptor);
        if descriptor.name == "Location" {
            assert!(back.binding_for(&iphone()).is_some());
        }
    }
}
