//! Shared three-platform fixtures for the integration suites.
//!
//! Every cross-platform test wants the same shape: one simulated
//! [`Device`] and a MobiVine runtime per platform binding (Android, S60,
//! WebView) sharing it, so identical behaviour can be asserted across
//! the board. This module is the single home of that fixture.

// Each test binary that declares `mod common;` uses its own subset of
// these helpers.
#![allow(dead_code)]

use std::sync::Arc;

use mobivine::registry::Mobivine;
use mobivine::resilience::ResiliencePolicy;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::{Device, GeoPoint};
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

/// The standard fixture device: stationary in Noida, a supervisor
/// address registered at the SMSC.
pub fn device() -> Device {
    let device = Device::builder()
        .msisdn("+91-me")
        .position(GeoPoint::new(28.5355, 77.3910))
        .build();
    device.smsc().register_address("+91-sup");
    device
}

/// An Android-bound runtime over `device`.
pub fn android_runtime(device: &Device) -> Mobivine {
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    Mobivine::builder()
        .android(platform.new_context())
        .build()
        .expect("android runtime builds")
}

/// An S60-bound runtime over `device`.
pub fn s60_runtime(device: &Device) -> Mobivine {
    Mobivine::builder()
        .s60(S60Platform::new(device.clone()))
        .build()
        .expect("s60 runtime builds")
}

/// A WebView-bound runtime over `device`.
pub fn webview_runtime(device: &Device) -> Mobivine {
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    Mobivine::builder()
        .webview(Arc::new(WebView::new(platform.new_context())))
        .build()
        .expect("webview runtime builds")
}

/// One runtime per platform binding, all sharing `device`.
pub fn runtimes(device: &Device) -> Vec<(&'static str, Mobivine)> {
    vec![
        ("android", android_runtime(device)),
        ("s60", s60_runtime(device)),
        ("webview", webview_runtime(device)),
    ]
}

/// One **resilient** runtime per platform binding — each over its own
/// fresh fixture device, so per-platform attempt counts and fault
/// traces can be compared without cross-talk.
pub fn resilient_runtimes_isolated(
    policy: &ResiliencePolicy,
) -> Vec<(&'static str, Device, Mobivine)> {
    let make = [
        ("android", android_runtime as fn(&Device) -> Mobivine),
        ("s60", s60_runtime as fn(&Device) -> Mobivine),
        ("webview", webview_runtime as fn(&Device) -> Mobivine),
    ];
    make.into_iter()
        .map(|(name, make)| {
            let device = device();
            let runtime = make(&device).with_resilience(policy.clone());
            (name, device, runtime)
        })
        .collect()
}
