//! Cross-platform contract of the read-through proxy cache
//! ([`mobivine::cache`]): invalidation on `setProperty` and on fault
//! transitions, single-flight coalescing accounting, and the fleet-level
//! determinism claim (caching is invisible to the checksum, on any
//! worker count).

mod common;

use std::sync::Arc;
use std::thread;

use common::{android_runtime, device, s60_runtime, webview_runtime};
use mobivine::api::LocationProxy;
use mobivine::cache::CachePolicy;
use mobivine::property::PropertyValue;
use mobivine::registry::Mobivine;
use mobivine_apps::fleet::{Fleet, FleetConfig};
use mobivine_device::fault::FaultPlan;
use mobivine_device::Device;

/// One **cached** runtime per platform binding, each over its own fresh
/// fixture device so cache counters never cross-talk.
fn cached_runtimes_isolated(policy: &CachePolicy) -> Vec<(&'static str, Device, Mobivine)> {
    let make = [
        ("android", android_runtime as fn(&Device) -> Mobivine),
        ("s60", s60_runtime as fn(&Device) -> Mobivine),
        ("webview", webview_runtime as fn(&Device) -> Mobivine),
    ];
    make.into_iter()
        .map(|(name, make)| {
            let device = device();
            let runtime = make(&device).with_cache(policy.clone());
            (name, device, runtime)
        })
        .collect()
}

/// `setProperty` through a cached proxy must flush the cache before the
/// write reaches the binding: the next read may not serve a value
/// computed under the old configuration.
#[test]
fn set_property_invalidates_on_every_platform() {
    for (name, _device, runtime) in cached_runtimes_isolated(&CachePolicy::default()) {
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        location.get_location().unwrap();
        location.get_location().unwrap();
        let metrics = runtime.cache_metrics().expect("cache metrics");
        assert_eq!(
            (metrics.snapshot().miss, metrics.snapshot().hit),
            (1, 1),
            "{name}: second read must hit"
        );

        // The write invalidates *before* it is forwarded, so the flush
        // happens whether or not the binding accepts the key.
        let _ = location.set_property("provider", PropertyValue::str("gps"));
        location.get_location().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.miss, 2, "{name}: post-write read must refill");
        assert!(
            snapshot.invalidated >= 1,
            "{name}: the flush must be counted: {snapshot}"
        );
    }
}

/// A fault-plan transition bumps the device's fault epoch; a cached
/// entry stamped under the old epoch must be discarded on the next read
/// even though its TTL has not expired.
#[test]
fn fault_transition_invalidates_on_every_platform() {
    for (name, device, runtime) in cached_runtimes_isolated(&CachePolicy::default()) {
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        location.get_location().unwrap();
        location.get_location().unwrap();
        let metrics = runtime.cache_metrics().expect("cache metrics");
        assert_eq!((metrics.snapshot().miss, metrics.snapshot().hit), (1, 1));

        // Outage window 1s–2s: both edges bump the fault epoch. Advance
        // past the restore so the refill lands on a healthy GPS — well
        // inside the 10s default TTL, so only the epoch can explain the
        // discard.
        FaultPlan::new(&device).gps_outage(1_000, 2_000);
        device.advance_ms(2_500);
        location.get_location().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.miss, 2,
            "{name}: the post-fault read must refill: {snapshot}"
        );
        assert_eq!(
            snapshot.invalidated, 1,
            "{name}: exactly one stamp-mismatch discard: {snapshot}"
        );
    }
}

/// Concurrent readers of one cached proxy obey the single-flight
/// accounting identity: every read is a hit, THE miss, or a coalesced
/// wait — and the binding plane is invoked exactly once.
#[test]
fn concurrent_reads_fill_the_binding_plane_exactly_once() {
    let device = device();
    let runtime = Arc::new(android_runtime(&device).with_cache(CachePolicy::default()));
    let metrics = runtime.cache_metrics().expect("cache metrics");

    const READERS: usize = 8;
    thread::scope(|scope| {
        for _ in 0..READERS {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                runtime
                    .proxy::<dyn LocationProxy>()
                    .unwrap()
                    .get_location()
                    .unwrap();
            });
        }
    });

    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.miss, 1, "one leader fills: {snapshot}");
    assert_eq!(
        snapshot.hit + snapshot.miss + snapshot.coalesced,
        READERS as u64,
        "every read is accounted exactly once: {snapshot}"
    );
}

/// The fleet-level determinism claim: a cached read-heavy run computes
/// the same checksum as the uncached run, on any worker count, and the
/// cache digest itself is worker-invariant.
#[test]
fn cached_fleet_checksums_are_identical_across_arms_and_workers() {
    let config = |cache: bool, workers: usize| FleetConfig {
        devices: 24,
        shards: 4,
        workers,
        rounds: 4,
        tick_ms: 500,
        ops_per_round: 6,
        seed: 17,
        read_heavy: true,
        cache,
        ..FleetConfig::default()
    };

    let cached = Fleet::build(config(true, 3)).unwrap().run();
    let uncached = Fleet::build(config(false, 3)).unwrap().run();
    assert_eq!(
        cached.checksum, uncached.checksum,
        "caching changed results"
    );

    let single = Fleet::build(config(true, 1)).unwrap().run();
    let quad = Fleet::build(config(true, 4)).unwrap().run();
    assert_eq!(cached.checksum, single.checksum);
    assert_eq!(cached.checksum, quad.checksum);
    assert_eq!(cached.cache, single.cache, "digest is worker-invariant");
    assert_eq!(cached.cache, quad.cache);

    let digest = cached.cache.as_ref().expect("cache ⇒ digest");
    assert!(digest.hits > 0);
    assert!(
        digest.misses * 5 <= uncached.location_fixes,
        "≥5x binding-read cut: {digest:?} vs {}",
        uncached.location_fixes
    );
}
