//! Radio-coverage resilience: a field agent's patrol passes through a
//! coverage hole. Proximity alerts keep working (GPS is independent of
//! the cell radio), arrival SMSes sent inside the hole fail at the
//! device, and service resumes when the agent walks back into coverage
//! — with the same observable behaviour through the proxy stack as
//! through the native platform APIs.

mod common;

use std::sync::{Arc, Mutex};

use common::android_runtime;
use mobivine::api::{LocationProxy, SmsProxy};
use mobivine::types::{DeliveryOutcome, ProximityEvent};
use mobivine_device::movement::MovementModel;
use mobivine_device::{Device, GeoPoint};

const TOWER: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

/// The agent starts at the tower and walks straight away from it at
/// 10 m/s; the single cell serves 1 km, so coverage is lost after
/// ~100 s.
fn walking_out_device() -> Device {
    let device = Device::builder()
        .msisdn("+agent")
        .position(TOWER)
        .movement(MovementModel::linear(TOWER, 90.0, 10.0))
        .build();
    device.gps().set_noise_enabled(false);
    device.smsc().register_address("+sup");
    device.coverage().add_cell(TOWER, 1_000.0);
    device
}

#[test]
fn sms_fails_in_the_hole_and_recovers() {
    let device = walking_out_device();
    let runtime = android_runtime(&device);
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();

    // In coverage at the start.
    assert!(sms.send_text_message("+sup", "leaving depot", None).is_ok());

    // 200 s later the agent is 2 km out — outside the cell.
    device.advance_ms(200_000);
    assert!(!device.signal_strength().in_coverage());
    let err = sms.send_text_message("+sup", "anyone?", None).unwrap_err();
    assert_eq!(err.kind(), mobivine::error::ProxyErrorKind::Io);

    // GPS still works: position is radio-independent.
    assert!(runtime
        .proxy::<dyn LocationProxy>()
        .unwrap()
        .get_location()
        .is_ok());

    // The operator extends the network; service resumes.
    device
        .coverage()
        .add_cell(TOWER.destination(90.0, 2_500.0), 1_000.0);
    assert!(sms.send_text_message("+sup", "back online", None).is_ok());
    device.advance_ms(1_000);
    let bodies: Vec<String> = device
        .smsc()
        .inbox("+sup")
        .into_iter()
        .map(|m| m.body)
        .collect();
    assert_eq!(bodies, vec!["leaving depot", "back online"]);
}

#[test]
fn proximity_alerts_unaffected_by_coverage_holes() {
    // Region 1.5 km out — beyond the cell. The alert still fires: the
    // positioning engine does not need the cell radio.
    let device = walking_out_device();
    let runtime = android_runtime(&device);
    let region = TOWER.destination(90.0, 1_500.0);
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    runtime
        .proxy::<dyn LocationProxy>()
        .unwrap()
        .add_proximity_alert(
            region.latitude,
            region.longitude,
            0.0,
            100.0,
            -1,
            Arc::new(move |e: &ProximityEvent| sink.lock().unwrap().push(e.entering)),
        )
        .unwrap();
    device.advance_ms(300_000);
    assert_eq!(events.lock().unwrap().as_slice(), &[true, false]);
}

#[test]
fn delivery_reports_distinguish_radio_failure_from_network_loss() {
    // Device-side radio failure: synchronous Io error, listener never
    // fires. Network-side loss: submission succeeds, listener reports
    // Failed. Distinct failure surfaces, both uniform.
    let device = walking_out_device();
    let runtime = android_runtime(&device);
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();

    let outcomes = Arc::new(Mutex::new(Vec::new()));

    // Network-side loss while in coverage.
    device.smsc().set_loss_probability(1.0);
    let sink = Arc::clone(&outcomes);
    sms.send_text_message(
        "+sup",
        "lost in transit",
        Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
            sink.lock().unwrap().push(o);
        })),
    )
    .unwrap();
    device.advance_ms(1_000);
    assert_eq!(
        outcomes.lock().unwrap().as_slice(),
        &[DeliveryOutcome::Failed]
    );

    // Device-side radio failure out of coverage: error before submit.
    device.advance_ms(200_000);
    let sink = Arc::clone(&outcomes);
    let result = sms.send_text_message(
        "+sup",
        "never submitted",
        Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
            sink.lock().unwrap().push(o);
        })),
    );
    assert!(result.is_err());
    device.advance_ms(5_000);
    assert_eq!(outcomes.lock().unwrap().len(), 1, "no second report");
}
