//! End-to-end workforce-management runs: every variant (3 native, 1
//! proxy × 3 platforms) must produce the same observable outcome on the
//! same scenario — and the proxy variants must produce **identical
//! event logs** across platforms.

mod common;

use std::sync::Arc;

use common::{android_runtime, s60_runtime, webview_runtime};
use mobivine::api::{HttpProxy, LocationProxy};
use mobivine::registry::Mobivine;
use mobivine::resilience::ResiliencePolicy;
use mobivine_android::activity::ActivityHost;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_apps::logic::AppEvents;
use mobivine_apps::native_android::NativeAndroidApp;
use mobivine_apps::native_s60::NativeS60App;
use mobivine_apps::native_webview::NativeWebViewApp;
use mobivine_apps::proxy_app::ProxyWorkforceApp;
use mobivine_apps::scenario::{Scenario, ScenarioOutcome};
use mobivine_device::fault::FaultPlan;
use mobivine_s60::midlet::MidletHost;
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

fn run_proxy_variant(make: impl FnOnce(&Scenario) -> Mobivine) -> (ScenarioOutcome, Vec<String>) {
    let scenario = Scenario::two_site_patrol(5);
    let runtime = make(&scenario);
    let events = AppEvents::new();
    let mut app =
        ProxyWorkforceApp::new(runtime, scenario.config.clone(), Arc::clone(&events)).unwrap();
    app.start().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    (ScenarioOutcome::collect(&scenario), events.snapshot())
}

#[test]
fn proxy_variant_outcomes_and_event_logs_identical_across_platforms() {
    let (android_outcome, android_log) = run_proxy_variant(|s| android_runtime(&s.device));
    let (s60_outcome, s60_log) = run_proxy_variant(|s| s60_runtime(&s.device));
    let (webview_outcome, webview_log) = run_proxy_variant(|s| webview_runtime(&s.device));

    let expected = ScenarioOutcome::expected_two_site();
    assert_eq!(android_outcome, expected);
    assert_eq!(s60_outcome, expected);
    assert_eq!(webview_outcome, expected);

    // The business-logic event sequence — not just the counts — is the
    // same everywhere. (This is stronger than the paper's qualitative
    // "code is similar" claim.)
    assert_eq!(android_log, s60_log, "android vs s60 event logs");
    assert_eq!(android_log, webview_log, "android vs webview event logs");
    assert!(android_log.contains(&"arrived:site-1".to_owned()));
    assert!(android_log.contains(&"task-complete:site-2".to_owned()));
}

#[test]
fn native_variants_reach_the_same_outcome_with_three_codebases() {
    // Android native.
    let scenario = Scenario::two_site_patrol(5);
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let events = AppEvents::new();
    let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = ActivityHost::new(app, platform.new_context());
    host.launch().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    let android_outcome = ScenarioOutcome::collect(&scenario);

    // S60 native.
    let scenario = Scenario::two_site_patrol(5);
    let s60 = S60Platform::new(scenario.device.clone());
    let events = AppEvents::new();
    let app = NativeS60App::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = MidletHost::new(app, s60);
    host.start().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    let s60_outcome = ScenarioOutcome::collect(&scenario);

    // WebView native.
    let scenario = Scenario::two_site_patrol(5);
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let webview = WebView::new(platform.new_context());
    let events = AppEvents::new();
    let app = NativeWebViewApp::new(scenario.config.clone(), Arc::clone(&events));
    app.start(&webview);
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    let webview_outcome = ScenarioOutcome::collect(&scenario);

    let expected = ScenarioOutcome::expected_two_site();
    assert_eq!(android_outcome, expected);
    assert_eq!(s60_outcome, expected);
    assert_eq!(webview_outcome, expected);
}

#[test]
fn proxy_and_native_agree_on_server_side_artifacts() {
    // Native run.
    let scenario = Scenario::two_site_patrol(6);
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let events = AppEvents::new();
    let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = ActivityHost::new(app, platform.new_context());
    host.launch().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    let native_log: Vec<String> = scenario
        .server
        .activity_log()
        .into_iter()
        .map(|e| e.event)
        .collect();

    // Proxy run on a fresh identical world.
    let scenario = Scenario::two_site_patrol(6);
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let events = AppEvents::new();
    let mut app = ProxyWorkforceApp::new(
        Mobivine::for_android(platform.new_context()),
        scenario.config.clone(),
        Arc::clone(&events),
    )
    .unwrap();
    app.start().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    let proxy_log: Vec<String> = scenario
        .server
        .activity_log()
        .into_iter()
        .map(|e| e.event)
        .collect();

    assert_eq!(native_log, proxy_log);
    assert_eq!(
        proxy_log,
        vec![
            "arrived site 1",
            "left site 1",
            "arrived site 2",
            "left site 2"
        ]
    );
}

#[test]
fn resilient_proxy_variant_rides_out_a_startup_partition() {
    // The backhaul is partitioned exactly when the app boots and
    // fetches its task list. With the runtime's resilience layer on,
    // the startup fetch retries across the outage on the simulated
    // clock and the patrol then completes with the standard outcome —
    // the application code is unchanged.
    for (name, make) in [
        (
            "android",
            android_runtime as fn(&mobivine_device::Device) -> Mobivine,
        ),
        ("s60", s60_runtime),
        ("webview", webview_runtime),
    ] {
        let scenario = Scenario::two_site_patrol(5);
        let runtime = make(&scenario.device).with_resilience(
            ResiliencePolicy::default()
                .backoff_base_ms(500)
                .jitter_seed(9),
        );
        let metrics = runtime.resilience_metrics().unwrap();
        FaultPlan::new(&scenario.device).network_partition(1, 400);
        scenario.device.advance_ms(1);
        let events = AppEvents::new();
        let mut app =
            ProxyWorkforceApp::new(runtime, scenario.config.clone(), Arc::clone(&events)).unwrap();
        app.start().unwrap_or_else(|e| {
            panic!("platform {name}: resilient fetch must ride out the partition: {e}")
        });
        scenario.device.advance_ms(scenario.patrol_duration_ms());
        scenario.device.advance_ms(1_000);
        assert_eq!(
            ScenarioOutcome::collect(&scenario),
            ScenarioOutcome::expected_two_site(),
            "platform {name}"
        );
        let snap = metrics.snapshot();
        assert!(
            snap.retries >= 1,
            "platform {name}: startup fetch retried ({snap})"
        );
        assert_eq!(snap.fatal_failures, 0, "platform {name}");
    }
}

#[test]
fn agent_track_is_reported_through_the_http_proxy() {
    // Exercise the tracking route with the HTTP proxy directly — the
    // "Agent Tracking" server feature of Fig. 1.
    let scenario = Scenario::two_site_patrol(7);
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let http = runtime.proxy::<dyn HttpProxy>().unwrap();
    let location = runtime.proxy::<dyn LocationProxy>().unwrap();
    for _ in 0..5 {
        scenario.device.advance_ms(10_000);
        let fix = location.get_location().unwrap();
        let body = serde_json_body(&scenario.config.agent_id, &fix);
        let resp = http
            .request(
                "POST",
                "http://wfm.example/report-location",
                body.as_bytes(),
            )
            .unwrap();
        assert!(resp.is_success());
    }
    assert_eq!(scenario.server.track(scenario.config.agent_id).len(), 5);
}

fn serde_json_body(agent_id: &u64, fix: &mobivine::types::Location) -> String {
    format!(
        "{{\"agent_id\":{},\"latitude\":{},\"longitude\":{},\"at_ms\":{}}}",
        agent_id, fix.latitude, fix.longitude, fix.timestamp_ms
    )
}
