//! Allocation-count proof for the telemetry hot path.
//!
//! The tentpole claim: after warm-up, a traced proxy call performs
//! **zero heap allocations** in the telemetry recording path — label
//! interning, instrument-handle resolution and span-name formatting all
//! happened once at wiring time, per-thread span sinks were
//! pre-allocated at their retention capacity, and per-call recording is
//! atomics plus moves.
//!
//! The proof is a counting [`GlobalAlloc`] wrapper. This file holds a
//! **single** `#[test]` on purpose: integration-test binaries run tests
//! on their own threads, and a sibling test's allocations would corrupt
//! the per-thread counter windows.
//!
//! Per platform:
//! - **Android** and **S60** calls are asserted to make *absolutely
//!   zero* allocations once warm — the whole stack (traced decorators,
//!   ambient span stack, platform middleware, device substrate) runs
//!   allocation-free.
//! - **WebView** calls cross the JavaScript bridge. With the arena
//!   wire format the crossing itself is allocation-free once warm: the
//!   handle's scratch [`WireBuf`](mobivine_webview::WireBuf) pair is
//!   cleared, not freed, between calls; the W3C `traceparent` renders
//!   into a fixed 55-byte stack buffer; and the wrapper decodes
//!   arguments and encodes the reply as offset views into the same
//!   arenas. So the WebView pin is the same as android/s60: exactly
//!   zero allocations per warmed traced `getLocation`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use mobivine::api::LocationProxy;
use mobivine::registry::Mobivine;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation made by the current thread, then delegates
/// to the system allocator.
struct CountingAlloc;

// SAFETY: pure delegation to `System`; the thread-local counter bump
// does not allocate (const-initialised `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Calls `getLocation` `calls` times and returns the allocations made.
fn measure(proxy: &Arc<dyn LocationProxy>, calls: u32) -> u64 {
    let before = allocations();
    for _ in 0..calls {
        let location = proxy.get_location().expect("getLocation succeeds");
        std::hint::black_box(&location);
    }
    allocations() - before
}

const WARMUP_CALLS: u32 = 5;
const MEASURED_CALLS: u32 = 50;

#[test]
fn traced_get_location_allocates_nothing_after_warmup() {
    // --- Android: absolute zero -----------------------------------
    let android = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context()).with_telemetry();
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("android supports Location");
    measure(&proxy, WARMUP_CALLS);
    let android_allocs = measure(&proxy, MEASURED_CALLS);
    assert_eq!(
        android_allocs, 0,
        "traced android getLocation must not allocate after warm-up \
         ({android_allocs} allocations over {MEASURED_CALLS} calls)"
    );

    // --- S60: absolute zero ---------------------------------------
    let runtime = Mobivine::for_s60(S60Platform::new(Device::builder().build())).with_telemetry();
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("s60 supports Location");
    measure(&proxy, WARMUP_CALLS);
    let s60_allocs = measure(&proxy, MEASURED_CALLS);
    assert_eq!(
        s60_allocs, 0,
        "traced s60 getLocation must not allocate after warm-up \
         ({s60_allocs} allocations over {MEASURED_CALLS} calls)"
    );

    // --- WebView: absolute zero through the wire arenas -----------
    let android = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
    let webview = Arc::new(WebView::new(android.new_context()));
    let runtime = Mobivine::for_webview(webview).with_telemetry();
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("webview supports Location");
    measure(&proxy, WARMUP_CALLS);
    let webview_allocs = measure(&proxy, MEASURED_CALLS);
    assert_eq!(
        webview_allocs, 0,
        "traced webview getLocation must not allocate after warm-up \
         ({webview_allocs} allocations over {MEASURED_CALLS} calls): the \
         scratch WireBuf pair, stack traceparent and static span names \
         make the bridge crossing itself allocation-free"
    );
}
