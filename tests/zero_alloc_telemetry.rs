//! Allocation-count proof for the telemetry hot path.
//!
//! The tentpole claim: after warm-up, a traced proxy call performs
//! **zero heap allocations** in the telemetry recording path — label
//! interning, instrument-handle resolution and span-name formatting all
//! happened once at wiring time, per-thread span sinks were
//! pre-allocated at their retention capacity, and per-call recording is
//! atomics plus moves.
//!
//! The proof is a counting [`GlobalAlloc`] wrapper. This file holds a
//! **single** `#[test]` on purpose: integration-test binaries run tests
//! on their own threads, and a sibling test's allocations would corrupt
//! the per-thread counter windows.
//!
//! Per platform:
//! - **Android** and **S60** calls are asserted to make *absolutely
//!   zero* allocations once warm — the whole stack (traced decorators,
//!   ambient span stack, platform middleware, device substrate) runs
//!   allocation-free.
//! - **WebView** calls cross the JavaScript bridge, which marshals
//!   JSON values and a W3C `traceparent` wire string per call — a real
//!   process-like boundary that allocates by design, telemetry on or
//!   off. There the assertion is that tracing adds only the small,
//!   constant wire-format cost per call (and that the cost is flat, not
//!   growing, across batches): the recording path itself contributes
//!   nothing, as the android/s60 zeros prove for the shared machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use mobivine::api::LocationProxy;
use mobivine::registry::Mobivine;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation made by the current thread, then delegates
/// to the system allocator.
struct CountingAlloc;

// SAFETY: pure delegation to `System`; the thread-local counter bump
// does not allocate (const-initialised `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Calls `getLocation` `calls` times and returns the allocations made.
fn measure(proxy: &Arc<dyn LocationProxy>, calls: u32) -> u64 {
    let before = allocations();
    for _ in 0..calls {
        let location = proxy.get_location().expect("getLocation succeeds");
        std::hint::black_box(&location);
    }
    allocations() - before
}

const WARMUP_CALLS: u32 = 5;
const MEASURED_CALLS: u32 = 50;

#[test]
fn traced_get_location_allocates_nothing_after_warmup() {
    // --- Android: absolute zero -----------------------------------
    let android = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(android.new_context()).with_telemetry();
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("android supports Location");
    measure(&proxy, WARMUP_CALLS);
    let android_allocs = measure(&proxy, MEASURED_CALLS);
    assert_eq!(
        android_allocs, 0,
        "traced android getLocation must not allocate after warm-up \
         ({android_allocs} allocations over {MEASURED_CALLS} calls)"
    );

    // --- S60: absolute zero ---------------------------------------
    let runtime = Mobivine::for_s60(S60Platform::new(Device::builder().build())).with_telemetry();
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("s60 supports Location");
    measure(&proxy, WARMUP_CALLS);
    let s60_allocs = measure(&proxy, MEASURED_CALLS);
    assert_eq!(
        s60_allocs, 0,
        "traced s60 getLocation must not allocate after warm-up \
         ({s60_allocs} allocations over {MEASURED_CALLS} calls)"
    );

    // --- WebView: only the constant wire-format cost --------------
    let make_webview_proxy = |traced: bool| {
        let android = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(android.new_context()));
        let runtime = Mobivine::for_webview(webview);
        let runtime = if traced {
            runtime.with_telemetry()
        } else {
            runtime
        };
        runtime
            .proxy::<dyn LocationProxy>()
            .expect("webview supports Location")
    };

    let untraced = make_webview_proxy(false);
    measure(&untraced, WARMUP_CALLS);
    let untraced_allocs = measure(&untraced, MEASURED_CALLS);

    let traced = make_webview_proxy(true);
    measure(&traced, WARMUP_CALLS);
    let traced_first = measure(&traced, MEASURED_CALLS);
    let traced_second = measure(&traced, MEASURED_CALLS);

    // Steady state: the traced cost is flat across batches — nothing
    // accumulates per call (no lookup-table or sink growth).
    assert_eq!(
        traced_first, traced_second,
        "traced webview per-batch allocations must be constant"
    );
    // Tracing may add only the per-call wire-format strings that cross
    // the JS bridge (the `traceparent` header and the bridge span
    // name), not any recording-path overhead.
    let added = traced_first.saturating_sub(untraced_allocs);
    let added_per_call = added as f64 / MEASURED_CALLS as f64;
    assert!(
        added_per_call <= 8.0,
        "tracing added {added_per_call:.1} allocations per webview call \
         (traced {traced_first} vs untraced {untraced_allocs} over {MEASURED_CALLS} calls); \
         expected only the constant traceparent/bridge-name wire cost"
    );
}
