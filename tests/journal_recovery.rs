//! Deterministic mirrors of the write-ahead-journal properties in
//! `tests/properties.rs`.
//!
//! The offline `proptest` stand-in type-checks property bodies without
//! executing them, so these tests re-state the same invariants over
//! seeded input streams that actually run:
//!
//! 1. recovery of a clean journal is idempotent and byte-identical,
//! 2. after a crash at *every* possible torn-tail truncation point,
//!    recovery surfaces exactly the durable prefix (and truncates the
//!    torn frame so a second scan is clean), and
//! 3. a crash-stormed durable [`WfmServer`] replays to the same state
//!    digest as a crash-free one fed the identical request stream,
//!    with every effect applied exactly once.

use std::sync::Arc;

use mobivine::{IdempotencyKey, Journal, JournalMetrics, JournalPolicy, Lsn};
use mobivine_apps::server::{DurabilityConfig, WfmServer};
use mobivine_device::fault::{CrashKind, CrashSchedule};
use mobivine_device::net::HttpRequest;
use mobivine_device::Device;

/// splitmix64 — the same cheap deterministic generator the fleet
/// engine uses for its seeded traffic.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `count` seeded payloads with lengths in `0..=max_len`, including
/// the empty payload when the seed lands on it.
fn seeded_payloads(seed: u64, count: usize, max_len: usize) -> Vec<Vec<u8>> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            let len = (splitmix(&mut state) as usize) % (max_len + 1);
            (0..len).map(|_| splitmix(&mut state) as u8).collect()
        })
        .collect()
}

fn journal_with(payloads: &[Vec<u8>]) -> Journal {
    let mut journal = Journal::new(&JournalPolicy::default(), JournalMetrics::shared());
    for payload in payloads {
        journal.append(payload);
    }
    journal.fsync();
    journal
}

#[test]
fn replaying_a_clean_journal_twice_is_byte_identical() {
    for seed in [3u64, 17, 96] {
        let payloads = seeded_payloads(seed, 24, 48);
        let mut journal = journal_with(&payloads);

        let first = journal.recover(Lsn(0));
        let second = journal.recover(Lsn(0));
        assert_eq!(
            first, second,
            "a clean scan must be repeatable (seed {seed})"
        );
        assert_eq!(first.torn_records, 0);
        assert_eq!(first.records.len(), payloads.len());
        for (record, payload) in first.records.iter().zip(&payloads) {
            assert_eq!(&record.payload, payload, "seed {seed}");
        }
        let mut last = None;
        for record in &first.records {
            assert!(last.is_none_or(|lsn| lsn < record.lsn), "LSNs ascend");
            last = Some(record.lsn);
        }
    }
}

#[test]
fn recovery_surfaces_exactly_the_durable_prefix_at_every_truncation_point() {
    let committed = seeded_payloads(11, 6, 32);
    let tail: Vec<u8> = seeded_payloads(12, 1, 32).remove(0);
    let frame_len = {
        let mut probe = journal_with(&committed);
        probe.append(&tail);
        probe.volatile_len()
    };
    assert!(frame_len > tail.len(), "frame = header + payload");

    for keep in 0..=frame_len {
        let mut journal = journal_with(&committed);
        journal.append(&tail);
        journal.crash(Some(keep));

        let recovery = journal.recover(Lsn(0));
        let tail_committed = keep == frame_len;
        assert_eq!(
            recovery.records.len(),
            committed.len() + usize::from(tail_committed),
            "keep {keep}: only fsynced frames (plus a fully-flushed tail) survive"
        );
        for (record, payload) in recovery.records.iter().zip(&committed) {
            assert_eq!(&record.payload, payload, "keep {keep}");
        }
        if tail_committed {
            assert_eq!(recovery.records[committed.len()].payload, tail);
        }
        assert_eq!(
            recovery.torn_records,
            u64::from(keep > 0 && !tail_committed),
            "keep {keep}: a partial frame is torn, an empty or complete one is not"
        );

        // The torn frame was truncated in place: a second scan is
        // clean and byte-identical, and new appends land after the
        // durable end with no gap corruption.
        let again = journal.recover(Lsn(0));
        assert_eq!(again.records, recovery.records, "keep {keep}");
        assert_eq!(again.torn_records, 0, "keep {keep}: the tail was truncated");

        journal.append(b"post-crash");
        journal.fsync();
        let resumed = journal.recover(Lsn(0));
        assert_eq!(resumed.records.len(), recovery.records.len() + 1);
        assert_eq!(
            resumed.records.last().expect("appended record").payload,
            b"post-crash"
        );
    }
}

/// Drives `ops` seeded track-point posts at a durable server,
/// retrying once after any 503 (a crash), exactly like a real client.
fn drive_server(seed: u64, ops: u64, crash: Option<Arc<CrashSchedule>>) -> (Device, WfmServer) {
    let device = Device::builder().build();
    let server = WfmServer::durable(DurabilityConfig {
        checkpoint_every: 1,
        crash,
        ..Default::default()
    });
    server.install(device.network(), "wfm.example");
    for op in 0..ops {
        let key = IdempotencyKey::derive(seed, 1, 1, op);
        let body = format!(
            "{{\"agent_id\":1,\"latitude\":28.5,\"longitude\":77.{op},\"at_ms\":{}}}",
            1_000 + op,
        );
        let url = format!("http://wfm.example/report-location?idem={}", key.to_hex());
        let post = || {
            let req = HttpRequest::post(&url, body.clone().into_bytes()).unwrap();
            device.network().execute(&req).unwrap().0.status
        };
        if post() == 503 {
            assert_eq!(post(), 200, "the retry after a crash commits (op {op})");
        }
    }
    (device, server)
}

#[test]
fn a_crash_storm_replays_to_the_crash_free_digest() {
    let seed = 0x5eed;
    let ops = 18u64;
    // One victim per crash kind, spread across the stream.
    let schedule = CrashSchedule::new([
        (
            IdempotencyKey::derive(seed, 1, 1, 2).0,
            CrashKind::TornWrite,
        ),
        (
            IdempotencyKey::derive(seed, 1, 1, 9).0,
            CrashKind::BeforeEffect,
        ),
        (
            IdempotencyKey::derive(seed, 1, 1, 14).0,
            CrashKind::AfterEffect,
        ),
    ]);
    schedule.arm();

    let (_stormed_device, stormed) = drive_server(seed, ops, Some(Arc::clone(&schedule)));
    let (_clean_device, clean) = drive_server(seed, ops, None);

    assert_eq!(
        stormed.state_digest(),
        clean.state_digest(),
        "wipe + checkpoint + replay is invisible in the state digest"
    );
    assert_eq!(stormed.counts().tracks, ops);
    assert_eq!(clean.counts().tracks, ops);

    let ledger = stormed.recovery_snapshot().expect("durable server");
    assert_eq!(ledger.duplicates(), 0, "every effect lands exactly once");
    assert_eq!(ledger.recoveries, 3, "one recovery per scheduled crash");
    assert_eq!(ledger.torn_crashes, 1);
    assert_eq!(ledger.gap_crashes, 1);
    assert_eq!(
        ledger.suppressed_duplicates, 2,
        "the intent-gap and post-effect retries were deduplicated, not re-applied"
    );

    let clean_ledger = clean.recovery_snapshot().expect("durable server");
    assert_eq!(clean_ledger.recoveries, 0);
    assert_eq!(clean_ledger.duplicates(), 0);
}

#[test]
fn replaying_the_same_journal_into_two_servers_matches() {
    // Same seeded stream into two independent durable servers:
    // identical digests, counts, and journal high-water marks. This is
    // the server-level "replay twice" mirror — the journal fully
    // determines the state.
    let (_a_device, a) = drive_server(77, 12, None);
    let (_b_device, b) = drive_server(77, 12, None);
    assert_eq!(a.state_digest(), b.state_digest());
    assert_eq!(a.counts(), b.counts());
    let (a_snap, b_snap) = (
        a.journal_snapshot().expect("durable"),
        b.journal_snapshot().expect("durable"),
    );
    assert_eq!(
        a_snap, b_snap,
        "every durability counter marches in lockstep"
    );
    assert_eq!(a_snap.appends, 12);
}
