//! Trace-context propagation across the full M-Proxy call path.
//!
//! Every proxy call must descend the stack as ONE connected span tree —
//! app → proxy plane → resilience → binding plane → platform module →
//! device — with parent links intact and timestamps monotonic on the
//! simulated clock. The two interesting crossings are the WebView JS
//! bridge (the context travels as a marshalled `traceparent` string,
//! not a shared stack) and the S60 MIDlet lifecycle (the app span opens
//! inside `startApp`).

mod common;

use std::sync::Arc;

use common::{android_runtime, device, s60_runtime, webview_runtime};
use mobivine::api::LocationProxy;
use mobivine::registry::Mobivine;
use mobivine::resilience::ResiliencePolicy;
use mobivine_s60::midlet::{Midlet, MidletHost};
use mobivine_s60::S60Platform;
use mobivine_telemetry::export::{chrome_trace_json, validate_chrome_trace};
use mobivine_telemetry::span::{validate_tree, Plane, SpanRecord};
use mobivine_telemetry::Tracer;

/// Planes present in `spans`, deduplicated, in no particular order.
fn planes(spans: &[SpanRecord]) -> Vec<Plane> {
    let mut seen = Vec::new();
    for span in spans {
        if !seen.contains(&span.plane) {
            seen.push(span.plane);
        }
    }
    seen
}

fn assert_connected_and_monotonic(spans: &[SpanRecord]) {
    let root = validate_tree(spans).expect("single connected span tree");
    let root_span = spans.iter().find(|s| s.span_id == root).unwrap();
    assert_eq!(
        root_span.plane,
        Plane::App,
        "the application span is the root"
    );
    for span in spans {
        assert!(
            span.end_ms >= span.start_ms,
            "span {} ends before it starts",
            span.name
        );
        if let Some(parent) = span.parent_id {
            let parent = spans.iter().find(|s| s.span_id == parent).unwrap();
            assert!(
                span.start_ms >= parent.start_ms,
                "child {} starts before parent {}",
                span.name,
                parent.name
            );
        }
    }
}

/// One traced `getLocation` under an application root span; returns the
/// finished spans of that single trace.
fn traced_get_location(runtime: &Mobivine, device: &mobivine_device::Device) -> Vec<SpanRecord> {
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("location proxy");
    let tracer = runtime.tracer().expect("telemetry attached").clone();
    let root = tracer.root("app:main", Plane::App, device.now_ms());
    proxy.get_location().expect("getLocation succeeds");
    root.end(device.now_ms());
    tracer.take_finished()
}

#[test]
fn android_call_descends_every_plane_as_one_tree() {
    let device = device();
    let runtime = android_runtime(&device)
        .with_resilience(ResiliencePolicy::default())
        .with_telemetry();
    let spans = traced_get_location(&runtime, &device);
    assert_connected_and_monotonic(&spans);

    let seen = planes(&spans);
    for plane in [
        Plane::App,
        Plane::Proxy,
        Plane::Resilience,
        Plane::Binding,
        Plane::Platform,
        Plane::Device,
    ] {
        assert!(seen.contains(&plane), "missing {plane} span in {seen:?}");
    }

    // The semantic plane nests directly under the app span; the
    // resilience span under it; the binding plane under resilience.
    let find = |p: Plane| spans.iter().find(|s| s.plane == p).unwrap();
    assert_eq!(find(Plane::Proxy).parent_id, Some(find(Plane::App).span_id));
    assert_eq!(
        find(Plane::Resilience).parent_id,
        Some(find(Plane::Proxy).span_id)
    );
    assert_eq!(
        find(Plane::Binding).parent_id,
        Some(find(Plane::Resilience).span_id)
    );
}

#[test]
fn android_trace_round_trips_through_chrome_export() {
    let device = device();
    let runtime = android_runtime(&device)
        .with_resilience(ResiliencePolicy::default())
        .with_telemetry();
    let spans = traced_get_location(&runtime, &device);
    let json = chrome_trace_json(&spans);
    let summary = validate_chrome_trace(&json).expect("export validates");
    assert_eq!(summary.spans, spans.len());
    assert_eq!(summary.traces, 1);
}

#[test]
fn webview_bridge_crossing_keeps_the_tree_connected() {
    let device = device();
    let runtime = webview_runtime(&device).with_telemetry();
    let spans = traced_get_location(&runtime, &device);
    assert_connected_and_monotonic(&spans);

    // The bridge span only exists because the JS side rendered its
    // context as a `traceparent` string and the Java wrapper parsed it
    // back — a shared ambient stack would not produce this span at all
    // without a crossing.
    let bridge = spans
        .iter()
        .find(|s| s.plane == Plane::Bridge)
        .expect("bridge-plane span crossed the JS bridge");
    assert!(
        bridge.name.contains("LocationWrapper.getLocation"),
        "bridge span names the wrapper call: {}",
        bridge.name
    );
    // Its parent is the JS-side binding-plane span, in the same trace.
    let binding = spans.iter().find(|s| s.plane == Plane::Binding).unwrap();
    assert_eq!(bridge.parent_id, Some(binding.span_id));
    assert_eq!(bridge.trace_id, binding.trace_id);

    // The platform module and device spans nest below the bridge, so
    // the whole descent is visible from one trace id.
    let platform = spans.iter().find(|s| s.plane == Plane::Platform).unwrap();
    assert_eq!(platform.parent_id, Some(bridge.span_id));
}

/// A MIDlet whose `startApp` performs one proxied `getLocation` under
/// its own application span — the S60 shape of the paper's Fig. 8(b).
struct TracedMidlet {
    proxy: Arc<dyn LocationProxy>,
    tracer: Tracer,
}

impl Midlet for TracedMidlet {
    fn start_app(&mut self, platform: &S60Platform) {
        let now = platform.device().now_ms();
        let root = self.tracer.root("app:midlet.startApp", Plane::App, now);
        self.proxy.get_location().expect("getLocation succeeds");
        root.end(platform.device().now_ms());
    }
}

#[test]
fn s60_midlet_path_yields_one_connected_tree() {
    let device = device();
    let platform = S60Platform::new(device.clone());
    let runtime = Mobivine::for_s60(platform.clone()).with_telemetry();
    let midlet = TracedMidlet {
        proxy: runtime
            .proxy::<dyn LocationProxy>()
            .expect("location proxy"),
        tracer: runtime.tracer().expect("telemetry attached").clone(),
    };
    let mut host = MidletHost::new(midlet, platform);
    host.start().expect("startApp");

    let spans = runtime.tracer().unwrap().take_finished();
    assert_connected_and_monotonic(&spans);
    let seen = planes(&spans);
    for plane in [Plane::App, Plane::Proxy, Plane::Binding, Plane::Platform] {
        assert!(seen.contains(&plane), "missing {plane} span in {seen:?}");
    }
    // No resilience layer attached, so no resilience-plane span — the
    // binding plane parents straight off the semantic plane.
    let find = |p: Plane| spans.iter().find(|s| s.plane == p).unwrap();
    assert_eq!(
        find(Plane::Binding).parent_id,
        Some(find(Plane::Proxy).span_id)
    );
}

#[test]
fn all_three_platforms_produce_complete_parented_trees() {
    for (name, make) in [
        (
            "android",
            android_runtime as fn(&mobivine_device::Device) -> Mobivine,
        ),
        ("s60", s60_runtime),
        ("webview", webview_runtime),
    ] {
        let device = device();
        let runtime = make(&device).with_telemetry();
        let spans = traced_get_location(&runtime, &device);
        assert!(spans.len() >= 4, "{name}: expected a multi-plane descent");
        assert_connected_and_monotonic(&spans);
        let json = chrome_trace_json(&spans);
        validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{name}: chrome export invalid: {e}"));
    }
}
