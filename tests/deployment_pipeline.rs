//! The full S60 deployment pipeline, end to end: plug-in packaging
//! (merge proxy jars into the single suite jar) → OTA publication →
//! device-side download, validation and installation → the installed
//! application actually runs against the platform.

use std::sync::Arc;

use mobivine_apps::logic::AppEvents;
use mobivine_apps::native_s60::NativeS60App;
use mobivine_apps::scenario::{Scenario, ScenarioOutcome};
use mobivine_mplugin::packaging::{ProxySelection, S60Extension};
use mobivine_s60::midlet::MidletHost;
use mobivine_s60::ota::{AppManager, OtaServer};
use mobivine_s60::packaging::{JadDescriptor, Jar};
use mobivine_s60::S60Platform;

#[test]
fn package_publish_install_run() {
    let scenario = Scenario::two_site_patrol(8);

    // 1. The plug-in packages the application with its chosen proxies
    //    into the single MIDlet-suite jar S60 requires.
    let mut app_jar = Jar::new("workforce.jar");
    app_jar
        .add_entry("com/acme/WorkForceManagement.class", b"app".to_vec())
        .unwrap();
    let mut jad = JadDescriptor::for_jar(&app_jar, "WorkForce", "ACME", "1.0.0");
    jad.jar_url = "http://ota.example/workforce.jar".to_owned();
    jad.permissions = vec![
        "javax.microedition.location.Location".to_owned(),
        "javax.wireless.messaging.sms.send".to_owned(),
        "javax.microedition.io.Connector.http".to_owned(),
    ];
    let suite = S60Extension::package(
        app_jar,
        jad,
        &ProxySelection::new(&["Location", "SMS", "Http"]),
    )
    .unwrap();
    assert!(suite
        .jar
        .contains("com/ibm/S60/location/LocationProxy.class"));

    // 2. Publish over OTA on the scenario's simulated network.
    let jad_url = OtaServer::publish(scenario.device.network(), "ota.example", &suite);

    // 3. Device-side installation (the AMS fetches, validates,
    //    records).
    let platform = S60Platform::new(scenario.device.clone());
    let manager = AppManager::new();
    let name = manager.install_from_url(&platform, &jad_url).unwrap();
    assert_eq!(name, "WorkForce");
    let installed = manager.suite("WorkForce").unwrap();
    assert_eq!(installed.jad.permissions.len(), 3);

    // 4. Launch the installed application and run the scenario.
    let events = AppEvents::new();
    let app = NativeS60App::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = MidletHost::new(app, platform);
    host.start().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    assert_eq!(
        ScenarioOutcome::collect(&scenario),
        ScenarioOutcome::expected_two_site()
    );
}

#[test]
fn tampered_ota_package_is_rejected_before_installation() {
    let scenario = Scenario::two_site_patrol(9);
    let mut app_jar = Jar::new("workforce.jar");
    app_jar
        .add_entry("com/acme/WorkForceManagement.class", b"app".to_vec())
        .unwrap();
    let mut jad = JadDescriptor::for_jar(&app_jar, "WorkForce", "ACME", "1.0.0");
    jad.jar_url = "http://ota.example/workforce.jar".to_owned();
    let mut suite = S60Extension::package(app_jar, jad, &ProxySelection::new(&["SMS"])).unwrap();
    // Corrupt the descriptor's size claim after packaging.
    suite.jad.jar_size -= 1;
    let jad_url = OtaServer::publish(scenario.device.network(), "ota.example", &suite);
    let platform = S60Platform::new(scenario.device.clone());
    let manager = AppManager::new();
    assert!(manager.install_from_url(&platform, &jad_url).is_err());
    assert!(manager.installed().is_empty());
}
