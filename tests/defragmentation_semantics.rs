//! The central de-fragmentation claim: the uniform proxy APIs deliver
//! **identical semantics** on every platform, even where the native
//! interfaces differ wildly (Android's repeated Intent-based enter/exit
//! alerts vs S60's single-shot listener vs WebView's polled bridge).

use std::sync::{Arc, Mutex};

use mobivine::api::LocationProxy;
use mobivine::registry::Mobivine;
use mobivine::types::{ProximityEvent, SharedProximityListener};
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::movement::MovementModel;
use mobivine_device::{Device, GeoPoint};
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

const HOME: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

/// Builds a device that loops through the target region repeatedly.
fn looping_device(seed: u64) -> Device {
    let start = HOME.destination(270.0, 300.0);
    let far = HOME.destination(90.0, 300.0);
    let device = Device::builder()
        .seed(seed)
        .position(start)
        .movement(MovementModel::waypoint_loop(vec![start, far], 20.0))
        .build();
    device.gps().set_noise_enabled(false);
    device
}

/// Registers an alert through `runtime` and records the event pattern
/// over four minutes of virtual time.
fn event_pattern(device: &Device, runtime: &Mobivine) -> Vec<bool> {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
        sink.lock().unwrap().push(e.entering);
    });
    let location = runtime
        .proxy::<dyn LocationProxy>()
        .expect("location proxy");
    location
        .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
        .expect("registration succeeds");
    device.advance_ms(240_000);
    let collected = events.lock().unwrap().clone();
    collected
}

#[test]
fn identical_alert_patterns_on_all_three_platforms() {
    let android_device = looping_device(9);
    let android = AndroidPlatform::new(android_device.clone(), SdkVersion::M5Rc15);
    let android_pattern = event_pattern(
        &android_device,
        &Mobivine::for_android(android.new_context()),
    );

    let s60_device = looping_device(9);
    let s60_pattern = event_pattern(
        &s60_device,
        &Mobivine::for_s60(S60Platform::new(s60_device.clone())),
    );

    let webview_device = looping_device(9);
    let platform = AndroidPlatform::new(webview_device.clone(), SdkVersion::M5Rc15);
    let webview_pattern = event_pattern(
        &webview_device,
        &Mobivine::for_webview(Arc::new(WebView::new(platform.new_context()))),
    );

    // Multiple full enter/exit cycles were observed...
    assert!(
        android_pattern.len() >= 4,
        "android saw {android_pattern:?}"
    );
    // ...and the pattern is the same on every platform.
    assert_eq!(android_pattern, s60_pattern, "android vs s60");
    assert_eq!(android_pattern, webview_pattern, "android vs webview");
    // Alternating, starting with an enter.
    assert!(android_pattern[0]);
    for pair in android_pattern.windows(2) {
        assert_ne!(pair[0], pair[1]);
    }
}

#[test]
fn identical_location_reads_on_all_three_platforms() {
    // Same seed, same virtual instant => the common Location values
    // agree across platform bindings (noise model included).
    let read = |runtime: &Mobivine, device: &Device| {
        device.advance_ms(5_000);
        runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .get_location()
            .unwrap()
    };

    let d1 = looping_device(33);
    let android = AndroidPlatform::new(d1.clone(), SdkVersion::M5Rc15);
    let l1 = read(&Mobivine::for_android(android.new_context()), &d1);

    let d2 = looping_device(33);
    let l2 = read(&Mobivine::for_s60(S60Platform::new(d2.clone())), &d2);

    let d3 = looping_device(33);
    let platform = AndroidPlatform::new(d3.clone(), SdkVersion::M5Rc15);
    let l3 = read(
        &Mobivine::for_webview(Arc::new(WebView::new(platform.new_context()))),
        &d3,
    );

    assert!((l1.latitude - l2.latitude).abs() < 1e-9);
    assert!((l1.latitude - l3.latitude).abs() < 1e-9);
    assert!((l1.longitude - l2.longitude).abs() < 1e-9);
    assert_eq!(l1.timestamp_ms, l2.timestamp_ms);
    assert_eq!(l1.timestamp_ms, l3.timestamp_ms);
}

#[test]
fn timer_semantics_uniform_across_platforms() {
    // A 30-second registration lifetime: the device enters the region
    // at ~10s and exits at ~20s (both inside the window), re-enters at
    // ~40s (outside the window). Expect exactly [enter, exit]
    // everywhere — including S60, whose native API has no expiration.
    let run = |mk: &dyn Fn(&Device) -> Mobivine| -> Vec<bool> {
        let start = HOME.destination(270.0, 300.0);
        let far = HOME.destination(90.0, 300.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::waypoint_loop(vec![start, far], 20.0))
            .build();
        device.gps().set_noise_enabled(false);
        let runtime = mk(&device);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(e.entering);
        });
        runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, 30, listener)
            .unwrap();
        device.advance_ms(120_000);
        let collected = events.lock().unwrap().clone();
        collected
    };

    let android_pattern = run(&|d| {
        let platform = AndroidPlatform::new(d.clone(), SdkVersion::M5Rc15);
        Mobivine::for_android(platform.new_context())
    });
    let s60_pattern = run(&|d| Mobivine::for_s60(S60Platform::new(d.clone())));

    assert_eq!(
        android_pattern,
        vec![true, false],
        "android {android_pattern:?}"
    );
    assert_eq!(s60_pattern, vec![true, false], "s60 {s60_pattern:?}");
}

#[test]
fn uniform_error_model_for_denied_permissions() {
    use mobivine::error::ProxyErrorKind;

    // Android denial.
    let device = Device::builder().build();
    let platform = AndroidPlatform::with_permissions(
        device,
        SdkVersion::M5Rc15,
        mobivine_android::permissions::PermissionSet::new(),
    );
    let runtime = Mobivine::for_android(platform.new_context());
    let err = runtime
        .proxy::<dyn LocationProxy>()
        .unwrap()
        .get_location()
        .unwrap_err();
    assert_eq!(err.kind(), ProxyErrorKind::Security);

    // S60 denial — different native exception, same uniform kind.
    let policy = mobivine_s60::permissions::PermissionPolicy::new();
    policy.set(
        mobivine_s60::permissions::ApiPermission::Location,
        mobivine_s60::permissions::Disposition::Denied,
    );
    let s60 = S60Platform::with_policy(Device::builder().build(), policy);
    let runtime = Mobivine::for_s60(s60);
    let err = runtime
        .proxy::<dyn LocationProxy>()
        .unwrap()
        .get_location()
        .unwrap_err();
    assert_eq!(err.kind(), ProxyErrorKind::Security);
}
