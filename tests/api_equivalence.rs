//! Equivalence of the two construction surfaces after the typed-API
//! migration.
//!
//! The deprecated per-interface accessors (`location()`, `sms()`, ...)
//! are gone: `proxy::<P>()` is the only acquisition surface, and this
//! file pins what remains of the old contract:
//!
//! 1. The typed resolver memoizes — repeated resolution hands back the
//!    *same instance*, so every caller shares one proxy stack per
//!    runtime, exactly as mixed old/new code used to.
//! 2. A runtime assembled through [`MobivineBuilder`] is
//!    indistinguishable from one made by the legacy `for_*`
//!    constructors on every platform: same platform id, same catalog
//!    support set, same proxy behaviour, same errors.
//!
//! CI rejects reintroducing the deprecated-lint escape hatch anywhere
//! in the tree.

mod common;

use std::sync::Arc;

use common::{android_runtime, device, s60_runtime, webview_runtime};
use mobivine::api::{CalendarProxy, CallProxy, ContactsProxy, HttpProxy, LocationProxy, SmsProxy};
use mobivine::error::ProxyErrorKind;
use mobivine::registry::{Mobivine, ProxyKind};
use mobivine::resilience::ResiliencePolicy;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_webview::WebView;

fn legacy_runtimes(device: &Device) -> Vec<(&'static str, Mobivine)> {
    let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let web_platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    vec![
        ("android", Mobivine::for_android(android.new_context())),
        ("s60", Mobivine::for_s60(S60Platform::new(device.clone()))),
        (
            "webview",
            Mobivine::for_webview(Arc::new(WebView::new(web_platform.new_context()))),
        ),
    ]
}

fn builder_runtimes(device: &Device) -> Vec<(&'static str, Mobivine)> {
    vec![
        ("android", android_runtime(device)),
        ("s60", s60_runtime(device)),
        ("webview", webview_runtime(device)),
    ]
}

/// Repeated typed resolution must return the same cached `Arc`, per
/// kind, on every platform that supports the kind — the memoization the
/// removed accessors used to lean on.
#[test]
fn typed_resolver_memoizes_one_instance_per_kind() {
    let device = device();
    for (name, runtime) in legacy_runtimes(&device) {
        if runtime.supports_kind(ProxyKind::Location) {
            let first = runtime.proxy::<dyn LocationProxy>().unwrap();
            let second = runtime.proxy::<dyn LocationProxy>().unwrap();
            assert!(
                Arc::ptr_eq(&first, &second),
                "{name}: Location instance differs"
            );
        }
        if runtime.supports_kind(ProxyKind::Sms) {
            let first = runtime.proxy::<dyn SmsProxy>().unwrap();
            let second = runtime.proxy::<dyn SmsProxy>().unwrap();
            assert!(Arc::ptr_eq(&first, &second), "{name}: SMS instance differs");
        }
        if runtime.supports_kind(ProxyKind::Call) {
            let first = runtime.proxy::<dyn CallProxy>().unwrap();
            let second = runtime.proxy::<dyn CallProxy>().unwrap();
            assert!(
                Arc::ptr_eq(&first, &second),
                "{name}: Call instance differs"
            );
        }
        if runtime.supports_kind(ProxyKind::Http) {
            let first = runtime.proxy::<dyn HttpProxy>().unwrap();
            let second = runtime.proxy::<dyn HttpProxy>().unwrap();
            assert!(
                Arc::ptr_eq(&first, &second),
                "{name}: HTTP instance differs"
            );
        }
        if runtime.supports_kind(ProxyKind::Contacts) {
            let first = runtime.proxy::<dyn ContactsProxy>().unwrap();
            let second = runtime.proxy::<dyn ContactsProxy>().unwrap();
            assert!(
                Arc::ptr_eq(&first, &second),
                "{name}: Contacts instance differs"
            );
        }
        if runtime.supports_kind(ProxyKind::Calendar) {
            let first = runtime.proxy::<dyn CalendarProxy>().unwrap();
            let second = runtime.proxy::<dyn CalendarProxy>().unwrap();
            assert!(
                Arc::ptr_eq(&first, &second),
                "{name}: Calendar instance differs"
            );
        }
    }
}

/// Unsupported kinds fail with the catalog's error through the typed
/// resolver: Call is absent on S60, Contacts/Calendar on WebView.
#[test]
fn unsupported_kinds_error_through_the_typed_resolver() {
    let device = device();
    let s60 = s60_runtime(&device);
    assert_eq!(
        s60.proxy::<dyn CallProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
    let webview = webview_runtime(&device);
    assert_eq!(
        webview.proxy::<dyn ContactsProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
    assert_eq!(
        webview.proxy::<dyn CalendarProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
    // A failed resolution is not memoized as success: asking again
    // yields the same error, not a stale half-built proxy.
    assert_eq!(
        webview.proxy::<dyn ContactsProxy>().err().map(|e| e.kind()),
        Some(ProxyErrorKind::UnsupportedOnPlatform)
    );
}

/// Builder-made runtimes expose the same platform identity and catalog
/// support set as the legacy constructors, on all three platforms.
#[test]
fn builder_matches_legacy_constructor_identity_and_support() {
    let device = device();
    let legacy = legacy_runtimes(&device);
    let built = builder_runtimes(&device);
    for ((legacy_name, legacy), (built_name, built)) in legacy.iter().zip(&built) {
        assert_eq!(legacy_name, built_name);
        assert_eq!(
            legacy.platform_id(),
            built.platform_id(),
            "{legacy_name}: platform id differs"
        );
        for kind in ProxyKind::ALL {
            assert_eq!(
                legacy.supports_kind(kind),
                built.supports_kind(kind),
                "{legacy_name}: support for {kind} differs"
            );
        }
    }
}

/// Builder-made runtimes behave the same at the proxy level: a location
/// fix resolved through each pair of runtimes reads the same device
/// state, and SMS dispatch reaches the same SMSC.
#[test]
fn builder_matches_legacy_constructor_behaviour() {
    let device = device();
    for ((name, legacy), (_, built)) in legacy_runtimes(&device)
        .into_iter()
        .zip(builder_runtimes(&device))
    {
        let legacy_fix = legacy
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .get_location()
            .unwrap();
        let built_fix = built
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .get_location()
            .unwrap();
        assert_eq!(
            (legacy_fix.latitude, legacy_fix.longitude),
            (built_fix.latitude, built_fix.longitude),
            "{name}: location fix differs"
        );
        built
            .proxy::<dyn SmsProxy>()
            .unwrap()
            .send_text_message("+91-sup", "builder parity", None)
            .unwrap();
    }
    device.advance_ms(10_000);
    assert_eq!(device.smsc().inbox("+91-sup").len(), 3);
}

/// `with_resilience` composes the same way on both construction paths:
/// the happy-path call succeeds and the retry layer reports metrics on
/// both, with identical attempt accounting.
#[test]
fn builder_resilience_matches_legacy_with_resilience() {
    let device = device();
    let legacy = Mobivine::for_android(
        AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context(),
    )
    .with_resilience(ResiliencePolicy::default());
    let built = Mobivine::builder()
        .android(AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context())
        .with_resilience(ResiliencePolicy::default())
        .build()
        .unwrap();

    for runtime in [&legacy, &built] {
        runtime
            .proxy::<dyn LocationProxy>()
            .unwrap()
            .get_location()
            .unwrap();
    }
    let legacy_metrics = legacy.resilience_metrics().expect("legacy metrics");
    let built_metrics = built.resilience_metrics().expect("built metrics");
    assert_eq!(
        legacy_metrics.snapshot().calls,
        built_metrics.snapshot().calls
    );
}

/// `with_telemetry` composes the same way on both construction paths.
#[test]
fn builder_telemetry_matches_legacy_with_telemetry() {
    let device = device();
    let legacy = Mobivine::for_android(
        AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context(),
    )
    .with_telemetry();
    let built = Mobivine::builder()
        .android(AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context())
        .with_telemetry()
        .build()
        .unwrap();
    assert_eq!(
        legacy.telemetry_metrics().is_some(),
        built.telemetry_metrics().is_some()
    );
    assert_eq!(legacy.tracer().is_some(), built.tracer().is_some());
}

/// `with_cache` composes the same way on both construction paths: both
/// runtimes report cache metrics and serve the second read from cache.
#[test]
fn builder_cache_matches_legacy_with_cache() {
    let device = device();
    let legacy = Mobivine::for_android(
        AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context(),
    )
    .with_cache(mobivine::cache::CachePolicy::default());
    let built = Mobivine::builder()
        .android(AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15).new_context())
        .with_cache(mobivine::cache::CachePolicy::default())
        .build()
        .unwrap();

    for runtime in [&legacy, &built] {
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        location.get_location().unwrap();
        location.get_location().unwrap();
        let metrics = runtime.cache_metrics().expect("cache metrics");
        let snapshot = metrics.snapshot();
        assert_eq!((snapshot.miss, snapshot.hit), (1, 1));
    }
}
