//! Thread-safety: the proxies are `Send + Sync` and usable from
//! multiple OS threads against one device world, as the guide's
//! C-SEND-SYNC item demands.

use std::sync::Arc;
use std::thread;

use mobivine::api::{HttpProxy, LocationProxy, SmsProxy};
use mobivine::registry::Mobivine;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::net::{HttpResponse, Method};
use mobivine_device::{Device, GeoPoint};

#[test]
fn proxy_handles_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn LocationProxy>();
    assert_send_sync::<dyn SmsProxy>();
    assert_send_sync::<dyn HttpProxy>();
    assert_send_sync::<Device>();
    assert_send_sync::<Mobivine>();
}

#[test]
fn parallel_proxy_calls_from_many_threads() {
    let device = Device::builder()
        .msisdn("+agent")
        .position(GeoPoint::new(28.5355, 77.3910))
        .build();
    device.smsc().register_address("+hub");
    device
        .network()
        .register_route("wfm.example", Method::Get, "/ping", |_| {
            HttpResponse::ok("pong")
        });
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Arc::new(Mobivine::for_android(platform.new_context()));

    let location = runtime.proxy::<dyn LocationProxy>().unwrap();
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();
    let http = runtime.proxy::<dyn HttpProxy>().unwrap();

    let mut handles = Vec::new();
    for worker in 0..8u32 {
        let location = Arc::clone(&location);
        let sms = Arc::clone(&sms);
        let http = Arc::clone(&http);
        handles.push(thread::spawn(move || {
            for i in 0..25 {
                location.get_location().expect("location from thread");
                sms.send_text_message("+hub", &format!("w{worker}-{i}"), None)
                    .expect("sms from thread");
                let resp = http
                    .request("GET", "http://wfm.example/ping", &[])
                    .expect("http from thread");
                assert_eq!(resp.body_text(), "pong");
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker thread panicked");
    }
    device.advance_ms(10_000);
    assert_eq!(device.smsc().inbox("+hub").len(), 8 * 25);
}

#[test]
fn clock_advance_races_with_proxy_calls() {
    // One thread pumps virtual time while others invoke proxies; no
    // deadlocks, no lost events.
    let device = Device::builder().msisdn("+agent").build();
    device.smsc().register_address("+hub");
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let sms = runtime.proxy::<dyn SmsProxy>().unwrap();

    let pump_device = device.clone();
    let pump = thread::spawn(move || {
        for _ in 0..100 {
            pump_device.advance_ms(100);
        }
    });
    let sender = thread::spawn(move || {
        for i in 0..50 {
            sms.send_text_message("+hub", &format!("race-{i}"), None)
                .expect("send during pumping");
        }
    });
    pump.join().unwrap();
    sender.join().unwrap();
    device.advance_ms(5_000);
    assert_eq!(device.smsc().inbox("+hub").len(), 50);
}
