//! The complete M-Plugin workflow (paper §3.2's four features), end to
//! end: visibility (drawer) → presentation/configuration (dialog) →
//! code generation (source preview) → embedding (platform-specific
//! packaging).

use mobivine_mplugin::dialog::ConfigurationDialog;
use mobivine_mplugin::drawer::ProxyDrawer;
use mobivine_mplugin::manifest::PluginManifest;
use mobivine_mplugin::packaging::{
    AndroidExtension, AndroidProject, ProxySelection, S60Extension, WebViewExtension,
    WebViewProject,
};
use mobivine_proxydl::catalog::standard_catalog;
use mobivine_proxydl::PlatformId;
use mobivine_s60::packaging::{JadDescriptor, Jar};

#[test]
fn full_s60_workflow_drawer_to_deployable_suite() {
    // 1. Visibility: the S60 drawer lists the platform's proxies.
    let catalog = standard_catalog();
    let drawer = ProxyDrawer::from_catalog(&catalog, PlatformId::NokiaS60);
    let item = drawer
        .find_item("Location", "addProximityAlert")
        .expect("drag target exists");
    assert_eq!(item.label, "Location :: addProximityAlert");

    // 2/3. Presentation + configuration: populate the dialog.
    let descriptor = catalog.iter().find(|d| d.name == item.proxy).unwrap();
    let mut dialog =
        ConfigurationDialog::for_api(descriptor, PlatformId::NokiaS60, &item.api).unwrap();
    for (name, value) in [
        ("latitude", "28.5355"),
        ("longitude", "77.3910"),
        ("altitude", "0"),
        ("radius", "100"),
        ("timer", "-1"),
        ("proximityListener", "this"),
    ] {
        dialog.set_variable(name, value).unwrap();
    }
    dialog.set_property("powerConsumption", "Medium").unwrap();

    // 3. Code generation with preview.
    let source = dialog.source_preview().unwrap();
    assert!(source.contains("loc.addProximityAlert(28.5355, 77.3910, 0, 100, -1, this);"));
    assert!(source.contains("setProperty(\"powerConsumption\", \"Medium\")"));
    assert!(source.contains("javax.microedition.location.LocationException"));

    // 4. Embedding: merge the chosen proxies into the single suite jar.
    let mut app_jar = Jar::new("wfm.jar");
    app_jar
        .add_entry("com/acme/WorkForceManagement.class", b"app".to_vec())
        .unwrap();
    let jad = JadDescriptor::for_jar(&app_jar, "WorkForce", "ACME", "1.0.0");
    let suite = S60Extension::package(
        app_jar,
        jad,
        &ProxySelection::new(&["Location", "SMS", "Http"]),
    )
    .unwrap();
    suite.validate().unwrap();
    assert!(suite
        .jar
        .contains("com/ibm/S60/location/LocationProxy.class"));
    assert_eq!(suite.jad.jar_size, suite.jar.byte_size());
}

#[test]
fn full_android_workflow() {
    let catalog = standard_catalog();
    let drawer = ProxyDrawer::from_catalog(&catalog, PlatformId::Android);
    assert!(drawer.find_item("Call", "makeACall").is_some());

    let descriptor = catalog.iter().find(|d| d.name == "Call").unwrap();
    let mut dialog =
        ConfigurationDialog::for_api(descriptor, PlatformId::Android, "makeACall").unwrap();
    dialog.set_variable("number", "+91-98-SUPERVISOR").unwrap();
    dialog.set_property("context", "this").unwrap();
    dialog.set_property("retries", "3").unwrap();
    let source = dialog.source_preview().unwrap();
    assert!(source.contains("call.makeACall(\"+91-98-SUPERVISOR\");"));
    assert!(source.contains("setProperty(\"retries\", 3)"));

    let mut project = AndroidProject {
        name: "wfm".into(),
        ..AndroidProject::default()
    };
    AndroidExtension::integrate(&mut project, &ProxySelection::new(&["Call", "Location"]));
    assert!(project.libs.contains("libs/call-proxy.jar"));
    assert_eq!(project.classpath.len(), 2);
}

#[test]
fn full_webview_workflow() {
    let catalog = standard_catalog();
    let drawer = ProxyDrawer::from_catalog(&catalog, PlatformId::AndroidWebView);
    assert!(drawer.find_item("SMS", "sendTextMessage").is_some());

    let descriptor = catalog.iter().find(|d| d.name == "SMS").unwrap();
    let mut dialog =
        ConfigurationDialog::for_api(descriptor, PlatformId::AndroidWebView, "sendTextMessage")
            .unwrap();
    dialog
        .set_variable("destination", "+91-98-SUPERVISOR")
        .unwrap();
    dialog.set_variable("text", "on my way").unwrap();
    dialog
        .set_variable("deliveryListener", "onDelivery")
        .unwrap();
    let source = dialog.source_preview().unwrap();
    assert!(source.contains("var sms = new SmsProxyImpl();"));
    assert!(
        source.contains("sms.sendTextMessage(\"+91-98-SUPERVISOR\", \"on my way\", onDelivery);")
    );

    let mut project = WebViewProject {
        name: "wfm-web".into(),
        ..WebViewProject::default()
    };
    WebViewExtension::integrate(&mut project, &ProxySelection::new(&["SMS"]));
    assert!(project.scripts.contains("js/proxies/SMSProxyImpl.js"));
    assert!(project.injections[0].contains("addJavascriptInterface"));
}

#[test]
fn semantic_allowed_values_constrain_dialog_variables() {
    // The Http proxy's semantic plane constrains the `method` parameter;
    // the dialog enforces it for every platform.
    let catalog = standard_catalog();
    let descriptor = catalog.iter().find(|d| d.name == "Http").unwrap();
    let mut dialog =
        ConfigurationDialog::for_api(descriptor, PlatformId::NokiaS60, "request").unwrap();
    dialog.set_variable("method", "GET").unwrap();
    assert!(dialog.set_variable("method", "BREW").is_err());
    dialog
        .set_variable("url", "http://wfm.example/tasks")
        .unwrap();
    dialog.set_variable("body", "").unwrap();
    let source = dialog.source_preview().unwrap();
    assert!(source.contains("http.request(\"GET\", \"http://wfm.example/tasks\""));
}

#[test]
fn android_proximity_snippet_matches_figure8_shape() {
    // The generated Android snippet has the Fig. 8(a) shape: proxy
    // construction, setProperty for context/provider, the uniform call,
    // Android-specific exception comment, and the common callback stub.
    let catalog = standard_catalog();
    let descriptor = catalog.iter().find(|d| d.name == "Location").unwrap();
    let mut dialog =
        ConfigurationDialog::for_api(descriptor, PlatformId::Android, "addProximityAlert").unwrap();
    for (name, value) in [
        ("latitude", "28.5355"),
        ("longitude", "77.3910"),
        ("altitude", "0"),
        ("radius", "100"),
        ("timer", "-1"),
        ("proximityListener", "this"),
    ] {
        dialog.set_variable(name, value).unwrap();
    }
    dialog.set_property("context", "this").unwrap();
    dialog.set_property("provider", "gps").unwrap();
    let source = dialog.source_preview().unwrap();
    let expected_lines = [
        "LocationProxyImpl loc = new LocationProxyImpl();",
        "loc.setProperty(\"context\", this);",
        "loc.setProperty(\"provider\", \"gps\");",
        "loc.addProximityAlert(28.5355, 77.3910, 0, 100, -1, this);",
        "// Handle android specific exceptions:",
        "//   java.lang.SecurityException",
        "public void proximityEvent(double refLatitude, double refLongitude, double refAltitude,",
    ];
    for line in expected_lines {
        assert!(source.contains(line), "missing {line:?} in:\n{source}");
    }
}

#[test]
fn manifests_derive_per_platform_from_one_catalog() {
    let catalog = standard_catalog();
    for platform in [
        PlatformId::Android,
        PlatformId::NokiaS60,
        PlatformId::AndroidWebView,
    ] {
        let drawer = ProxyDrawer::from_catalog(&catalog, platform.clone());
        let manifest =
            PluginManifest::from_drawer(&format!("com.ibm.mobivine.{}", platform.id()), &drawer);
        let text = manifest.render();
        let back = PluginManifest::parse(&text).unwrap();
        assert_eq!(back, manifest, "round trip for {}", platform.id());
    }
}
