//! End-to-end overload protection across the M-Proxy call path.
//!
//! The deadline context must travel the whole stack — app → overload
//! layer → resilience → binding plane → platform module — on every
//! platform, including across the WebView JS bridge where it is
//! marshalled as a remaining-budget field next to `traceparent`. An
//! exhausted budget must fail fast with `DeadlineExceeded` **before**
//! the binding plane is touched; the span tree is the witness.

mod common;

use std::sync::Arc;

use common::device;
use mobivine::api::LocationProxy;
use mobivine::error::ProxyErrorKind;
use mobivine::overload::{with_deadline, Deadline, OverloadPolicy};
use mobivine::registry::Mobivine;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_telemetry::span::{Plane, SpanRecord};
use mobivine_webview::WebView;

fn android_runtime(device: &Device) -> Mobivine {
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    Mobivine::builder()
        .android(platform.new_context())
        .build()
        .expect("android runtime builds")
}

fn s60_runtime(device: &Device) -> Mobivine {
    Mobivine::builder()
        .s60(S60Platform::new(device.clone()))
        .build()
        .expect("s60 runtime builds")
}

fn webview_runtime(device: &Device) -> Mobivine {
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    Mobivine::builder()
        .webview(Arc::new(WebView::new(platform.new_context())))
        .build()
        .expect("webview runtime builds")
}

/// One overload-protected, traced runtime per platform binding, each
/// over its own fresh fixture device.
fn overloaded_runtimes() -> Vec<(&'static str, Device, Mobivine)> {
    let make = [
        ("android", android_runtime as fn(&Device) -> Mobivine),
        ("s60", s60_runtime as fn(&Device) -> Mobivine),
        ("webview", webview_runtime as fn(&Device) -> Mobivine),
    ];
    make.into_iter()
        .map(|(name, make)| {
            let device = device();
            let runtime = make(&device)
                .with_telemetry()
                .with_overload(OverloadPolicy::default());
            (name, device, runtime)
        })
        .collect()
}

/// Calls `getLocation` under a root app span with `deadline` ambient,
/// returning the call result and the finished spans of the trace.
fn traced_call_with_deadline(
    runtime: &Mobivine,
    device: &Device,
    deadline: Deadline,
) -> (
    Result<mobivine::Location, mobivine::error::ProxyError>,
    Vec<SpanRecord>,
) {
    let proxy = runtime
        .proxy::<dyn LocationProxy>()
        .expect("location proxy resolves");
    let tracer = runtime.tracer().expect("telemetry attached").clone();
    let root = tracer.root("app:main", Plane::App, device.now_ms());
    let result = with_deadline(deadline, || proxy.get_location());
    root.end(device.now_ms());
    (result, tracer.take_finished())
}

#[test]
fn expired_deadline_fails_fast_before_the_binding_plane_on_every_platform() {
    for (name, device, runtime) in overloaded_runtimes() {
        let expired = Deadline::after(device.now_ms(), 0);
        let (result, spans) = traced_call_with_deadline(&runtime, &device, expired);

        let err = result.expect_err("exhausted budget must fail");
        assert_eq!(
            err.kind(),
            ProxyErrorKind::DeadlineExceeded,
            "{name}: {err}"
        );

        // The overload layer rejected the call before admission, so the
        // binding plane (and everything below it) was never touched.
        for span in &spans {
            assert!(
                !matches!(span.plane, Plane::Binding | Plane::Bridge | Plane::Platform),
                "{name}: fail-fast must not descend to {:?} ({})",
                span.plane,
                span.name
            );
        }
        let metrics = runtime.overload_metrics().expect("overload attached");
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.deadline_fail_fast, 1, "{name}: {snapshot}");
        assert_eq!(snapshot.admitted, 0, "{name}: nothing was admitted");
    }
}

#[test]
fn ample_deadline_budget_crosses_every_platform_and_the_call_succeeds() {
    for (name, device, runtime) in overloaded_runtimes() {
        let roomy = Deadline::after(device.now_ms(), 60_000);
        let (result, spans) = traced_call_with_deadline(&runtime, &device, roomy);
        result.unwrap_or_else(|e| panic!("{name}: ample budget must succeed: {e}"));
        assert!(
            spans.iter().any(|s| s.plane == Plane::Platform),
            "{name}: the admitted call reached the platform module"
        );
        let snapshot = runtime.overload_metrics().unwrap().snapshot();
        assert_eq!(snapshot.admitted, 1, "{name}: {snapshot}");
        assert_eq!(snapshot.deadline_fail_fast, 0, "{name}: {snapshot}");
    }
}

#[test]
fn the_webview_bridge_itself_enforces_the_marshalled_budget() {
    // No overload layer at all: the deadline budget is marshalled over
    // the JS bridge next to `traceparent`, and the wrapper on the far
    // side rejects an exhausted budget before the native proxy runs.
    let device = device();
    let runtime = webview_runtime(&device).with_telemetry();
    let expired = Deadline::after(device.now_ms(), 0);
    let (result, spans) = traced_call_with_deadline(&runtime, &device, expired);

    let err = result.expect_err("the bridge must reject a zero budget");
    assert_eq!(err.kind(), ProxyErrorKind::DeadlineExceeded, "{err}");
    assert!(
        !spans.iter().any(|s| s.plane == Plane::Platform),
        "the native platform module must not run on an exhausted budget"
    );

    // A positive budget marshals across and the same call succeeds.
    let roomy = Deadline::after(device.now_ms(), 60_000);
    let (result, spans) = traced_call_with_deadline(&runtime, &device, roomy);
    result.expect("ample budget crosses the bridge");
    assert!(
        spans.iter().any(|s| s.plane == Plane::Bridge),
        "the admitted call crossed the JS bridge"
    );
}

#[test]
fn sustained_pressure_sheds_with_a_typed_retry_hint() {
    // An aggressive 1 ms sojourn target against a real HTTP round trip
    // (which advances the virtual clock): the AIMD gate closes and a
    // later call is shed with `Overloaded` carrying the retry hint.
    let device = device();
    device.network().register_route(
        "api.example",
        mobivine_device::net::Method::Get,
        "/ping",
        |_| mobivine_device::net::HttpResponse::status_only(200),
    );
    let runtime = android_runtime(&device)
        .with_telemetry()
        .with_overload(OverloadPolicy::default().target_ms(1).shed_seed(7));
    let proxy = runtime
        .proxy::<dyn mobivine::api::HttpProxy>()
        .expect("http proxy resolves");

    let mut shed_error = None;
    for _ in 0..200 {
        match proxy.request("GET", "http://api.example/ping", b"") {
            Ok(_) => {}
            Err(e) => {
                shed_error = Some(e);
                break;
            }
        }
    }
    let err = shed_error.expect("sustained over-target latency must shed");
    assert_eq!(err.kind(), ProxyErrorKind::Overloaded, "{err}");
    assert!(
        err.retry_after_ms().is_some_and(|ms| ms > 0),
        "shed calls carry a retry hint: {err}"
    );
    let snapshot = runtime.overload_metrics().unwrap().snapshot();
    assert!(snapshot.shed >= 1, "{snapshot}");
    assert!(snapshot.admitted >= 1, "{snapshot}");
}
