#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench summary end to end: emit the machine-readable
# figure10 document at zero scale and schema-check it.
summary="$(mktemp)"
fleet_summary="$(mktemp)"
trap 'rm -f "$summary" "$fleet_summary"' EXIT
cargo run -q --release -p mobivine-bench --bin figure10 -- \
    --scale zero --runs 3 --json "$summary"
cargo run -q --release -p mobivine-bench --bin figure10 -- --check "$summary"

# Fleet smoke: drive ~500 devices through the load engine, emit the
# mobivine.fleet.v1 summary, and schema-check it.
cargo run -q --release -p mobivine-bench --bin fleet -- \
    --devices 500 --shards 1,4 --workers 2 --rounds 2 --json "$fleet_summary"
cargo run -q --release -p mobivine-bench --bin fleet -- --check "$fleet_summary"

# The deprecated per-interface accessors must not regrow call sites:
# `#[allow(deprecated)]` is sanctioned only in the equivalence suite and
# the registry's own unit tests (clippy -D warnings catches un-allowed
# uses above).
allowed_deprecated=$(grep -rln "allow(deprecated)" --include='*.rs' . \
    | grep -v -e '^\./tests/api_equivalence\.rs$' \
              -e '^\./crates/core/src/registry\.rs$' \
              -e '^\./target/' || true)
if [ -n "$allowed_deprecated" ]; then
    echo "error: allow(deprecated) outside the sanctioned files:" >&2
    echo "$allowed_deprecated" >&2
    exit 1
fi
