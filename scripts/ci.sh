#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench summary end to end: emit the machine-readable
# figure10 document at zero scale and schema-check it.
summary="$(mktemp)"
fleet_summary="$(mktemp)"
trap 'rm -f "$summary" "$fleet_summary"' EXIT
cargo run -q --release -p mobivine-bench --bin figure10 -- \
    --scale zero --runs 3 --json "$summary"
cargo run -q --release -p mobivine-bench --bin figure10 -- --check "$summary"

# Fleet smoke: drive ~500 devices through the load engine, emit the
# mobivine.fleet.v5 summary, and schema-check it (the check also
# enforces the brownout overload gate embedded in the summary,
# accountability clause included — the unprotected arm's deadline-blown
# calls must all have promoted traces — the cache gate: equal
# checksums across the cached/uncached arms plus a ≥5x cut in
# binding-plane reads — and the bridge gate: equal checksums across the
# batched/unbatched arms plus strictly fewer bridge crossings batched).
# The figure10 run above already smoke-runs the telemetry_hotpath and
# bridge-marshalling ablations (its summary embeds and --check enforces
# the per-call-lookup vs cached-handles rows and the ≥3x batched
# wire-buf speedup over per-call marshalling).
cargo run -q --release -p mobivine-bench --bin fleet -- \
    --devices 500 --shards 1,4 --workers 2 --rounds 2 --json "$fleet_summary"
cargo run -q --release -p mobivine-bench --bin fleet -- --check "$fleet_summary"

# Cache smoke: the read-heavy cached arm of the summary just emitted
# must actually have hit (hits > 0). Belt to the validator's suspenders:
# the schema check above already enforces the full gate, this guard
# keeps the raw evidence greppable in CI logs.
if ! grep -q '"hits":[1-9]' "$fleet_summary"; then
    echo "error: the cached fleet arm never hit:" >&2
    grep -o '"hits":[0-9]*' "$fleet_summary" >&2 || true
    exit 1
fi

# SLO smoke: the brownout arms of the summary just emitted ran with the
# flight recorder on, so a traced brownout must have promoted at least
# one trace (promoted_traces > 0 in the JSON). Belt to the validator's
# suspenders: the schema check above only proves the *unprotected* arm
# explains its breaches.
if ! grep -q '"promoted_traces":[1-9]' "$fleet_summary"; then
    echo "error: no promoted traces in the fleet brownout arms:" >&2
    grep -o '"promoted_traces":[0-9]*' "$fleet_summary" >&2 || true
    exit 1
fi

# Chaos/brownout smoke: ramp one shard 10x under batch-arrival
# deadlines, overload layer on vs off. Exits non-zero unless the
# admission arm sheds while holding the ramped shard's accepted-call
# p99 within target AND the unprotected arm both blows past it and has
# a promoted trace for every deadline-blown call.
cargo run -q --release -p mobivine-bench --bin fleet -- --brownout

# Crash-storm smoke: run the durable fleet twice — once under a
# deterministic crash storm (torn writes, intent gaps, post-effect
# wipes at scheduled idempotency keys), once crash-free — and exit
# non-zero unless the stormed arm recovers every shard to the
# crash-free checksum with zero duplicated effects. The binary gates
# this itself; the greps below keep the raw exactly-once evidence
# (recoveries happened, duplicates stayed zero) in the CI log.
crash_digest="$(mktemp)"
cargo run -q --release -p mobivine-bench --bin fleet -- --crash \
    | tee "$crash_digest"
if ! grep -q '"recoveries":[1-9]' "$crash_digest"; then
    echo "error: the crash-storm arm never recovered a shard" >&2
    rm -f "$crash_digest"
    exit 1
fi
if ! grep -q '"duplicates":0' "$crash_digest"; then
    echo "error: the crash storm duplicated an effect:" >&2
    grep -o '"duplicates":[0-9]*' "$crash_digest" >&2 || true
    rm -f "$crash_digest"
    exit 1
fi
rm -f "$crash_digest"

# SLO route smoke: a struggling traced runtime must serve a parsing
# GET /slo report (validated against mobivine.slo.v1) and a /health
# document — tests/flight_recorder.rs and the apps::server suite cover
# this in `cargo test` above; re-assert here that the suites exist so a
# deleted test cannot silently drop the gate.
for gate in tests/flight_recorder.rs crates/apps/src/server.rs; do
    if [ ! -f "$gate" ]; then
        echo "error: SLO/incident gate file missing: $gate" >&2
        exit 1
    fi
done
grep -q "slo_route_serves_a_valid_burn_rate_report" crates/apps/src/server.rs || {
    echo "error: the GET /slo round-trip test is gone" >&2
    exit 1
}

# Regression gate against the committed baselines: schema-check both,
# then re-run every BENCH_fleet.json scaling row (checksums must
# reproduce exactly; deterministic throughput may not drop more than
# 25%) and the live acquisition + telemetry-recording 5x speedup bars.
cargo run -q --release -p mobivine-bench --bin figure10 -- --check BENCH_figure10.json
cargo run -q --release -p mobivine-bench --bin fleet -- --check BENCH_fleet.json
cargo run -q --release -p mobivine-bench --bin fleet -- --compare BENCH_fleet.json

# The deprecated per-interface accessors are gone; nothing in the tree
# may reintroduce `#[allow(deprecated)]` (clippy -D warnings catches
# un-allowed uses above).
allowed_deprecated=$(grep -rln "allow(deprecated)" --include='*.rs' . \
    | grep -v -e '^\./target/' || true)
if [ -n "$allowed_deprecated" ]; then
    echo "error: allow(deprecated) has no sanctioned uses left:" >&2
    echo "$allowed_deprecated" >&2
    exit 1
fi

# clippy runs with -D warnings above, so every `#[allow(clippy::…)]` is
# a pinned, reviewed exception. The allowlist below is exhaustive; a new
# allow anywhere else must either fix the lint or extend this list in
# the same change.
clippy_allows=$(grep -rln "allow(clippy" --include='*.rs' . \
    | grep -v -e '^\./crates/bench/src/fleet_bench\.rs$' \
              -e '^\./target/' \
              -e '^\./stubs/' || true)
if [ -n "$clippy_allows" ]; then
    echo "error: allow(clippy::…) outside the pinned allowlist:" >&2
    echo "$clippy_allows" >&2
    exit 1
fi

# The traced hot path must stay allocation-free: label construction in
# the decorator module is sanctioned only inside CallInstruments::resolve
# (which runs once, at wiring time). Any other Labels::call/Labels::new
# in the non-test portion of telemetry.rs is a per-call allocation
# sneaking back in. (tests/zero_alloc_telemetry.rs proves the property
# dynamically; this guard catches it at review time.)
hot_labels=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }
    /Labels::(call|new)/ && !/Labels::call\(proxy, method, platform\)/ {
        print "crates/core/src/telemetry.rs:" FNR ": " $0
    }
' crates/core/src/telemetry.rs)
if [ -n "$hot_labels" ]; then
    echo "error: label construction on the traced hot path (use the" >&2
    echo "cached CallInstruments handles resolved at wiring time):" >&2
    echo "$hot_labels" >&2
    exit 1
fi

# The write-ahead invariant, pinned at review time: no mutating path
# may apply an effect before its intent is journaled. In the server's
# durable_mutate, `apply_record` must not appear above the
# `journal.append` call; in the client decorators (everything below the
# Decorators banner in core/journal.rs), every `self.inner.…` effect
# call must be preceded — in the same function — by a journal-engine
# touch (`self.engine.intent/check/memoized_message`).
# (tests/journal_recovery.rs and the crash smoke above prove the
# property dynamically; this guard catches a reordered edit statically.)
wal_order=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /fn durable_mutate/ { in_fn = 1; appended = 0 }
    in_fn && /journal\.append/ { appended = 1 }
    in_fn && /apply_record\(/ && !appended {
        print "crates/apps/src/server.rs:" FNR ": effect before journal append: " $0
    }
    in_fn && /^}/ { in_fn = 0 }
' crates/apps/src/server.rs)
wal_order="$wal_order$(awk '
    /^\/\/ -+$/ { banner = 1; next }
    banner && /^\/\/ Decorators$/ { in_decorators = 1 }
    { banner = 0 }
    !in_decorators { next }
    /#\[cfg\(test\)\]/ { exit }
    /fn / { covered = 0 }
    /self\.engine/ { covered = 1 }
    /self\.inner\./ && !covered {
        print "crates/core/src/journal.rs:" FNR ": effect before intent: " $0
    }
' crates/core/src/journal.rs)"
if [ -n "$wal_order" ]; then
    echo "error: write-ahead ordering violated (journal the intent" >&2
    echo "before the effect it covers):" >&2
    echo "$wal_order" >&2
    exit 1
fi

# The zero-alloc telemetry test must still gate at exactly 0 heap
# allocations on the warmed traced path — with the flight recorder on,
# and since the wire arenas landed the WebView bridge crossing is held
# to the same bar as the native platforms. `cargo test` above runs it;
# this guard pins the assertions themselves so a relaxed bound (e.g.
# `<= 2`) cannot slip through review.
if [ "$(grep -Ec '^\s*(android|s60|webview)_allocs, 0,' tests/zero_alloc_telemetry.rs)" -ne 3 ]; then
    echo "error: tests/zero_alloc_telemetry.rs no longer pins the warmed" >&2
    echo "traced android+s60+webview paths at exactly 0 allocations" >&2
    exit 1
fi
