#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench summary end to end: emit the machine-readable
# figure10 document at zero scale and schema-check it.
summary="$(mktemp)"
trap 'rm -f "$summary"' EXIT
cargo run -q --release -p mobivine-bench --bin figure10 -- \
    --scale zero --runs 3 --json "$summary"
cargo run -q --release -p mobivine-bench --bin figure10 -- --check "$summary"
