#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
