#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench summary end to end: emit the machine-readable
# figure10 document at zero scale and schema-check it.
summary="$(mktemp)"
fleet_summary="$(mktemp)"
trap 'rm -f "$summary" "$fleet_summary"' EXIT
cargo run -q --release -p mobivine-bench --bin figure10 -- \
    --scale zero --runs 3 --json "$summary"
cargo run -q --release -p mobivine-bench --bin figure10 -- --check "$summary"

# Fleet smoke: drive ~500 devices through the load engine, emit the
# mobivine.fleet.v1 summary, and schema-check it. The figure10 run above
# already smoke-runs the telemetry_hotpath ablation (its summary embeds
# and --check validates the per-call-lookup vs cached-handles rows).
cargo run -q --release -p mobivine-bench --bin fleet -- \
    --devices 500 --shards 1,4 --workers 2 --rounds 2 --json "$fleet_summary"
cargo run -q --release -p mobivine-bench --bin fleet -- --check "$fleet_summary"

# Regression gate against the committed baselines: schema-check both,
# then re-run every BENCH_fleet.json scaling row (checksums must
# reproduce exactly; deterministic throughput may not drop more than
# 25%) and the live acquisition + telemetry-recording 5x speedup bars.
cargo run -q --release -p mobivine-bench --bin figure10 -- --check BENCH_figure10.json
cargo run -q --release -p mobivine-bench --bin fleet -- --check BENCH_fleet.json
cargo run -q --release -p mobivine-bench --bin fleet -- --compare BENCH_fleet.json

# The deprecated per-interface accessors must not regrow call sites:
# `#[allow(deprecated)]` is sanctioned only in the equivalence suite and
# the registry's own unit tests (clippy -D warnings catches un-allowed
# uses above).
allowed_deprecated=$(grep -rln "allow(deprecated)" --include='*.rs' . \
    | grep -v -e '^\./tests/api_equivalence\.rs$' \
              -e '^\./crates/core/src/registry\.rs$' \
              -e '^\./target/' || true)
if [ -n "$allowed_deprecated" ]; then
    echo "error: allow(deprecated) outside the sanctioned files:" >&2
    echo "$allowed_deprecated" >&2
    exit 1
fi

# The traced hot path must stay allocation-free: label construction in
# the decorator module is sanctioned only inside CallInstruments::resolve
# (which runs once, at wiring time). Any other Labels::call/Labels::new
# in the non-test portion of telemetry.rs is a per-call allocation
# sneaking back in. (tests/zero_alloc_telemetry.rs proves the property
# dynamically; this guard catches it at review time.)
hot_labels=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }
    /Labels::(call|new)/ && !/Labels::call\(proxy, method, platform\)/ {
        print "crates/core/src/telemetry.rs:" FNR ": " $0
    }
' crates/core/src/telemetry.rs)
if [ -n "$hot_labels" ]; then
    echo "error: label construction on the traced hot path (use the" >&2
    echo "cached CallInstruments handles resolved at wiring time):" >&2
    echo "$hot_labels" >&2
    exit 1
fi
