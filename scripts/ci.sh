#!/usr/bin/env bash
# Full CI gate: release build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench summary end to end: emit the machine-readable
# figure10 document at zero scale and schema-check it.
summary="$(mktemp)"
fleet_summary="$(mktemp)"
trap 'rm -f "$summary" "$fleet_summary"' EXIT
cargo run -q --release -p mobivine-bench --bin figure10 -- \
    --scale zero --runs 3 --json "$summary"
cargo run -q --release -p mobivine-bench --bin figure10 -- --check "$summary"

# Fleet smoke: drive ~500 devices through the load engine, emit the
# mobivine.fleet.v2 summary, and schema-check it (the check also
# enforces the brownout overload gate embedded in the summary). The
# figure10 run above already smoke-runs the telemetry_hotpath ablation
# (its summary embeds and --check validates the per-call-lookup vs
# cached-handles rows).
cargo run -q --release -p mobivine-bench --bin fleet -- \
    --devices 500 --shards 1,4 --workers 2 --rounds 2 --json "$fleet_summary"
cargo run -q --release -p mobivine-bench --bin fleet -- --check "$fleet_summary"

# Chaos/brownout smoke: ramp one shard 10x under batch-arrival
# deadlines, overload layer on vs off. Exits non-zero unless the
# admission arm sheds while holding the ramped shard's accepted-call
# p99 within target AND the unprotected arm blows past it.
cargo run -q --release -p mobivine-bench --bin fleet -- --brownout

# Regression gate against the committed baselines: schema-check both,
# then re-run every BENCH_fleet.json scaling row (checksums must
# reproduce exactly; deterministic throughput may not drop more than
# 25%) and the live acquisition + telemetry-recording 5x speedup bars.
cargo run -q --release -p mobivine-bench --bin figure10 -- --check BENCH_figure10.json
cargo run -q --release -p mobivine-bench --bin fleet -- --check BENCH_fleet.json
cargo run -q --release -p mobivine-bench --bin fleet -- --compare BENCH_fleet.json

# The deprecated per-interface accessors must not regrow call sites:
# `#[allow(deprecated)]` is sanctioned only in the equivalence suite and
# the registry's own unit tests (clippy -D warnings catches un-allowed
# uses above).
allowed_deprecated=$(grep -rln "allow(deprecated)" --include='*.rs' . \
    | grep -v -e '^\./tests/api_equivalence\.rs$' \
              -e '^\./crates/core/src/registry\.rs$' \
              -e '^\./target/' || true)
if [ -n "$allowed_deprecated" ]; then
    echo "error: allow(deprecated) outside the sanctioned files:" >&2
    echo "$allowed_deprecated" >&2
    exit 1
fi

# clippy runs with -D warnings above, so every `#[allow(clippy::…)]` is
# a pinned, reviewed exception. The allowlist below is exhaustive; a new
# allow anywhere else must either fix the lint or extend this list in
# the same change.
clippy_allows=$(grep -rln "allow(clippy" --include='*.rs' . \
    | grep -v -e '^\./crates/bench/src/fleet_bench\.rs$' \
              -e '^\./target/' \
              -e '^\./stubs/' || true)
if [ -n "$clippy_allows" ]; then
    echo "error: allow(clippy::…) outside the pinned allowlist:" >&2
    echo "$clippy_allows" >&2
    exit 1
fi

# The traced hot path must stay allocation-free: label construction in
# the decorator module is sanctioned only inside CallInstruments::resolve
# (which runs once, at wiring time). Any other Labels::call/Labels::new
# in the non-test portion of telemetry.rs is a per-call allocation
# sneaking back in. (tests/zero_alloc_telemetry.rs proves the property
# dynamically; this guard catches it at review time.)
hot_labels=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }
    /Labels::(call|new)/ && !/Labels::call\(proxy, method, platform\)/ {
        print "crates/core/src/telemetry.rs:" FNR ": " $0
    }
' crates/core/src/telemetry.rs)
if [ -n "$hot_labels" ]; then
    echo "error: label construction on the traced hot path (use the" >&2
    echo "cached CallInstruments handles resolved at wiring time):" >&2
    echo "$hot_labels" >&2
    exit 1
fi
