//! Offline stand-in for `proptest`: enough type machinery that the
//! workspace's `tests/properties.rs` type-checks and its strategy
//! constructors evaluate. The `proptest!` macro registers each case as
//! a `#[test]` that builds its strategies but does not generate values
//! — the real crate is swapped back in by the canonical build.

use std::marker::PhantomData;
use std::ops::Range;

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O> {
        Map(self, f, PhantomData)
    }

    fn prop_recursive<S2, F>(
        self,
        _depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        _recurse: F,
    ) -> Recursive<Self::Value>
    where
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value>,
    {
        Recursive(PhantomData)
    }

    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy(PhantomData)
    }
}

pub struct Map<S, F, O>(S, F, PhantomData<O>);

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F, O> {
    type Value = O;
}

pub struct Recursive<V>(PhantomData<V>);

impl<V> Strategy for Recursive<V> {
    type Value = V;
}

#[derive(Clone, Copy, Debug)]
pub struct BoxedStrategy<V>(PhantomData<V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
}

impl<T> Strategy for Range<T> {
    type Value = T;
}

/// String literals are regex strategies producing `String`s.
impl Strategy for &str {
    type Value = String;
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
}

pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T> {
    type Value = T;
}

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{PhantomData, Strategy};
    use std::ops::Range;

    pub struct VecStrategy<S>(S, PhantomData<()>);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy>(element: S, _size: Range<usize>) -> VecStrategy<S> {
        VecStrategy(element, PhantomData)
    }
}

#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Produces a value of `strategy`'s output type. Only callable from the
/// never-executed body shells [`proptest!`] emits — the stub does not
/// generate inputs.
pub fn value_of<S: Strategy>(_strategy: &S) -> S::Value {
    unreachable!("the offline proptest stand-in never generates values")
}

/// Property assertion; plain `assert!` in the stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; plain `assert_eq!` in the stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares each property as a plain `#[test]` that fully type-checks
/// the property body against the strategies' value types (so every
/// helper and import the body uses stays referenced) without generating
/// inputs or executing it.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($config:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[allow(dead_code)]
            fn __proptest_config() {
                let _ = $config;
            }
        )?
        $(
            #[test]
            #[allow(unused_variables)]
            fn $name() {
                if false {
                    $(let $arg = $crate::value_of(&$strategy);)*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, BoxedStrategy, ProptestConfig, Strategy,
    };
}
