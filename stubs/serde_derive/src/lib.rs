//! Offline stand-in for `serde_derive`: hand-rolled token walking (no
//! syn/quote available) generating impls of the stand-in `serde`
//! traits for plain structs with named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Parsed {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its named-field identifiers, skipping
/// attributes, visibility, and field types.
fn parse_struct(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter().peekable();
    let mut name = String::new();
    let mut fields = Vec::new();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = n.to_string();
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && !name.is_empty() => {
                // Named fields: [attrs] [pub] ident ':' type ','
                let mut inner = g.stream().into_iter().peekable();
                loop {
                    // Skip attributes.
                    while matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#')
                    {
                        inner.next();
                        inner.next(); // the bracket group
                    }
                    // Skip visibility.
                    if matches!(inner.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub")
                    {
                        inner.next();
                        if matches!(inner.peek(), Some(TokenTree::Group(_))) {
                            inner.next(); // pub(crate) etc.
                        }
                    }
                    let Some(TokenTree::Ident(field)) = inner.next() else {
                        break;
                    };
                    fields.push(field.to_string());
                    // Skip ':' and the type, up to a top-level comma.
                    for t in inner.by_ref() {
                        if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }
    Parsed { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let pushes: String = parsed
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push(({f:?}.to_string(), ::serde::Serialize::serialize_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {} {{\n\
            fn serialize_value(&self) -> ::serde::Value {{\n\
                let mut fields = Vec::new();\n\
                {pushes}\
                ::serde::Value::Object(fields)\n\
            }}\n\
        }}",
        parsed.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let inits: String = parsed
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(\
                    value.get_field({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {} {{\n\
            fn deserialize_value(value: &::serde::Value) -> Result<Self, String> {{\n\
                Ok(Self {{ {inits} }})\n\
            }}\n\
        }}",
        parsed.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
