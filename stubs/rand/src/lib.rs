//! Offline stand-in for `rand` 0.8 covering the surface the workspace
//! uses: `StdRng::seed_from_u64` and `Rng::gen::<f64>()`. Deterministic
//! splitmix64 core (values differ from the real crate but are stable
//! per seed, which is all the simulation relies on).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (only what the
/// workspace needs).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64-backed stand-in for the standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}
