//! Offline stand-in for `crossbeam` (declared by the workspace but not
//! referenced from source).
