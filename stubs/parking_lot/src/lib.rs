//! Offline stand-in for `parking_lot` with the same surface used by the
//! workspace: non-poisoning `Mutex` and `RwLock`.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok().map(MutexGuard)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
