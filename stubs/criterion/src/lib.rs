//! Offline stand-in for `criterion`: runs each registered routine a
//! handful of times and prints a rough mean, so `cargo test`/`cargo
//! bench` targets compile and execute without the real harness.

use std::time::Instant;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_case(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_case(&format!("{}/{name}", self.name), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher { elapsed_ns: 0.0, iters: 0 };
    f(&mut bencher);
    if bencher.iters > 0 {
        eprintln!(
            "bench {name}: ~{:.1} ns/iter ({} iters)",
            bencher.elapsed_ns / bencher.iters as f64,
            bencher.iters,
        );
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += 3;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
            self.iters += 1;
        }
    }
}

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
