//! Offline stand-in for `serde_json` over the stand-in `serde` value
//! model: renderer, parser, `json!`, and the `to_*`/`from_*` entry
//! points the workspace calls.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ------------------------------------------------

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize_value()
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---- deserialization ----------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            ))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => return Err(format!("bad array token {other:?}")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        other => return Err(format!("bad object token {other:?}")),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> std::result::Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> std::result::Result<Value, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unexpected end")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut parser = Parser { bytes, pos: 0 };
    let value = parser.parse_value().map_err(Error)?;
    T::deserialize_value(&value).map_err(Error)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    from_slice(text.as_bytes())
}

/// Builds a [`Value`] object from a flat `{"key": expr, ...}` literal
/// (the only shape the workspace uses).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$value))),*
        ])
    };
}
