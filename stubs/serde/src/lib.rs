//! Offline stand-in for `serde`: a value-tree serialization model wide
//! enough for the workspace's derived structs of primitives, strings,
//! `Option`s and `Vec`s.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model shared with the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    use std::fmt::Write;
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl std::fmt::Display for Value {
    /// Renders compact JSON (what `serde_json::to_string` produces).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => escape_into(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, String>;
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}
