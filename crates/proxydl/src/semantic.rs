//! The semantic plane.
//!
//! "In the first plane, called the semantic plane, we fix the structure
//! of the interface, in terms of the method name, number, meaning and
//! order of each parameter along with their dimensions, as well as the
//! return value." (paper §3.1)

use crate::schema::SchemaError;
use crate::xml::XmlNode;

/// One parameter of a semantic method definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name (`latitude`, `radius`, …).
    pub name: String,
    /// 1-based position — the paper's `<dimension>1</dimension>`.
    pub dimension: u32,
    /// Human meaning of the parameter.
    pub meaning: String,
    /// Allowed values (empty = unconstrained).
    pub allowed_values: Vec<String>,
}

impl ParamSpec {
    /// Creates an unconstrained parameter at `dimension`.
    pub fn new(name: &str, dimension: u32, meaning: &str) -> Self {
        Self {
            name: name.to_owned(),
            dimension,
            meaning: meaning.to_owned(),
            allowed_values: Vec::new(),
        }
    }
}

/// One method in the semantic plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// The common method name ("chosen as the most accepted one across
    /// different platforms, or as per the discretion of the proxy
    /// creator").
    pub name: String,
    /// Parameters in dimension order.
    pub params: Vec<ParamSpec>,
    /// Semantic kind of the return value, if any (e.g. `location`).
    pub returns: Option<String>,
}

impl MethodSpec {
    /// Creates a method with no parameters and no return.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            params: Vec::new(),
            returns: None,
        }
    }

    /// Appends a parameter at the next dimension (builder style).
    pub fn param(mut self, name: &str, meaning: &str) -> Self {
        let dimension = self.params.len() as u32 + 1;
        self.params.push(ParamSpec::new(name, dimension, meaning));
        self
    }

    /// Sets the return kind (builder style).
    pub fn returns(mut self, kind: &str) -> Self {
        self.returns = Some(kind.to_owned());
        self
    }
}

/// The semantic plane of one proxy: the platform-neutral interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticPlane {
    /// The interface this proxy abstracts (`Location`, `SMS`, …).
    pub interface: String,
    /// The methods it exposes.
    pub methods: Vec<MethodSpec>,
}

impl SemanticPlane {
    /// Creates an empty plane for `interface`.
    pub fn new(interface: &str) -> Self {
        Self {
            interface: interface.to_owned(),
            methods: Vec::new(),
        }
    }

    /// Adds a method (builder style).
    pub fn method(mut self, method: MethodSpec) -> Self {
        self.methods.push(method);
        self
    }

    /// Looks up a method by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodSpec> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Serializes to the semantic-plane XML form.
    pub fn to_xml(&self) -> XmlNode {
        let mut root = XmlNode::new("semanticPlane").attr("interface", &self.interface);
        for method in &self.methods {
            let mut m = XmlNode::new("method").attr("name", &method.name);
            for p in &method.params {
                let mut param = XmlNode::new("param")
                    .attr("name", &p.name)
                    .child(XmlNode::new("dimension").text(&p.dimension.to_string()))
                    .child(XmlNode::new("meaning").text(&p.meaning));
                if !p.allowed_values.is_empty() {
                    let mut allowed = XmlNode::new("allowedValues");
                    for v in &p.allowed_values {
                        allowed = allowed.child(XmlNode::new("value").text(v));
                    }
                    param = param.child(allowed);
                }
                m = m.child(param);
            }
            if let Some(ret) = &method.returns {
                m = m.child(XmlNode::new("returns").text(ret));
            }
            root = root.child(m);
        }
        root
    }

    /// Deserializes from the semantic-plane XML form.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Malformed`] for structural problems.
    pub fn from_xml(node: &XmlNode) -> Result<Self, SchemaError> {
        if node.name != "semanticPlane" {
            return Err(SchemaError::Malformed(format!(
                "expected <semanticPlane>, found <{}>",
                node.name
            )));
        }
        let interface = node
            .attribute("interface")
            .ok_or_else(|| SchemaError::Malformed("semanticPlane missing interface".into()))?
            .to_owned();
        let mut plane = SemanticPlane::new(&interface);
        for m in node.find_all("method") {
            let name = m
                .attribute("name")
                .ok_or_else(|| SchemaError::Malformed("method missing name".into()))?;
            let mut method = MethodSpec::new(name);
            for p in m.find_all("param") {
                let pname = p
                    .attribute("name")
                    .ok_or_else(|| SchemaError::Malformed("param missing name".into()))?;
                let dimension: u32 = p
                    .find("dimension")
                    .map(|d| d.text.as_str())
                    .unwrap_or("0")
                    .parse()
                    .map_err(|_| SchemaError::Malformed("bad dimension".into()))?;
                let meaning = p
                    .find("meaning")
                    .map(|m| m.text.clone())
                    .unwrap_or_default();
                let allowed_values = p
                    .find("allowedValues")
                    .map(|av| av.find_all("value").map(|v| v.text.clone()).collect())
                    .unwrap_or_default();
                method.params.push(ParamSpec {
                    name: pname.to_owned(),
                    dimension,
                    meaning,
                    allowed_values,
                });
            }
            method.returns = m.find("returns").map(|r| r.text.clone());
            plane.methods.push(method);
        }
        Ok(plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proximity_plane() -> SemanticPlane {
        SemanticPlane::new("Location").method(
            MethodSpec::new("addProximityAlert")
                .param("latitude", "region center latitude in degrees")
                .param("longitude", "region center longitude in degrees")
                .param("altitude", "region center altitude in metres")
                .param("radius", "region radius in metres")
                .param("timer", "registration lifetime in seconds")
                .param("proximityListener", "callback receiving alerts"),
        )
    }

    #[test]
    fn builder_assigns_dimensions_in_order() {
        let plane = proximity_plane();
        let m = plane.find_method("addProximityAlert").unwrap();
        let dims: Vec<u32> = m.params.iter().map(|p| p.dimension).collect();
        assert_eq!(dims, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.params[0].name, "latitude");
    }

    #[test]
    fn xml_round_trip() {
        let mut plane = proximity_plane();
        plane.methods[0].returns = Some("void".into());
        plane.methods[0].params[4].allowed_values = vec!["-1".into(), ">0".into()];
        let xml = plane.to_xml();
        let back = SemanticPlane::from_xml(&xml).unwrap();
        assert_eq!(back, plane);
    }

    #[test]
    fn xml_round_trip_through_text() {
        let plane = proximity_plane();
        let text = plane.to_xml().render();
        let reparsed = crate::xml::XmlNode::parse(&text).unwrap();
        assert_eq!(SemanticPlane::from_xml(&reparsed).unwrap(), plane);
    }

    #[test]
    fn from_xml_rejects_wrong_root() {
        let node = XmlNode::new("other");
        assert!(matches!(
            SemanticPlane::from_xml(&node),
            Err(SchemaError::Malformed(_))
        ));
    }

    #[test]
    fn from_xml_rejects_missing_names() {
        let node = XmlNode::new("semanticPlane")
            .attr("interface", "X")
            .child(XmlNode::new("method"));
        assert!(SemanticPlane::from_xml(&node).is_err());
    }

    #[test]
    fn find_method_misses_gracefully() {
        assert!(proximity_plane().find_method("sendTextMessage").is_none());
    }
}
