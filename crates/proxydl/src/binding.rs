//! The binding plane.
//!
//! "In the third and final plane, the binding plane, we provide
//! implementation modules that realize this interface on different
//! platforms. This is also the place where we include platform specific
//! attributes (through the notion of a 'property list') as well as the
//! underlying exception set." (paper §3.1)

use std::fmt;

use crate::schema::SchemaError;
use crate::syntactic::Language;
use crate::xml::XmlNode;

/// A target platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Android (native Java).
    Android,
    /// Nokia S60 (J2ME).
    NokiaS60,
    /// Android WebView (JavaScript).
    AndroidWebView,
    /// A platform added through MobiVine's extension mechanism
    /// (§3.3) — only a binding plane needs publishing.
    Custom(String),
}

impl PlatformId {
    /// The identifier used in XML documents.
    pub fn id(&self) -> &str {
        match self {
            PlatformId::Android => "android",
            PlatformId::NokiaS60 => "s60",
            PlatformId::AndroidWebView => "android-webview",
            PlatformId::Custom(name) => name,
        }
    }

    /// Parses an XML identifier (unknown ids become
    /// [`PlatformId::Custom`]).
    pub fn from_id(id: &str) -> Self {
        match id {
            "android" => PlatformId::Android,
            "s60" => PlatformId::NokiaS60,
            "android-webview" => PlatformId::AndroidWebView,
            other => PlatformId::Custom(other.to_owned()),
        }
    }

    /// The language this platform's binding is written in.
    pub fn language(&self) -> Language {
        match self {
            PlatformId::AndroidWebView => Language::JavaScript,
            _ => Language::Java,
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A platform-specific property: the generic mechanism absorbing
/// platform-mandated attributes outside the common API, configured via
/// `setProperty()` (paper §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertySpec {
    /// Property key (`preferredResponseTime`, `context`, `provider`…).
    pub name: String,
    /// Human description, shown by the plug-in's configuration dialog.
    pub description: String,
    /// Data type (`int`, `string`, `object`, …).
    pub data_type: String,
    /// Default value, if any.
    pub default_value: Option<String>,
    /// Allowed values (empty = unconstrained).
    pub allowed_values: Vec<String>,
    /// Whether the proxy cannot function until the property is set
    /// (e.g. Android's application `context`).
    pub required: bool,
}

impl PropertySpec {
    /// Creates an unconstrained optional property.
    pub fn new(name: &str, data_type: &str, description: &str) -> Self {
        Self {
            name: name.to_owned(),
            description: description.to_owned(),
            data_type: data_type.to_owned(),
            default_value: None,
            allowed_values: Vec::new(),
            required: false,
        }
    }

    /// Sets the default value (builder style).
    pub fn default_value(mut self, value: &str) -> Self {
        self.default_value = Some(value.to_owned());
        self
    }

    /// Constrains allowed values (builder style).
    pub fn allowed(mut self, values: &[&str]) -> Self {
        self.allowed_values = values.iter().map(|v| (*v).to_owned()).collect();
        self
    }

    /// Marks the property required (builder style).
    pub fn required(mut self) -> Self {
        self.required = true;
        self
    }

    /// Whether `value` satisfies this property's constraint.
    pub fn accepts(&self, value: &str) -> bool {
        self.allowed_values.is_empty() || self.allowed_values.iter().any(|v| v == value)
    }
}

/// The binding plane for one platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformBinding {
    /// Target platform.
    pub platform: PlatformId,
    /// Implementation module — the paper's
    /// `<implementation>com.ibm.S60.location.LocationProxy</implementation>`.
    pub implementation_class: String,
    /// Exceptions the platform's native interfaces throw.
    pub exceptions: Vec<String>,
    /// Platform-specific properties.
    pub properties: Vec<PropertySpec>,
}

impl PlatformBinding {
    /// Creates a binding with no exceptions or properties.
    pub fn new(platform: PlatformId, implementation_class: &str) -> Self {
        Self {
            platform,
            implementation_class: implementation_class.to_owned(),
            exceptions: Vec::new(),
            properties: Vec::new(),
        }
    }

    /// Adds a thrown exception class (builder style).
    pub fn exception(mut self, class: &str) -> Self {
        self.exceptions.push(class.to_owned());
        self
    }

    /// Adds a property (builder style).
    pub fn property(mut self, property: PropertySpec) -> Self {
        self.properties.push(property);
        self
    }

    /// Looks up a property by name.
    pub fn find_property(&self, name: &str) -> Option<&PropertySpec> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// The language of this binding.
    pub fn language(&self) -> Language {
        self.platform.language()
    }

    /// Serializes to the binding-plane XML form.
    pub fn to_xml(&self) -> XmlNode {
        let mut root = XmlNode::new("bindingPlane")
            .attr("platform", self.platform.id())
            .attr("language", self.language().id())
            .child(XmlNode::new("implementation").text(&self.implementation_class));
        if !self.exceptions.is_empty() {
            let mut ex = XmlNode::new("exceptions");
            for e in &self.exceptions {
                ex = ex.child(XmlNode::new("exception").text(e));
            }
            root = root.child(ex);
        }
        if !self.properties.is_empty() {
            let mut props = XmlNode::new("propertyList");
            for p in &self.properties {
                let mut prop = XmlNode::new("property")
                    .attr("name", &p.name)
                    .attr("type", &p.data_type)
                    .child(XmlNode::new("description").text(&p.description));
                if p.required {
                    prop = prop.attr("required", "true");
                }
                if let Some(d) = &p.default_value {
                    prop = prop.child(XmlNode::new("default").text(d));
                }
                if !p.allowed_values.is_empty() {
                    let mut allowed = XmlNode::new("allowedValues");
                    for v in &p.allowed_values {
                        allowed = allowed.child(XmlNode::new("value").text(v));
                    }
                    prop = prop.child(allowed);
                }
                props = props.child(prop);
            }
            root = root.child(props);
        }
        root
    }

    /// Deserializes from the binding-plane XML form.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Malformed`] for structural problems.
    pub fn from_xml(node: &XmlNode) -> Result<Self, SchemaError> {
        if node.name != "bindingPlane" {
            return Err(SchemaError::Malformed(format!(
                "expected <bindingPlane>, found <{}>",
                node.name
            )));
        }
        let platform = PlatformId::from_id(
            node.attribute("platform")
                .ok_or_else(|| SchemaError::Malformed("bindingPlane missing platform".into()))?,
        );
        let implementation_class = node
            .find("implementation")
            .map(|i| i.text.clone())
            .ok_or_else(|| SchemaError::Malformed("bindingPlane missing implementation".into()))?;
        let mut binding = PlatformBinding::new(platform, &implementation_class);
        if let Some(ex) = node.find("exceptions") {
            binding.exceptions = ex.find_all("exception").map(|e| e.text.clone()).collect();
        }
        if let Some(props) = node.find("propertyList") {
            for p in props.find_all("property") {
                let name = p
                    .attribute("name")
                    .ok_or_else(|| SchemaError::Malformed("property missing name".into()))?;
                let data_type = p.attribute("type").unwrap_or("string");
                let mut spec = PropertySpec::new(
                    name,
                    data_type,
                    &p.find("description")
                        .map(|d| d.text.clone())
                        .unwrap_or_default(),
                );
                spec.required = p.attribute("required") == Some("true");
                spec.default_value = p.find("default").map(|d| d.text.clone());
                spec.allowed_values = p
                    .find("allowedValues")
                    .map(|av| av.find_all("value").map(|v| v.text.clone()).collect())
                    .unwrap_or_default();
                binding.properties.push(spec);
            }
        }
        Ok(binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s60_binding() -> PlatformBinding {
        // The paper's S60 binding listing for addProximityAlert.
        PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.location.LocationProxy")
            .exception("javax.microedition.location.LocationException")
            .exception("java.lang.SecurityException")
            .property(
                PropertySpec::new(
                    "preferredResponseTime",
                    "int",
                    "Preferred max. response time",
                )
                .default_value("-1"),
            )
            .property(
                PropertySpec::new("powerConsumption", "string", "Positioning power budget")
                    .default_value("NoRequirement")
                    .allowed(&["NoRequirement", "Low", "Medium", "High"]),
            )
    }

    #[test]
    fn paper_s60_listing_reproduced() {
        let b = s60_binding();
        assert_eq!(b.implementation_class, "com.ibm.S60.location.LocationProxy");
        assert!(b
            .exceptions
            .contains(&"javax.microedition.location.LocationException".to_owned()));
        let p = b.find_property("preferredResponseTime").unwrap();
        assert_eq!(p.default_value.as_deref(), Some("-1"));
    }

    #[test]
    fn property_constraint_checking() {
        let b = s60_binding();
        let p = b.find_property("powerConsumption").unwrap();
        assert!(p.accepts("Low"));
        assert!(!p.accepts("Turbo"));
        // Unconstrained property accepts anything.
        assert!(b
            .find_property("preferredResponseTime")
            .unwrap()
            .accepts("5000"));
    }

    #[test]
    fn platform_languages() {
        assert_eq!(PlatformId::Android.language(), Language::Java);
        assert_eq!(PlatformId::NokiaS60.language(), Language::Java);
        assert_eq!(PlatformId::AndroidWebView.language(), Language::JavaScript);
        assert_eq!(
            PlatformId::Custom("iphone".into()).language(),
            Language::Java
        );
    }

    #[test]
    fn platform_ids_round_trip() {
        for p in [
            PlatformId::Android,
            PlatformId::NokiaS60,
            PlatformId::AndroidWebView,
            PlatformId::Custom("brew".into()),
        ] {
            assert_eq!(PlatformId::from_id(p.id()), p);
        }
    }

    #[test]
    fn xml_round_trip() {
        let binding = s60_binding();
        let text = binding.to_xml().render();
        let reparsed = crate::xml::XmlNode::parse(&text).unwrap();
        assert_eq!(PlatformBinding::from_xml(&reparsed).unwrap(), binding);
    }

    #[test]
    fn required_flag_round_trips() {
        let binding = PlatformBinding::new(PlatformId::Android, "X")
            .property(PropertySpec::new("context", "object", "app context").required());
        let text = binding.to_xml().render();
        let back = PlatformBinding::from_xml(&crate::xml::XmlNode::parse(&text).unwrap()).unwrap();
        assert!(back.find_property("context").unwrap().required);
    }

    #[test]
    fn from_xml_requires_implementation() {
        let node = XmlNode::new("bindingPlane").attr("platform", "android");
        assert!(PlatformBinding::from_xml(&node).is_err());
    }
}
