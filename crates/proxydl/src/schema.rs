//! The five schema validators.
//!
//! The paper designs "five Schemas in the XML format — one for handling
//! the semantic plane, one each for handling Java and JavaScript styles
//! at the syntactic plane, and two at the implementation plane for
//! binding Java (for S60 and Android), and JavaScript (for WebView)"
//! (§4.1). [`validate_descriptor`] runs all applicable schemas plus the
//! cross-plane consistency rules the layered design implies ("at each
//! plane ... we capture a subset of the total information, and make it
//! consistent in a manner so that it can be built upon by the subsequent
//! plane(s)", §3.1).

use std::collections::HashSet;
use std::fmt;

use crate::binding::PlatformBinding;
use crate::descriptor::ProxyDescriptor;
use crate::semantic::SemanticPlane;
use crate::syntactic::{Language, SyntacticBinding};

/// Which of the five schemas a validation ran against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaKind {
    /// The semantic-plane schema.
    Semantic,
    /// The Java syntactic-plane schema.
    SyntacticJava,
    /// The JavaScript syntactic-plane schema.
    SyntacticJavaScript,
    /// The Java binding-plane schema (Android and S60).
    BindingJava,
    /// The JavaScript binding-plane schema (WebView).
    BindingJavaScript,
}

impl SchemaKind {
    /// The schema governing a syntactic binding.
    pub fn for_syntax(language: Language) -> Self {
        match language {
            Language::Java => SchemaKind::SyntacticJava,
            Language::JavaScript => SchemaKind::SyntacticJavaScript,
        }
    }

    /// The schema governing a platform binding.
    pub fn for_binding(binding: &PlatformBinding) -> Self {
        match binding.language() {
            Language::Java => SchemaKind::BindingJava,
            Language::JavaScript => SchemaKind::BindingJavaScript,
        }
    }
}

/// A schema violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The XML structure did not match any plane form.
    Malformed(String),
    /// A method name appears twice in one plane.
    DuplicateMethod(String),
    /// Parameter dimensions are not contiguous 1..n.
    BadDimensions {
        /// The offending method.
        method: String,
    },
    /// A syntactic binding misses a semantic method or has wrong arity.
    ArityMismatch {
        /// The offending method.
        method: String,
        /// The syntactic binding's language.
        language: Language,
        /// Parameter count the semantic plane declares.
        expected: usize,
        /// Parameter-type count the syntactic binding provides.
        found: usize,
    },
    /// A semantic method lacks a binding in some declared language.
    MissingMethodTypes {
        /// The unbound method.
        method: String,
        /// The language missing the binding.
        language: Language,
    },
    /// A property default falls outside its allowed values.
    BadPropertyDefault {
        /// The offending property.
        property: String,
    },
    /// A platform is bound twice.
    DuplicateBinding(String),
    /// A platform binding's language has no syntactic plane.
    MissingSyntax {
        /// The proxy being extended.
        proxy: String,
        /// The language lacking a syntactic plane.
        language: Language,
    },
    /// A binding has an empty implementation class.
    EmptyImplementation(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Malformed(m) => write!(f, "malformed document: {m}"),
            SchemaError::DuplicateMethod(m) => write!(f, "duplicate method {m}"),
            SchemaError::BadDimensions { method } => {
                write!(f, "method {method} has non-contiguous parameter dimensions")
            }
            SchemaError::ArityMismatch {
                method,
                language,
                expected,
                found,
            } => write!(
                f,
                "method {method} has {found} {language} parameter types, semantic plane declares {expected}"
            ),
            SchemaError::MissingMethodTypes { method, language } => {
                write!(f, "method {method} has no {language} type binding")
            }
            SchemaError::BadPropertyDefault { property } => {
                write!(f, "property {property} default is not among allowed values")
            }
            SchemaError::DuplicateBinding(p) => write!(f, "platform {p} bound twice"),
            SchemaError::MissingSyntax { proxy, language } => {
                write!(f, "proxy {proxy} has no {language} syntactic plane")
            }
            SchemaError::EmptyImplementation(p) => {
                write!(f, "binding for {p} has an empty implementation class")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Validates the semantic plane: unique method names and contiguous
/// parameter dimensions.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_semantic(plane: &SemanticPlane) -> Result<(), SchemaError> {
    let mut seen = HashSet::new();
    for method in &plane.methods {
        if !seen.insert(method.name.as_str()) {
            return Err(SchemaError::DuplicateMethod(method.name.clone()));
        }
        let mut dims: Vec<u32> = method.params.iter().map(|p| p.dimension).collect();
        dims.sort_unstable();
        let contiguous = dims.iter().enumerate().all(|(i, d)| *d == (i as u32) + 1);
        if !contiguous {
            return Err(SchemaError::BadDimensions {
                method: method.name.clone(),
            });
        }
        let mut param_names = HashSet::new();
        for p in &method.params {
            if !param_names.insert(p.name.as_str()) {
                return Err(SchemaError::DuplicateMethod(format!(
                    "{}::{}",
                    method.name, p.name
                )));
            }
        }
    }
    Ok(())
}

/// Validates one syntactic binding against the semantic plane: every
/// semantic method must be bound with matching arity.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_syntactic(
    binding: &SyntacticBinding,
    semantic: &SemanticPlane,
) -> Result<(), SchemaError> {
    let mut seen = HashSet::new();
    for m in &binding.methods {
        if !seen.insert(m.name.as_str()) {
            return Err(SchemaError::DuplicateMethod(m.name.clone()));
        }
    }
    for method in &semantic.methods {
        let types =
            binding
                .find_method(&method.name)
                .ok_or_else(|| SchemaError::MissingMethodTypes {
                    method: method.name.clone(),
                    language: binding.language,
                })?;
        if types.param_types.len() != method.params.len() {
            return Err(SchemaError::ArityMismatch {
                method: method.name.clone(),
                language: binding.language,
                expected: method.params.len(),
                found: types.param_types.len(),
            });
        }
    }
    Ok(())
}

/// Validates one platform binding: a non-empty implementation module and
/// property defaults within their allowed values.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_binding(binding: &PlatformBinding) -> Result<(), SchemaError> {
    if binding.implementation_class.trim().is_empty() {
        return Err(SchemaError::EmptyImplementation(
            binding.platform.id().to_owned(),
        ));
    }
    for p in &binding.properties {
        if let Some(default) = &p.default_value {
            if !p.accepts(default) {
                return Err(SchemaError::BadPropertyDefault {
                    property: p.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Runs every applicable schema over a full descriptor, collecting all
/// violations (empty = valid).
pub fn validate_descriptor(descriptor: &ProxyDescriptor) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    if let Err(e) = validate_semantic(&descriptor.semantic) {
        errors.push(e);
    }
    for s in &descriptor.syntactic {
        if let Err(e) = validate_syntactic(s, &descriptor.semantic) {
            errors.push(e);
        }
    }
    let mut platforms = HashSet::new();
    for b in &descriptor.bindings {
        if !platforms.insert(b.platform.id().to_owned()) {
            errors.push(SchemaError::DuplicateBinding(b.platform.id().to_owned()));
        }
        if let Err(e) = validate_binding(b) {
            errors.push(e);
        }
        if descriptor.syntax_for(b.language()).is_none() {
            errors.push(SchemaError::MissingSyntax {
                proxy: descriptor.name.clone(),
                language: b.language(),
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{PlatformId, PropertySpec};
    use crate::semantic::{MethodSpec, ParamSpec};
    use crate::syntactic::MethodTypes;

    fn valid_descriptor() -> ProxyDescriptor {
        ProxyDescriptor::new(
            "Sms",
            "Telecom",
            SemanticPlane::new("SMS").method(
                MethodSpec::new("sendTextMessage")
                    .param("destination", "recipient address")
                    .param("text", "message body"),
            ),
        )
        .syntax(
            SyntacticBinding::new(Language::Java).method(
                MethodTypes::new("sendTextMessage")
                    .param("java.lang.String")
                    .param("java.lang.String"),
            ),
        )
        .binding(PlatformBinding::new(
            PlatformId::Android,
            "com.ibm.android.sms.SmsProxy",
        ))
    }

    #[test]
    fn valid_descriptor_passes_all_schemas() {
        assert!(validate_descriptor(&valid_descriptor()).is_empty());
    }

    #[test]
    fn duplicate_semantic_method_detected() {
        let plane = SemanticPlane::new("X")
            .method(MethodSpec::new("m"))
            .method(MethodSpec::new("m"));
        assert!(matches!(
            validate_semantic(&plane),
            Err(SchemaError::DuplicateMethod(_))
        ));
    }

    #[test]
    fn non_contiguous_dimensions_detected() {
        let mut plane = SemanticPlane::new("X").method(MethodSpec::new("m"));
        plane.methods[0].params = vec![ParamSpec::new("a", 1, ""), ParamSpec::new("b", 3, "")];
        assert!(matches!(
            validate_semantic(&plane),
            Err(SchemaError::BadDimensions { .. })
        ));
    }

    #[test]
    fn duplicate_param_names_detected() {
        let mut plane = SemanticPlane::new("X").method(MethodSpec::new("m"));
        plane.methods[0].params = vec![ParamSpec::new("a", 1, ""), ParamSpec::new("a", 2, "")];
        assert!(validate_semantic(&plane).is_err());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut d = valid_descriptor();
        d.syntactic[0].methods[0].param_types.pop();
        let errors = validate_descriptor(&d);
        assert!(errors.iter().any(|e| matches!(
            e,
            SchemaError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        )));
    }

    #[test]
    fn missing_method_types_detected() {
        let mut d = valid_descriptor();
        d.syntactic[0].methods.clear();
        let errors = validate_descriptor(&d);
        assert!(errors
            .iter()
            .any(|e| matches!(e, SchemaError::MissingMethodTypes { .. })));
    }

    #[test]
    fn bad_property_default_detected() {
        let binding = PlatformBinding::new(PlatformId::NokiaS60, "Impl").property(
            PropertySpec::new("power", "string", "")
                .default_value("Turbo")
                .allowed(&["Low", "High"]),
        );
        assert!(matches!(
            validate_binding(&binding),
            Err(SchemaError::BadPropertyDefault { .. })
        ));
    }

    #[test]
    fn empty_implementation_detected() {
        let binding = PlatformBinding::new(PlatformId::Android, "  ");
        assert!(matches!(
            validate_binding(&binding),
            Err(SchemaError::EmptyImplementation(_))
        ));
    }

    #[test]
    fn binding_without_language_syntax_detected() {
        let mut d = valid_descriptor();
        d.bindings.push(PlatformBinding::new(
            PlatformId::AndroidWebView,
            "SmsProxy.js",
        ));
        let errors = validate_descriptor(&d);
        assert!(errors
            .iter()
            .any(|e| matches!(e, SchemaError::MissingSyntax { .. })));
    }

    #[test]
    fn duplicate_platform_binding_detected() {
        let mut d = valid_descriptor();
        d.bindings
            .push(PlatformBinding::new(PlatformId::Android, "Other"));
        let errors = validate_descriptor(&d);
        assert!(errors
            .iter()
            .any(|e| matches!(e, SchemaError::DuplicateBinding(_))));
    }

    #[test]
    fn schema_kind_mapping() {
        assert_eq!(
            SchemaKind::for_syntax(Language::Java),
            SchemaKind::SyntacticJava
        );
        assert_eq!(
            SchemaKind::for_binding(&PlatformBinding::new(PlatformId::AndroidWebView, "x")),
            SchemaKind::BindingJavaScript
        );
        assert_eq!(
            SchemaKind::for_binding(&PlatformBinding::new(PlatformId::NokiaS60, "x")),
            SchemaKind::BindingJava
        );
    }
}
