#![warn(missing_docs)]
//! Proxy description language (PDL) for MobiVine M-Proxies.
//!
//! The paper encodes each M-Proxy as XML documents against **five XML
//! Schemas** — "one for handling the semantic plane, one each for
//! handling Java and JavaScript styles at the syntactic plane, and two at
//! the implementation plane for binding Java (for S60 and Android), and
//! JavaScript (for WebView)" (§4.1).
//!
//! This crate provides:
//!
//! - [`xml`] — a dependency-free reader/writer for the XML subset those
//!   documents use (elements, attributes, text, escaping),
//! - [`semantic`], [`syntactic`], [`binding`] — typed models of the
//!   three planes (§3.1),
//! - [`descriptor`] — a complete proxy descriptor combining the planes,
//!   with XML (de)serialization,
//! - [`schema`] — the five validators, including cross-plane
//!   consistency checks (every semantic method must have type bindings;
//!   property defaults must be among allowed values), and
//! - [`catalog`] — the standard descriptors the paper implements
//!   (Location, SMS, Call, Http for Android / Nokia S60 / Android
//!   WebView, with Call absent on S60 exactly as in §4.1).

pub mod binding;
pub mod catalog;
pub mod descriptor;
pub mod schema;
pub mod semantic;
pub mod syntactic;
pub mod xml;

pub use binding::{PlatformBinding, PlatformId, PropertySpec};
pub use descriptor::ProxyDescriptor;
pub use schema::{SchemaError, SchemaKind};
pub use semantic::{MethodSpec, ParamSpec, SemanticPlane};
pub use syntactic::{Language, SyntacticBinding};
