//! A dependency-free XML subset.
//!
//! Supports what the paper's proxy documents need: nested elements,
//! attributes, character data, the five standard entities, comments and
//! an optional declaration (both skipped on parse). No namespaces, no
//! CDATA, no DTDs.

use std::fmt;

/// An XML element node.
///
/// # Example
///
/// ```
/// use mobivine_proxydl::xml::XmlNode;
///
/// let doc = XmlNode::new("method")
///     .attr("name", "addProximityAlert")
///     .child(XmlNode::new("param").attr("name", "latitude").text("1"));
/// let rendered = doc.render();
/// let parsed = XmlNode::parse(&rendered)?;
/// assert_eq!(parsed, doc);
/// # Ok::<(), mobivine_proxydl::xml::XmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated character data directly inside this element
    /// (leading/trailing whitespace trimmed).
    pub text: String,
}

/// Error parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

impl XmlNode {
    /// Creates an element with no attributes, children or text.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, name: &str, value: &str) -> Self {
        self.attributes.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Sets the text content (builder style).
    pub fn text(mut self, text: &str) -> Self {
        self.text = text.to_owned();
        self
    }

    /// Looks up an attribute value.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given element name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given element name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Renders the document with 2-space indentation and a declaration.
    pub fn render(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (name, value) in &self.attributes {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if self.children.is_empty() {
            out.push_str(&escape(&self.text));
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push('\n');
        if !self.text.is_empty() {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&escape(&self.text));
            out.push('\n');
        }
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }

    /// Parses a document into its root element.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_prolog();
        let root = parser.parse_element()?;
        parser.skip_misc();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after root element"));
        }
        Ok(root)
    }
}

/// Escapes the five standard XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
///
/// Returns the byte offset of an unknown or unterminated entity.
pub fn unescape(s: &str) -> Result<String, usize> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let rest = &s[i..];
            let (entity, len) = if rest.starts_with("&amp;") {
                ('&', 5)
            } else if rest.starts_with("&lt;") {
                ('<', 4)
            } else if rest.starts_with("&gt;") {
                ('>', 4)
            } else if rest.starts_with("&quot;") {
                ('"', 6)
            } else if rest.starts_with("&apos;") {
                ('\'', 6)
            } else {
                return Err(i);
            };
            out.push(entity);
            i += len;
        } else {
            // `i` always lands on a char boundary (it only advances by
            // whole entities or `len_utf8`), but report the offset as a
            // malformed-input error rather than panicking if that
            // invariant is ever violated.
            let Some(c) = s[i..].chars().next() else {
                return Err(i);
            };
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            if let Some(end) = find_from(self.bytes, self.pos, b"?>") {
                self.pos = end + 2;
            }
        }
        self.skip_misc();
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match find_from(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("name is not valid utf-8"))?;
        Ok(name.to_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(&name);
        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("attribute value is not utf-8"))?;
                    let value = unescape(raw).map_err(|off| XmlError {
                        offset: start + off,
                        message: "bad entity in attribute".to_owned(),
                    })?;
                    self.pos += 1;
                    node.attributes.push((attr_name, value));
                }
                None => return Err(self.error("unexpected end inside tag")),
            }
        }
        // Content.
        let mut text = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.error("unexpected end inside element content"));
            }
            if self.starts_with("<!--") {
                match find_from(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.error(&format!(
                        "mismatched closing tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' in closing tag"));
                }
                self.pos += 1;
                node.text = text.trim().to_owned();
                return Ok(node);
            }
            if self.peek() == Some(b'<') {
                node.children.push(self.parse_element()?);
                continue;
            }
            let start = self.pos;
            while self.pos < self.bytes.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.error("text is not utf-8"))?;
            let unescaped = unescape(raw).map_err(|off| XmlError {
                offset: start + off,
                message: "bad entity in text".to_owned(),
            })?;
            text.push_str(&unescaped);
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let node = XmlNode::new("proxy")
            .attr("name", "Location")
            .child(XmlNode::new("method").attr("name", "getLocation"))
            .child(XmlNode::new("method").attr("name", "addProximityAlert"));
        assert_eq!(node.attribute("name"), Some("Location"));
        assert_eq!(
            node.find("method").unwrap().attribute("name"),
            Some("getLocation")
        );
        assert_eq!(node.find_all("method").count(), 2);
        assert!(node.find("missing").is_none());
    }

    #[test]
    fn render_parse_round_trip_simple() {
        let doc = XmlNode::new("a")
            .attr("x", "1")
            .child(XmlNode::new("b").text("hello"))
            .child(XmlNode::new("c"));
        let parsed = XmlNode::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn round_trip_with_entities() {
        let doc = XmlNode::new("m")
            .attr("expr", "a < b && c > \"d\"")
            .text("5 < 6 & 'quotes'");
        let parsed = XmlNode::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_declaration_and_comments() {
        let input = r#"<?xml version="1.0"?>
<!-- a comment -->
<root><!-- inner --><leaf/></root>
<!-- trailing -->"#;
        let parsed = XmlNode::parse(input).unwrap();
        assert_eq!(parsed.name, "root");
        assert_eq!(parsed.children.len(), 1);
    }

    #[test]
    fn parses_single_quoted_attributes() {
        let parsed = XmlNode::parse("<a k='v'/>").unwrap();
        assert_eq!(parsed.attribute("k"), Some("v"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = XmlNode::parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn truncated_documents_rejected() {
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("<a attr=>").is_err());
        assert!(XmlNode::parse("<a attr=\"v>").is_err());
        assert!(XmlNode::parse("").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(XmlNode::parse("<a/><b/>").is_err());
        assert!(XmlNode::parse("<a/>junk").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(XmlNode::parse("<a>&bogus;</a>").is_err());
        assert!(XmlNode::parse("<a k=\"&bad;\"/>").is_err());
    }

    #[test]
    fn whitespace_around_text_is_trimmed() {
        let parsed = XmlNode::parse("<a>\n  padded  \n</a>").unwrap();
        assert_eq!(parsed.text, "padded");
    }

    #[test]
    fn escape_unescape_inverse() {
        let original = "a<b>&\"c'д";
        assert_eq!(unescape(&escape(original)).unwrap(), original);
    }

    #[test]
    fn nested_depth() {
        let mut doc = XmlNode::new("leaf").text("x");
        for i in 0..20 {
            doc = XmlNode::new(&format!("level{i}")).child(doc);
        }
        let parsed = XmlNode::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }
}
