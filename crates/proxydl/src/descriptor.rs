//! Complete proxy descriptors.
//!
//! A [`ProxyDescriptor`] combines the three planes of one M-Proxy: one
//! semantic plane, one syntactic binding per language, and one platform
//! binding per supported platform. "In practice, proxies should be
//! developed for an interface that exists on more than one platform, and
//! not necessarily on 'all' platforms" (paper §3.3) — which is why the
//! binding list is open-ended.

use crate::binding::{PlatformBinding, PlatformId};
use crate::schema::SchemaError;
use crate::semantic::SemanticPlane;
use crate::syntactic::{Language, SyntacticBinding};
use crate::xml::XmlNode;

/// A complete M-Proxy description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyDescriptor {
    /// Proxy name, e.g. `Location` — shown as a category in the proxy
    /// drawer.
    pub name: String,
    /// Drawer category grouping, e.g. `Telecom`.
    pub category: String,
    /// The semantic plane.
    pub semantic: SemanticPlane,
    /// Syntactic bindings (one per language).
    pub syntactic: Vec<SyntacticBinding>,
    /// Platform bindings (one per supported platform).
    pub bindings: Vec<PlatformBinding>,
}

impl ProxyDescriptor {
    /// Creates a descriptor around a semantic plane.
    pub fn new(name: &str, category: &str, semantic: SemanticPlane) -> Self {
        Self {
            name: name.to_owned(),
            category: category.to_owned(),
            semantic,
            syntactic: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Adds a syntactic binding (builder style).
    pub fn syntax(mut self, binding: SyntacticBinding) -> Self {
        self.syntactic.push(binding);
        self
    }

    /// Adds a platform binding (builder style).
    pub fn binding(mut self, binding: PlatformBinding) -> Self {
        self.bindings.push(binding);
        self
    }

    /// The syntactic binding for `language`, if present.
    pub fn syntax_for(&self, language: Language) -> Option<&SyntacticBinding> {
        self.syntactic.iter().find(|s| s.language == language)
    }

    /// The platform binding for `platform`, if present.
    pub fn binding_for(&self, platform: &PlatformId) -> Option<&PlatformBinding> {
        self.bindings.iter().find(|b| &b.platform == platform)
    }

    /// Platforms this proxy supports.
    pub fn platforms(&self) -> Vec<&PlatformId> {
        self.bindings.iter().map(|b| &b.platform).collect()
    }

    /// Extends the descriptor with a binding for a new platform — the
    /// extension workflow of §3.3: "if the semantic and syntactic planes
    /// already exist ... one requires to publish only the binding
    /// artifacts".
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::DuplicateBinding`] if the platform is
    /// already bound, or [`SchemaError::MissingSyntax`] if no syntactic
    /// binding exists for the new platform's language.
    pub fn extend_platform(&mut self, binding: PlatformBinding) -> Result<(), SchemaError> {
        if self.binding_for(&binding.platform).is_some() {
            return Err(SchemaError::DuplicateBinding(
                binding.platform.id().to_owned(),
            ));
        }
        if self.syntax_for(binding.language()).is_none() {
            return Err(SchemaError::MissingSyntax {
                proxy: self.name.clone(),
                language: binding.language(),
            });
        }
        self.bindings.push(binding);
        Ok(())
    }

    /// Serializes the full descriptor.
    pub fn to_xml(&self) -> XmlNode {
        let mut root = XmlNode::new("proxy")
            .attr("name", &self.name)
            .attr("category", &self.category)
            .child(self.semantic.to_xml());
        for s in &self.syntactic {
            root = root.child(s.to_xml());
        }
        for b in &self.bindings {
            root = root.child(b.to_xml());
        }
        root
    }

    /// Deserializes a full descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Malformed`] for structural problems in any
    /// plane.
    pub fn from_xml(node: &XmlNode) -> Result<Self, SchemaError> {
        if node.name != "proxy" {
            return Err(SchemaError::Malformed(format!(
                "expected <proxy>, found <{}>",
                node.name
            )));
        }
        let name = node
            .attribute("name")
            .ok_or_else(|| SchemaError::Malformed("proxy missing name".into()))?;
        let category = node.attribute("category").unwrap_or("");
        let semantic_node = node
            .find("semanticPlane")
            .ok_or_else(|| SchemaError::Malformed("proxy missing semanticPlane".into()))?;
        let mut descriptor =
            ProxyDescriptor::new(name, category, SemanticPlane::from_xml(semantic_node)?);
        for s in node.find_all("syntacticPlane") {
            descriptor.syntactic.push(SyntacticBinding::from_xml(s)?);
        }
        for b in node.find_all("bindingPlane") {
            descriptor.bindings.push(PlatformBinding::from_xml(b)?);
        }
        Ok(descriptor)
    }

    /// Parses a descriptor from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Malformed`] for XML or structural
    /// problems.
    pub fn parse(text: &str) -> Result<Self, SchemaError> {
        let node = XmlNode::parse(text).map_err(|e| SchemaError::Malformed(format!("xml: {e}")))?;
        Self::from_xml(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::PropertySpec;
    use crate::semantic::MethodSpec;
    use crate::syntactic::MethodTypes;

    fn descriptor() -> ProxyDescriptor {
        ProxyDescriptor::new(
            "Location",
            "Telecom",
            SemanticPlane::new("Location")
                .method(MethodSpec::new("getLocation").returns("location")),
        )
        .syntax(
            SyntacticBinding::new(Language::Java)
                .method(MethodTypes::new("getLocation").returns("com.ibm.telecom.proxy.Location")),
        )
        .syntax(
            SyntacticBinding::new(Language::JavaScript)
                .method(MethodTypes::new("getLocation").returns("object")),
        )
        .binding(
            PlatformBinding::new(
                PlatformId::Android,
                "com.ibm.android.location.LocationProxy",
            )
            .property(PropertySpec::new("context", "object", "application context").required()),
        )
        .binding(PlatformBinding::new(
            PlatformId::AndroidWebView,
            "LocationProxyImpl.js",
        ))
    }

    #[test]
    fn lookups() {
        let d = descriptor();
        assert!(d.syntax_for(Language::Java).is_some());
        assert!(d.binding_for(&PlatformId::Android).is_some());
        assert!(d.binding_for(&PlatformId::NokiaS60).is_none());
        assert_eq!(d.platforms().len(), 2);
    }

    #[test]
    fn full_xml_round_trip() {
        let d = descriptor();
        let text = d.to_xml().render();
        assert_eq!(ProxyDescriptor::parse(&text).unwrap(), d);
    }

    #[test]
    fn extend_platform_adds_binding_only() {
        let mut d = descriptor();
        d.extend_platform(PlatformBinding::new(
            PlatformId::NokiaS60,
            "com.ibm.S60.location.LocationProxy",
        ))
        .unwrap();
        assert!(d.binding_for(&PlatformId::NokiaS60).is_some());
    }

    #[test]
    fn extend_rejects_duplicate_platform() {
        let mut d = descriptor();
        let err = d
            .extend_platform(PlatformBinding::new(PlatformId::Android, "Other"))
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateBinding(_)));
    }

    #[test]
    fn extend_requires_language_syntax() {
        let mut d = descriptor();
        d.syntactic.retain(|s| s.language != Language::Java);
        let err = d
            .extend_platform(PlatformBinding::new(
                PlatformId::Custom("iphone".into()),
                "IPhoneLocationProxy",
            ))
            .unwrap_err();
        assert!(matches!(err, SchemaError::MissingSyntax { .. }));
    }

    #[test]
    fn parse_rejects_missing_semantic_plane() {
        assert!(ProxyDescriptor::parse("<proxy name=\"X\"/>").is_err());
    }
}
