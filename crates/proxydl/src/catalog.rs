//! The standard proxy catalog.
//!
//! Descriptors for the proxies the paper implements (§4.1): Location,
//! SMS, Call and Http on Android and Android WebView; Location, SMS and
//! Http on Nokia S60 ("Call proxy could not be created in this case
//! because the core functionality was not exposed on the S60 platform").
//! Two more descriptors — Contacts and Calendar — cover the paper's
//! future-work interfaces (§7), which this reproduction implements as
//! extension features.

use crate::binding::{PlatformBinding, PlatformId, PropertySpec};
use crate::descriptor::ProxyDescriptor;
use crate::semantic::{MethodSpec, SemanticPlane};
use crate::syntactic::{Language, MethodTypes, SyntacticBinding};

const ANDROID_LOCATION_EXCEPTIONS: &[&str] = &[
    "java.lang.SecurityException",
    "java.lang.IllegalArgumentException",
    "android.os.RemoteException",
];

const S60_LOCATION_EXCEPTIONS: &[&str] = &[
    "javax.microedition.location.LocationException",
    "java.lang.SecurityException",
    "java.lang.IllegalArgumentException",
    "java.lang.NullPointerException",
];

fn android_common_properties() -> Vec<PropertySpec> {
    vec![PropertySpec::new("context", "object", "Android application context").required()]
}

fn s60_common_properties() -> Vec<PropertySpec> {
    vec![
        PropertySpec::new(
            "preferredResponseTime",
            "int",
            "Preferred max. response time required internally for polling of updates",
        )
        .default_value("-1"),
        PropertySpec::new("powerConsumption", "string", "Positioning power budget")
            .default_value("NoRequirement")
            .allowed(&["NoRequirement", "Low", "Medium", "High"]),
    ]
}

/// The resilience-layer knobs (§3.3 enrichment) every retry-capable
/// binding declares, consumed by the core crate's resilient decorators.
/// Deliberately without default values: generated configuration
/// snippets must only mention resilience when an application opts in.
fn resilience_properties() -> Vec<PropertySpec> {
    vec![
        PropertySpec::new(
            "retry.max_attempts",
            "int",
            "total attempts per call, including the first",
        ),
        PropertySpec::new(
            "retry.backoff_ms",
            "int",
            "base backoff before the second attempt; doubles per retry",
        ),
        PropertySpec::new(
            "retry.deadline_ms",
            "int",
            "per-call retry budget, virtual ms",
        ),
        PropertySpec::new(
            "retry.jitter_seed",
            "int",
            "seed for deterministic backoff jitter",
        ),
        PropertySpec::new(
            "circuit.threshold",
            "int",
            "consecutive failures opening the circuit breaker",
        ),
        PropertySpec::new(
            "circuit.cooldown_ms",
            "int",
            "open-circuit cooldown before a half-open probe, virtual ms",
        ),
    ]
}

/// Location additionally declares the configured-default fallback
/// position terminating the resilience fallback chain.
fn location_resilience_properties() -> Vec<PropertySpec> {
    let mut properties = resilience_properties();
    properties.push(PropertySpec::new(
        "fallback.latitude",
        "string",
        "default-position latitude, decimal degrees",
    ));
    properties.push(PropertySpec::new(
        "fallback.longitude",
        "string",
        "default-position longitude, decimal degrees",
    ));
    properties
}

/// The overload-protection knobs every retry-capable binding declares,
/// consumed by the core crate's overload decorators (bulkhead +
/// admission gate + deadline fail-fast). Like the resilience knobs,
/// deliberately without default values: generated configuration
/// snippets must only mention overload protection when an application
/// opts in.
fn overload_properties() -> Vec<PropertySpec> {
    vec![
        PropertySpec::new(
            "bulkhead.max_concurrency",
            "int",
            "concurrent in-flight calls the bulkhead admits per proxy",
        ),
        PropertySpec::new(
            "bulkhead.queue_depth",
            "int",
            "bounded wait-queue slots behind a saturated bulkhead",
        ),
        PropertySpec::new(
            "bulkhead.queue_wait_ms",
            "int",
            "virtual ms one queued wait costs before re-probing the bulkhead",
        ),
        PropertySpec::new(
            "shed.enabled",
            "boolean",
            "whether the adaptive admission gate sheds load",
        ),
        PropertySpec::new(
            "shed.target_ms",
            "int",
            "sojourn-latency target the AIMD admission loop converges on, virtual ms",
        ),
        PropertySpec::new(
            "shed.seed",
            "int",
            "seed for deterministic admission coin flips",
        ),
        PropertySpec::new(
            "deadline.default_ms",
            "int",
            "deadline budget opened per call when no ambient deadline is set, virtual ms",
        ),
    ]
}

/// Http additionally declares which request paths are droppable under
/// shed pressure (degraded to a synthetic 202 instead of an error).
fn http_overload_properties() -> Vec<PropertySpec> {
    let mut properties = overload_properties();
    properties.push(PropertySpec::new(
        "shed.droppable_path",
        "string",
        "URL fragment marking enrichment requests droppable under shed pressure",
    ));
    properties
}

fn with_properties(mut binding: PlatformBinding, properties: Vec<PropertySpec>) -> PlatformBinding {
    for p in properties {
        binding = binding.property(p);
    }
    binding
}

fn with_exceptions(mut binding: PlatformBinding, exceptions: &[&str]) -> PlatformBinding {
    for e in exceptions {
        binding = binding.exception(e);
    }
    binding
}

/// The Location proxy descriptor — `addProximityAlert` is the paper's
/// running example (§3.1 listings are reproduced in the planes here).
pub fn location() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("Location")
        .method(
            MethodSpec::new("addProximityAlert")
                .param("latitude", "region center latitude, degrees")
                .param("longitude", "region center longitude, degrees")
                .param("altitude", "region center altitude, metres")
                .param("radius", "region radius, metres")
                .param("timer", "registration lifetime, seconds (-1 = unlimited)")
                .param("proximityListener", "callback receiving enter/exit alerts"),
        )
        .method(MethodSpec::new("getLocation").returns("location"))
        .method(
            MethodSpec::new("removeProximityAlert")
                .param("proximityListener", "the callback registered earlier"),
        );

    let java = SyntacticBinding::new(Language::Java)
        .method(
            MethodTypes::new("addProximityAlert")
                .param("double")
                .param("double")
                .param("double")
                .param("float")
                .param("long")
                .param("com.ibm.telecom.proxy.ProximityListener")
                .callback("com.ibm.telecom.proxy.ProximityListener", "proximityEvent"),
        )
        .method(MethodTypes::new("getLocation").returns("com.ibm.telecom.proxy.Location"))
        .method(
            MethodTypes::new("removeProximityAlert")
                .param("com.ibm.telecom.proxy.ProximityListener"),
        );

    let javascript = SyntacticBinding::new(Language::JavaScript)
        .method(
            MethodTypes::new("addProximityAlert")
                .param("number")
                .param("number")
                .param("number")
                .param("number")
                .param("number")
                .param("function")
                .callback("function", ""),
        )
        .method(MethodTypes::new("getLocation").returns("object"))
        .method(MethodTypes::new("removeProximityAlert").param("function"));

    let android = with_exceptions(
        with_properties(
            PlatformBinding::new(
                PlatformId::Android,
                "com.ibm.proxies.android.location.LocationProxyImpl",
            ),
            android_common_properties(),
        ),
        ANDROID_LOCATION_EXCEPTIONS,
    )
    .property(
        PropertySpec::new("provider", "string", "location provider to use")
            .default_value("gps")
            .allowed(&["gps", "network"]),
    );

    let s60 = with_exceptions(
        with_properties(
            PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.location.LocationProxy"),
            s60_common_properties(),
        ),
        S60_LOCATION_EXCEPTIONS,
    )
    .property(
        PropertySpec::new(
            "verticalAccuracy",
            "int",
            "requested vertical accuracy, metres",
        )
        .default_value("50"),
    );

    let webview = PlatformBinding::new(
        PlatformId::AndroidWebView,
        "js/proxies/LocationProxyImpl.js",
    )
    .property(
        PropertySpec::new("provider", "string", "location provider to use")
            .default_value("gps")
            .allowed(&["gps", "network"]),
    )
    .property(
        PropertySpec::new("pollInterval", "int", "notification poll period, ms")
            .default_value("200"),
    );

    let decorated = |binding| {
        with_properties(
            with_properties(binding, location_resilience_properties()),
            overload_properties(),
        )
    };
    ProxyDescriptor::new("Location", "Telecom", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(decorated(android))
        .binding(decorated(s60))
        .binding(decorated(webview))
}

/// The SMS proxy descriptor.
pub fn sms() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("SMS").method(
        MethodSpec::new("sendTextMessage")
            .param("destination", "recipient address")
            .param("text", "message body")
            .param("deliveryListener", "callback receiving the delivery report")
            .returns("messageId"),
    );
    let java = SyntacticBinding::new(Language::Java).method(
        MethodTypes::new("sendTextMessage")
            .param("java.lang.String")
            .param("java.lang.String")
            .param("com.ibm.telecom.proxy.DeliveryListener")
            .returns("long")
            .callback("com.ibm.telecom.proxy.DeliveryListener", "deliveryEvent"),
    );
    let javascript = SyntacticBinding::new(Language::JavaScript).method(
        MethodTypes::new("sendTextMessage")
            .param("string")
            .param("string")
            .param("function")
            .returns("number")
            .callback("function", ""),
    );
    let android = with_exceptions(
        with_properties(
            PlatformBinding::new(
                PlatformId::Android,
                "com.ibm.proxies.android.sms.SmsProxyImpl",
            ),
            android_common_properties(),
        ),
        &[
            "java.lang.SecurityException",
            "java.lang.IllegalArgumentException",
        ],
    );
    let s60 = with_exceptions(
        PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.sms.SmsProxy"),
        &[
            "java.lang.SecurityException",
            "java.lang.IllegalArgumentException",
            "java.io.IOException",
        ],
    );
    let webview = PlatformBinding::new(PlatformId::AndroidWebView, "js/proxies/SmsProxyImpl.js")
        .property(
            PropertySpec::new("pollInterval", "int", "notification poll period, ms")
                .default_value("200"),
        );
    let decorated = |binding| {
        with_properties(
            with_properties(binding, resilience_properties()),
            overload_properties(),
        )
    };
    ProxyDescriptor::new("SMS", "Telecom", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(decorated(android))
        .binding(decorated(s60))
        .binding(decorated(webview))
}

/// The Call proxy descriptor — no S60 binding, per §4.1.
pub fn call() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("Call")
        .method(
            MethodSpec::new("makeACall")
                .param("number", "callee address")
                .returns("callId"),
        )
        .method(MethodSpec::new("endCall").param("callId", "the call to terminate"));
    let java = SyntacticBinding::new(Language::Java)
        .method(
            MethodTypes::new("makeACall")
                .param("java.lang.String")
                .returns("long"),
        )
        .method(MethodTypes::new("endCall").param("long"));
    let javascript = SyntacticBinding::new(Language::JavaScript)
        .method(
            MethodTypes::new("makeACall")
                .param("string")
                .returns("number"),
        )
        .method(MethodTypes::new("endCall").param("number"));
    let android = with_exceptions(
        with_properties(
            PlatformBinding::new(
                PlatformId::Android,
                "com.ibm.proxies.android.call.CallProxyImpl",
            ),
            android_common_properties(),
        ),
        &[
            "java.lang.SecurityException",
            "java.lang.IllegalArgumentException",
        ],
    )
    .property(
        PropertySpec::new(
            "retries",
            "int",
            "redial attempts when the callee is unreachable",
        )
        .default_value("0"),
    );
    let webview = PlatformBinding::new(PlatformId::AndroidWebView, "js/proxies/CallProxyImpl.js");
    let decorated = |binding| {
        with_properties(
            with_properties(binding, resilience_properties()),
            overload_properties(),
        )
    };
    ProxyDescriptor::new("Call", "Telecom", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(decorated(android))
        .binding(decorated(webview))
}

/// The Http proxy descriptor.
pub fn http() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("Http").method(
        MethodSpec::new("request")
            .param("method", "HTTP method")
            .param("url", "target URL")
            .param("body", "request entity (may be empty)")
            .returns("httpResponse"),
    );
    let mut method_spec = semantic.methods[0].clone();
    method_spec.params[0].allowed_values = vec![
        "GET".into(),
        "POST".into(),
        "PUT".into(),
        "DELETE".into(),
        "HEAD".into(),
    ];
    let semantic = SemanticPlane {
        interface: semantic.interface,
        methods: vec![method_spec],
    };
    let java = SyntacticBinding::new(Language::Java).method(
        MethodTypes::new("request")
            .param("java.lang.String")
            .param("java.lang.String")
            .param("byte[]")
            .returns("com.ibm.telecom.proxy.HttpResponse"),
    );
    let javascript = SyntacticBinding::new(Language::JavaScript).method(
        MethodTypes::new("request")
            .param("string")
            .param("string")
            .param("string")
            .returns("object"),
    );
    let android = with_exceptions(
        with_properties(
            PlatformBinding::new(
                PlatformId::Android,
                "com.ibm.proxies.android.http.HttpProxyImpl",
            ),
            android_common_properties(),
        ),
        &["java.lang.SecurityException", "java.io.IOException"],
    );
    let s60 = with_exceptions(
        PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.http.HttpProxy"),
        &[
            "java.lang.SecurityException",
            "java.io.IOException",
            "java.lang.IllegalArgumentException",
        ],
    );
    let webview = PlatformBinding::new(PlatformId::AndroidWebView, "js/proxies/HttpProxyImpl.js");
    let decorated = |binding| {
        with_properties(
            with_properties(binding, resilience_properties()),
            http_overload_properties(),
        )
    };
    ProxyDescriptor::new("Http", "Connectivity", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(decorated(android))
        .binding(decorated(s60))
        .binding(decorated(webview))
}

/// The Contacts proxy descriptor (paper future work, §7).
pub fn contacts() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("Contacts").method(
        MethodSpec::new("findContacts")
            .param("query", "case-insensitive name fragment")
            .returns("contactList"),
    );
    let java = SyntacticBinding::new(Language::Java).method(
        MethodTypes::new("findContacts")
            .param("java.lang.String")
            .returns("com.ibm.telecom.proxy.Contact[]"),
    );
    let javascript = SyntacticBinding::new(Language::JavaScript).method(
        MethodTypes::new("findContacts")
            .param("string")
            .returns("object"),
    );
    let android = with_properties(
        PlatformBinding::new(
            PlatformId::Android,
            "com.ibm.proxies.android.pim.ContactsProxyImpl",
        ),
        android_common_properties(),
    )
    .exception("java.lang.SecurityException");
    let s60 = PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.pim.ContactsProxy")
        .exception("java.lang.SecurityException");
    ProxyDescriptor::new("Contacts", "PIM", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(android)
        .binding(s60)
}

/// The Calendar proxy descriptor (paper future work, §7).
pub fn calendar() -> ProxyDescriptor {
    let semantic = SemanticPlane::new("Calendar").method(
        MethodSpec::new("entriesBetween")
            .param("from", "interval start, virtual ms")
            .param("to", "interval end, virtual ms")
            .returns("entryList"),
    );
    let java = SyntacticBinding::new(Language::Java).method(
        MethodTypes::new("entriesBetween")
            .param("long")
            .param("long")
            .returns("com.ibm.telecom.proxy.CalendarEntry[]"),
    );
    let javascript = SyntacticBinding::new(Language::JavaScript).method(
        MethodTypes::new("entriesBetween")
            .param("number")
            .param("number")
            .returns("object"),
    );
    let android = with_properties(
        PlatformBinding::new(
            PlatformId::Android,
            "com.ibm.proxies.android.pim.CalendarProxyImpl",
        ),
        android_common_properties(),
    )
    .exception("java.lang.SecurityException");
    let s60 = PlatformBinding::new(PlatformId::NokiaS60, "com.ibm.S60.pim.CalendarProxy")
        .exception("java.lang.SecurityException");
    ProxyDescriptor::new("Calendar", "PIM", semantic)
        .syntax(java)
        .syntax(javascript)
        .binding(android)
        .binding(s60)
}

/// The full standard catalog, in drawer order.
pub fn standard_catalog() -> Vec<ProxyDescriptor> {
    vec![location(), sms(), call(), http(), contacts(), calendar()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_descriptor;

    #[test]
    fn every_catalog_descriptor_validates() {
        for descriptor in standard_catalog() {
            let errors = validate_descriptor(&descriptor);
            assert!(
                errors.is_empty(),
                "descriptor {} has schema errors: {errors:?}",
                descriptor.name
            );
        }
    }

    #[test]
    fn catalog_round_trips_through_xml() {
        for descriptor in standard_catalog() {
            let text = descriptor.to_xml().render();
            let back = ProxyDescriptor::parse(&text).unwrap();
            assert_eq!(back, descriptor, "descriptor {}", descriptor.name);
        }
    }

    #[test]
    fn s60_has_no_call_binding() {
        assert!(call().binding_for(&PlatformId::NokiaS60).is_none());
        assert!(call().binding_for(&PlatformId::Android).is_some());
        assert!(call().binding_for(&PlatformId::AndroidWebView).is_some());
    }

    #[test]
    fn paper_platform_coverage() {
        // §4.1: four proxies on Android and WebView, three on S60.
        let on = |p: &PlatformId| {
            standard_catalog()
                .iter()
                .filter(|d| ["Location", "SMS", "Call", "Http"].contains(&d.name.as_str()))
                .filter(|d| d.binding_for(p).is_some())
                .count()
        };
        assert_eq!(on(&PlatformId::Android), 4);
        assert_eq!(on(&PlatformId::AndroidWebView), 4);
        assert_eq!(on(&PlatformId::NokiaS60), 3);
    }

    #[test]
    fn proximity_alert_semantics_match_paper_listing() {
        let d = location();
        let m = d.semantic.find_method("addProximityAlert").unwrap();
        let names: Vec<&str> = m.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "latitude",
                "longitude",
                "altitude",
                "radius",
                "timer",
                "proximityListener"
            ]
        );
        let java = d.syntax_for(Language::Java).unwrap();
        let types = java.find_method("addProximityAlert").unwrap();
        assert_eq!(types.param_types[0], "double");
        assert_eq!(types.param_types[3], "float");
        assert_eq!(types.param_types[4], "long");
        assert_eq!(
            types.callback.as_ref().unwrap().type_name,
            "com.ibm.telecom.proxy.ProximityListener"
        );
    }

    #[test]
    fn s60_binding_carries_paper_properties() {
        let d = location();
        let b = d.binding_for(&PlatformId::NokiaS60).unwrap();
        assert!(b.find_property("preferredResponseTime").is_some());
        assert!(b.find_property("powerConsumption").is_some());
        assert!(b.find_property("verticalAccuracy").is_some());
        assert!(b
            .exceptions
            .contains(&"javax.microedition.location.LocationException".to_owned()));
    }

    #[test]
    fn resilient_interfaces_declare_the_resilience_property_plane() {
        for descriptor in [location(), sms(), call(), http()] {
            for binding in &descriptor.bindings {
                for key in [
                    "retry.max_attempts",
                    "retry.backoff_ms",
                    "retry.deadline_ms",
                    "retry.jitter_seed",
                    "circuit.threshold",
                    "circuit.cooldown_ms",
                    "bulkhead.max_concurrency",
                    "bulkhead.queue_depth",
                    "bulkhead.queue_wait_ms",
                    "shed.enabled",
                    "shed.target_ms",
                    "shed.seed",
                    "deadline.default_ms",
                ] {
                    let spec = binding.find_property(key).unwrap_or_else(|| {
                        panic!("{} {:?} lacks {key}", descriptor.name, binding.platform)
                    });
                    assert!(
                        spec.default_value.is_none(),
                        "{key} must not have a default: codegen would emit it unconditionally"
                    );
                }
            }
        }
        // The fallback position is a Location-only concept.
        let location = location();
        for binding in &location.bindings {
            assert!(binding.find_property("fallback.latitude").is_some());
            assert!(binding.find_property("fallback.longitude").is_some());
        }
        assert!(http().bindings[0]
            .find_property("fallback.latitude")
            .is_none());
        // The droppable-path marker is an Http-only concept.
        for binding in &http().bindings {
            assert!(binding.find_property("shed.droppable_path").is_some());
        }
        assert!(location.bindings[0]
            .find_property("shed.droppable_path")
            .is_none());
    }

    #[test]
    fn android_binding_requires_context_property() {
        let d = location();
        let b = d.binding_for(&PlatformId::Android).unwrap();
        assert!(b.find_property("context").unwrap().required);
        assert!(b.find_property("provider").unwrap().accepts("network"));
    }
}
