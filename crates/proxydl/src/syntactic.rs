//! The syntactic plane.
//!
//! "In the second plane, called the syntactic plane, we bind the
//! interface structure with concrete data types required for different
//! programming languages." (paper §3.1) One binding exists per language
//! — the paper ships Java and JavaScript; "while in Java we have a
//! callback 'object' that receives notifications, in JavaScript (or C)
//! we can specify a function (or a function pointer)".

use std::fmt;

use crate::schema::SchemaError;
use crate::xml::XmlNode;

/// A programming language the proxy is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Java (Android and S60/J2ME).
    Java,
    /// JavaScript (Android WebView).
    JavaScript,
}

impl Language {
    /// The identifier used in XML documents.
    pub fn id(&self) -> &'static str {
        match self {
            Language::Java => "java",
            Language::JavaScript => "javascript",
        }
    }

    /// Parses the XML identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        match id {
            "java" => Some(Language::Java),
            "javascript" => Some(Language::JavaScript),
            _ => None,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A callback binding: how asynchronous results are typed in this
/// language (object-with-method in Java, plain function in JavaScript).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallbackSpec {
    /// Callback type (`com.ibm.telecom.proxy.ProximityListener` in Java,
    /// `function` in JavaScript).
    pub type_name: String,
    /// The method invoked on the callback (`proximityEvent`); empty for
    /// bare functions.
    pub method: String,
}

/// Type bindings for one semantic method in one language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodTypes {
    /// Semantic method name this binds.
    pub name: String,
    /// Concrete parameter types, in dimension order. Callback parameters
    /// use the callback's type name.
    pub param_types: Vec<String>,
    /// Concrete return type, if any.
    pub return_type: Option<String>,
    /// Callback structure, when one of the parameters is a callback.
    pub callback: Option<CallbackSpec>,
}

impl MethodTypes {
    /// Creates a binding with no parameters.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            param_types: Vec::new(),
            return_type: None,
            callback: None,
        }
    }

    /// Appends a parameter type (builder style).
    pub fn param(mut self, type_name: &str) -> Self {
        self.param_types.push(type_name.to_owned());
        self
    }

    /// Sets the return type (builder style).
    pub fn returns(mut self, type_name: &str) -> Self {
        self.return_type = Some(type_name.to_owned());
        self
    }

    /// Sets the callback spec (builder style).
    pub fn callback(mut self, type_name: &str, method: &str) -> Self {
        self.callback = Some(CallbackSpec {
            type_name: type_name.to_owned(),
            method: method.to_owned(),
        });
        self
    }
}

/// The syntactic plane for one language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntacticBinding {
    /// The language.
    pub language: Language,
    /// Per-method type bindings.
    pub methods: Vec<MethodTypes>,
}

impl SyntacticBinding {
    /// Creates an empty binding for `language`.
    pub fn new(language: Language) -> Self {
        Self {
            language,
            methods: Vec::new(),
        }
    }

    /// Adds a method binding (builder style).
    pub fn method(mut self, method: MethodTypes) -> Self {
        self.methods.push(method);
        self
    }

    /// Looks up the binding for a semantic method.
    pub fn find_method(&self, name: &str) -> Option<&MethodTypes> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Serializes to the syntactic-plane XML form.
    pub fn to_xml(&self) -> XmlNode {
        let mut root = XmlNode::new("syntacticPlane").attr("language", self.language.id());
        for method in &self.methods {
            let mut m = XmlNode::new("method").attr("name", &method.name);
            for t in &method.param_types {
                m = m.child(XmlNode::new("paramType").text(t));
            }
            if let Some(r) = &method.return_type {
                m = m.child(XmlNode::new("returnType").text(r));
            }
            if let Some(cb) = &method.callback {
                m = m.child(
                    XmlNode::new("callback")
                        .attr("type", &cb.type_name)
                        .attr("method", &cb.method),
                );
            }
            root = root.child(m);
        }
        root
    }

    /// Deserializes from the syntactic-plane XML form.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Malformed`] for structural problems,
    /// including unknown languages.
    pub fn from_xml(node: &XmlNode) -> Result<Self, SchemaError> {
        if node.name != "syntacticPlane" {
            return Err(SchemaError::Malformed(format!(
                "expected <syntacticPlane>, found <{}>",
                node.name
            )));
        }
        let language = node
            .attribute("language")
            .and_then(Language::from_id)
            .ok_or_else(|| SchemaError::Malformed("bad or missing language".into()))?;
        let mut binding = SyntacticBinding::new(language);
        for m in node.find_all("method") {
            let name = m
                .attribute("name")
                .ok_or_else(|| SchemaError::Malformed("method missing name".into()))?;
            let mut method = MethodTypes::new(name);
            for t in m.find_all("paramType") {
                method.param_types.push(t.text.clone());
            }
            method.return_type = m.find("returnType").map(|r| r.text.clone());
            if let Some(cb) = m.find("callback") {
                method.callback = Some(CallbackSpec {
                    type_name: cb.attribute("type").unwrap_or_default().to_owned(),
                    method: cb.attribute("method").unwrap_or_default().to_owned(),
                });
            }
            binding.methods.push(method);
        }
        Ok(binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn java_binding() -> SyntacticBinding {
        // The paper's Java listing for addProximityAlert.
        SyntacticBinding::new(Language::Java).method(
            MethodTypes::new("addProximityAlert")
                .param("double")
                .param("double")
                .param("double")
                .param("float")
                .param("long")
                .param("com.ibm.telecom.proxy.ProximityListener")
                .callback("com.ibm.telecom.proxy.ProximityListener", "proximityEvent"),
        )
    }

    #[test]
    fn paper_java_types_reproduced() {
        let binding = java_binding();
        let m = binding.find_method("addProximityAlert").unwrap();
        assert_eq!(
            m.param_types,
            vec![
                "double",
                "double",
                "double",
                "float",
                "long",
                "com.ibm.telecom.proxy.ProximityListener"
            ]
        );
        assert_eq!(m.callback.as_ref().unwrap().method, "proximityEvent");
    }

    #[test]
    fn javascript_uses_functions_not_objects() {
        let binding = SyntacticBinding::new(Language::JavaScript).method(
            MethodTypes::new("addProximityAlert")
                .param("number")
                .param("number")
                .param("number")
                .param("number")
                .param("number")
                .param("function")
                .callback("function", ""),
        );
        let cb = binding
            .find_method("addProximityAlert")
            .unwrap()
            .callback
            .as_ref()
            .unwrap();
        assert_eq!(cb.type_name, "function");
        assert!(cb.method.is_empty());
    }

    #[test]
    fn xml_round_trip() {
        let binding = java_binding();
        let text = binding.to_xml().render();
        let reparsed = crate::xml::XmlNode::parse(&text).unwrap();
        assert_eq!(SyntacticBinding::from_xml(&reparsed).unwrap(), binding);
    }

    #[test]
    fn language_ids_round_trip() {
        for lang in [Language::Java, Language::JavaScript] {
            assert_eq!(Language::from_id(lang.id()), Some(lang));
        }
        assert_eq!(Language::from_id("cobol"), None);
    }

    #[test]
    fn from_xml_rejects_unknown_language() {
        let node = XmlNode::new("syntacticPlane").attr("language", "c");
        assert!(SyntacticBinding::from_xml(&node).is_err());
    }
}
