#![warn(missing_docs)]
//! Plane-aware telemetry for the MobiVine reproduction.
//!
//! The paper's quantitative argument (Fig. 10) is about what happens
//! *inside* the proxy layers; this crate makes those layers visible as
//! first-class data instead of ad-hoc accumulation:
//!
//! * [`span`] — span tracing on **simulated (virtual) time**. A
//!   [`Tracer`] hands out [`ActiveSpan`]s carrying a
//!   [`TraceId`]/[`SpanId`] pair and a parent link; an ambient,
//!   thread-local span stack lets lower layers (resilience engine,
//!   platform middleware, device substrate) attach child spans without
//!   any API threading. Each span is tagged with the M-Proxy [`Plane`]
//!   it instruments (app → proxy → resilience → binding → bridge →
//!   platform → device).
//! * [`context`] — the [`TraceContext`] that crosses process-like
//!   boundaries (the WebView JavaScript bridge) as a W3C-style
//!   `traceparent` string, proving propagation is a wire format and not
//!   shared memory.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   log-bucketed latency histograms keyed by sorted label sets (the
//!   canonical key being `(proxy, method, platform)`), striped into
//!   lock shards keyed by interned symbols.
//! * [`intern`] — process-wide symbol tables turning metric names and
//!   label sets into copyable `u32` keys, so the recording path never
//!   hashes or compares strings.
//! * [`recorder`] — the flight recorder's tail-based promotion: a
//!   [`PromotionPolicy`] classifies every closing trace root (error,
//!   blown deadline, latency threshold) and promotes interesting trace
//!   trees out of the overwrite-oldest rings into a bounded
//!   [`IncidentStore`] before they can be overwritten.
//! * [`slo`] — declarative availability / latency-quantile objectives
//!   per `(proxy, method, platform)`, evaluated on virtual-time
//!   multi-window burn rates (fast 5m / slow 1h) by an [`SloEngine`],
//!   with a JSON report format linking breaches to promoted traces.
//! * [`export`] — Chrome trace-event JSON for span trees (load the file
//!   in `chrome://tracing` / Perfetto) and Prometheus-style text
//!   exposition for the registry — including OpenMetrics exemplars on
//!   histogram buckets — plus validators that round-trip the exported
//!   documents.
//!
//! The crate deliberately has **no dependency on the device substrate**:
//! every timestamp is passed in as a `u64` of virtual milliseconds, so
//! any clock (simulated or wall) can drive it.

pub mod context;
pub mod export;
pub mod intern;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod span;

pub use context::{TraceContext, TraceparentBuf};
pub use intern::{LabelKey, NameKey};
pub use metrics::{Counter, Gauge, Histogram, Labels, MetricsRegistry};
pub use recorder::{
    IncidentStore, PromotedTrace, PromotionPolicy, PromotionReason, Recorder, RecorderCounters,
    DEFAULT_INCIDENT_CAPACITY,
};
pub use slo::{SloEngine, SloObjective, SloRecorder, SloReport, SloStatus, SloTarget};
pub use span::{
    ambient, ActiveSpan, AttrList, Plane, SpanEvent, SpanId, SpanName, SpanRecord, TraceId, Tracer,
    DEFAULT_SPAN_RETENTION,
};
