#![warn(missing_docs)]
//! Plane-aware telemetry for the MobiVine reproduction.
//!
//! The paper's quantitative argument (Fig. 10) is about what happens
//! *inside* the proxy layers; this crate makes those layers visible as
//! first-class data instead of ad-hoc accumulation:
//!
//! * [`span`] — span tracing on **simulated (virtual) time**. A
//!   [`Tracer`] hands out [`ActiveSpan`]s carrying a
//!   [`TraceId`]/[`SpanId`] pair and a parent link; an ambient,
//!   thread-local span stack lets lower layers (resilience engine,
//!   platform middleware, device substrate) attach child spans without
//!   any API threading. Each span is tagged with the M-Proxy [`Plane`]
//!   it instruments (app → proxy → resilience → binding → bridge →
//!   platform → device).
//! * [`context`] — the [`TraceContext`] that crosses process-like
//!   boundaries (the WebView JavaScript bridge) as a W3C-style
//!   `traceparent` string, proving propagation is a wire format and not
//!   shared memory.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   log-bucketed latency histograms keyed by sorted label sets (the
//!   canonical key being `(proxy, method, platform)`), striped into
//!   lock shards keyed by interned symbols.
//! * [`intern`] — process-wide symbol tables turning metric names and
//!   label sets into copyable `u32` keys, so the recording path never
//!   hashes or compares strings.
//! * [`export`] — Chrome trace-event JSON for span trees (load the file
//!   in `chrome://tracing` / Perfetto) and Prometheus-style text
//!   exposition for the registry, plus validators that round-trip the
//!   exported JSON.
//!
//! The crate deliberately has **no dependency on the device substrate**:
//! every timestamp is passed in as a `u64` of virtual milliseconds, so
//! any clock (simulated or wall) can drive it.

pub mod context;
pub mod export;
pub mod intern;
pub mod metrics;
pub mod span;

pub use context::TraceContext;
pub use intern::{LabelKey, NameKey};
pub use metrics::{Counter, Gauge, Histogram, Labels, MetricsRegistry};
pub use span::{
    ambient, ActiveSpan, AttrList, Plane, SpanEvent, SpanId, SpanName, SpanRecord, TraceId, Tracer,
    DEFAULT_SPAN_RETENTION,
};
