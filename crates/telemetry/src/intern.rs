//! Process-wide interners for metric names and label sets.
//!
//! The hot recording path never wants to touch strings: a metric is
//! identified by a [`NameKey`] and a [`LabelKey`] — small, copyable
//! symbols minted once per distinct string/label-set and stable for the
//! life of the process. The string tables behind them are only read
//! back at export/scrape time ([`resolve_name`], [`resolve_labels`]),
//! so registries can key their shards by `(NameKey, LabelKey)` and
//! compare/hash two machine words instead of heap data.
//!
//! Interning is global (one table per process, shared by every
//! [`crate::MetricsRegistry`]): the vocabulary is tiny — metric names
//! and `(proxy, method, platform)` triples — so sharing maximises
//! symbol reuse across the thousands of per-device registries a fleet
//! run creates, and a symbol minted through one registry stays valid in
//! every other.

use std::collections::HashMap;
use std::sync::LazyLock;

use parking_lot::RwLock;

use crate::metrics::Labels;

/// Interned metric name. Copyable, two words of lookup on the cold
/// path, zero strings on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameKey(u32);

impl NameKey {
    /// The raw table index, for shard selection.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Interned canonical label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelKey(u32);

impl LabelKey {
    /// The raw table index, for shard selection.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A symbol table: values are append-only, symbols are indices.
struct Table<T> {
    index: HashMap<T, u32>,
    values: Vec<T>,
}

impl<T: Clone + Eq + std::hash::Hash> Table<T> {
    fn new() -> Self {
        Self {
            index: HashMap::new(),
            values: Vec::new(),
        }
    }

    fn intern(&mut self, value: &T) -> u32 {
        if let Some(&symbol) = self.index.get(value) {
            return symbol;
        }
        // Infallible in practice: each symbol is a *distinct* metric
        // name or label set, and 2^32 of those would exhaust memory
        // long before this conversion could fail. Panicking (rather
        // than silently aliasing symbols) is the correct response to a
        // label-cardinality explosion of that magnitude.
        let symbol = u32::try_from(self.values.len()).expect("interner overflow");
        self.values.push(value.clone());
        self.index.insert(value.clone(), symbol);
        symbol
    }
}

static NAMES: LazyLock<RwLock<Table<String>>> = LazyLock::new(|| RwLock::new(Table::new()));
static LABEL_SETS: LazyLock<RwLock<Table<Labels>>> = LazyLock::new(|| RwLock::new(Table::new()));

/// Interns a metric name, minting a symbol on first sight. The fast
/// path (already interned) takes a read lock and allocates nothing.
pub fn intern_name(name: &str) -> NameKey {
    if let Some(&symbol) = NAMES.read().index.get(name) {
        return NameKey(symbol);
    }
    NameKey(NAMES.write().intern(&name.to_owned()))
}

/// Looks a name up without interning it; `None` if never seen.
pub fn lookup_name(name: &str) -> Option<NameKey> {
    NAMES.read().index.get(name).copied().map(NameKey)
}

/// The string behind a [`NameKey`].
///
/// # Panics
///
/// Panics on a key that was never minted by [`intern_name`] — keys are
/// process-global and never freed, so this is a programming error.
pub fn resolve_name(key: NameKey) -> String {
    NAMES.read().values[key.0 as usize].clone()
}

/// Interns a canonical label set. The fast path (already interned)
/// takes a read lock and allocates nothing.
pub fn intern_labels(labels: &Labels) -> LabelKey {
    if let Some(&symbol) = LABEL_SETS.read().index.get(labels) {
        return LabelKey(symbol);
    }
    LabelKey(LABEL_SETS.write().intern(labels))
}

/// Looks a label set up without interning it; `None` if never seen.
pub fn lookup_labels(labels: &Labels) -> Option<LabelKey> {
    LABEL_SETS.read().index.get(labels).copied().map(LabelKey)
}

/// The label set behind a [`LabelKey`].
///
/// # Panics
///
/// Panics on a key that was never minted by [`intern_labels`].
pub fn resolve_labels(key: LabelKey) -> Labels {
    LABEL_SETS.read().values[key.0 as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves_back() {
        let a = intern_name("proxy_calls_total");
        let b = intern_name("proxy_calls_total");
        assert_eq!(a, b);
        assert_eq!(resolve_name(a), "proxy_calls_total");
        assert_eq!(lookup_name("proxy_calls_total"), Some(a));

        let labels = Labels::call("Location", "getLocation", "android");
        let k1 = intern_labels(&labels);
        let k2 = intern_labels(&Labels::call("Location", "getLocation", "android"));
        assert_eq!(k1, k2);
        assert_eq!(resolve_labels(k1), labels);
        assert_eq!(lookup_labels(&labels), Some(k1));
    }

    #[test]
    fn distinct_values_get_distinct_symbols() {
        let a = intern_name("intern_test_metric_a");
        let b = intern_name("intern_test_metric_b");
        assert_ne!(a, b);
        let la = intern_labels(&Labels::new(&[("intern_test", "a")]));
        let lb = intern_labels(&Labels::new(&[("intern_test", "b")]));
        assert_ne!(la, lb);
        assert_eq!(lookup_labels(&Labels::new(&[("intern_test", "c")])), None);
    }
}
