//! Exporters: Chrome trace-event JSON for span trees, plus a validator
//! that round-trips the exported document.
//!
//! The Chrome trace-event format (the "JSON Array with metadata"
//! object form) is what `chrome://tracing` and Perfetto load directly:
//! complete (`"ph":"X"`) events carry `ts`/`dur` in **microseconds**,
//! instant (`"ph":"i"`) events mark span events. Virtual milliseconds
//! are scaled by 1000, so one simulated millisecond reads as one
//! millisecond on the timeline.
//!
//! Prometheus text exposition lives on
//! [`crate::metrics::MetricsRegistry::render_prometheus`]; this module
//! owns the span-tree side.

use serde_json::Value;

use crate::span::{SpanRecord, TraceId};

fn hex_id(value: u64, width: usize) -> String {
    format!("{value:0width$x}")
}

fn span_args(span: &SpanRecord) -> Value {
    let mut fields = vec![
        (
            "trace_id".to_owned(),
            Value::String(hex_id(span.trace_id.0, 32)),
        ),
        (
            "span_id".to_owned(),
            Value::String(hex_id(span.span_id.0, 16)),
        ),
        ("plane".to_owned(), Value::String(span.plane.to_string())),
    ];
    if let Some(parent) = span.parent_id {
        fields.push(("parent_id".to_owned(), Value::String(hex_id(parent.0, 16))));
    }
    for (key, value) in span.attrs.iter() {
        fields.push((format!("attr.{key}"), Value::String(value.to_owned())));
    }
    Value::Object(fields)
}

/// Renders finished spans as a Chrome trace-event JSON document.
///
/// Every span becomes one complete (`"X"`) event whose `args` carry the
/// span/parent ids (hex) and attributes; every [`span
/// event`](crate::span::SpanEvent) becomes a thread-scoped instant
/// (`"i"`) event.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events = Vec::new();
    for span in spans {
        events.push(Value::Object(vec![
            ("name".to_owned(), Value::String(span.name.to_string())),
            ("cat".to_owned(), Value::String(span.plane.to_string())),
            ("ph".to_owned(), Value::String("X".to_owned())),
            (
                "ts".to_owned(),
                Value::Number(span.start_ms as f64 * 1000.0),
            ),
            (
                "dur".to_owned(),
                Value::Number((span.end_ms - span.start_ms) as f64 * 1000.0),
            ),
            ("pid".to_owned(), Value::Number(1.0)),
            ("tid".to_owned(), Value::Number(span.trace_id.0 as f64)),
            ("args".to_owned(), span_args(span)),
        ]));
        for event in &span.events {
            events.push(Value::Object(vec![
                ("name".to_owned(), Value::String(event.name.clone())),
                ("cat".to_owned(), Value::String(span.plane.to_string())),
                ("ph".to_owned(), Value::String("i".to_owned())),
                ("ts".to_owned(), Value::Number(event.at_ms as f64 * 1000.0)),
                ("pid".to_owned(), Value::Number(1.0)),
                ("tid".to_owned(), Value::Number(span.trace_id.0 as f64)),
                ("s".to_owned(), Value::String("t".to_owned())),
                (
                    "args".to_owned(),
                    Value::Object(vec![(
                        "span_id".to_owned(),
                        Value::String(hex_id(span.span_id.0, 16)),
                    )]),
                ),
            ]));
        }
    }
    Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(events)),
        ("displayTimeUnit".to_owned(), Value::String("ms".to_owned())),
    ])
    .to_string()
}

/// What [`validate_chrome_trace`] found in a valid document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events (complete + instant).
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Distinct trace ids.
    pub traces: usize,
}

fn field_str<'a>(event: &'a Value, key: &str) -> Result<&'a str, String> {
    match event.get_field(key) {
        Some(Value::String(s)) => Ok(s),
        other => Err(format!("field {key} is {other:?}, expected a string")),
    }
}

fn field_num(event: &Value, key: &str) -> Result<f64, String> {
    match event.get_field(key) {
        Some(Value::Number(n)) => Ok(*n),
        other => Err(format!("field {key} is {other:?}, expected a number")),
    }
}

/// Parses a Chrome trace-event JSON document back and checks its
/// structure: a `traceEvents` array of well-formed `X`/`i` events with
/// non-negative microsecond timestamps, and — per trace — every
/// `parent_id` resolving to a span in the same trace that started no
/// later than its child.
///
/// # Errors
///
/// A description of the first violation (including JSON parse errors).
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = match doc.get_field("traceEvents") {
        Some(Value::Array(events)) => events,
        other => return Err(format!("traceEvents is {other:?}, expected an array")),
    };
    // (trace hex, span hex) -> start ts.
    let mut span_starts = std::collections::HashMap::new();
    let mut parents = Vec::new();
    let mut traces = std::collections::BTreeSet::new();
    let mut spans = 0usize;
    for event in events {
        let name = field_str(event, "name")?;
        let ph = field_str(event, "ph")?;
        let ts = field_num(event, "ts")?;
        if ts < 0.0 {
            return Err(format!("event {name} has negative ts {ts}"));
        }
        match ph {
            "X" => {
                spans += 1;
                let dur = field_num(event, "dur")?;
                if dur < 0.0 {
                    return Err(format!("span {name} has negative dur {dur}"));
                }
                let args = event
                    .get_field("args")
                    .ok_or_else(|| format!("span {name} has no args"))?;
                let trace = field_str(args, "trace_id")?.to_owned();
                let span = field_str(args, "span_id")?.to_owned();
                traces.insert(trace.clone());
                if let Some(Value::String(parent)) = args.get_field("parent_id") {
                    parents.push((name.to_owned(), trace.clone(), parent.clone(), ts));
                }
                if span_starts.insert((trace, span), ts).is_some() {
                    return Err(format!("span {name} has a duplicate span_id"));
                }
            }
            "i" => {}
            other => return Err(format!("event {name} has unknown phase {other:?}")),
        }
    }
    for (name, trace, parent, ts) in parents {
        match span_starts.get(&(trace, parent.clone())) {
            None => return Err(format!("span {name} has unresolved parent {parent}")),
            Some(parent_ts) if ts < *parent_ts => {
                return Err(format!(
                    "span {name} starts at {ts} before its parent at {parent_ts}"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        spans,
        traces: traces.len(),
    })
}

/// Groups spans by trace id, preserving order within each trace.
pub fn group_by_trace(spans: &[SpanRecord]) -> Vec<(TraceId, Vec<SpanRecord>)> {
    let mut grouped: Vec<(TraceId, Vec<SpanRecord>)> = Vec::new();
    for span in spans {
        match grouped.iter_mut().find(|(id, _)| *id == span.trace_id) {
            Some((_, bucket)) => bucket.push(span.clone()),
            None => grouped.push((span.trace_id, vec![span.clone()])),
        }
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ambient, Plane, Tracer};

    fn sample_spans() -> Vec<SpanRecord> {
        let tracer = Tracer::new();
        let mut root = tracer.root("app:patrol", Plane::App, 0);
        root.attr("agent", "a-1");
        {
            let mut child = ambient::child("proxy:Location.getLocation", Plane::Proxy, 5).unwrap();
            child.event("retry", 7);
            child.end(20);
        }
        root.end(30);
        tracer.take_finished()
    }

    #[test]
    fn export_round_trips_through_validation() {
        let spans = sample_spans();
        let json = chrome_trace_json(&spans);
        let summary = validate_chrome_trace(&json).expect("valid document");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.events, 3, "two spans plus one instant event");
        assert_eq!(summary.traces, 1);
    }

    #[test]
    fn validation_rejects_broken_parent_links() {
        let mut spans = sample_spans();
        // Drop the root: the child's parent can no longer resolve.
        spans.retain(|s| s.parent_id.is_some());
        let json = chrome_trace_json(&spans);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("unresolved parent"), "{err}");
    }

    #[test]
    fn validation_rejects_non_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn grouping_separates_traces() {
        let tracer = Tracer::new();
        tracer.root("a", Plane::App, 0).end(1);
        tracer.root("b", Plane::App, 0).end(1);
        let grouped = group_by_trace(&tracer.take_finished());
        assert_eq!(grouped.len(), 2);
        assert!(grouped.iter().all(|(_, spans)| spans.len() == 1));
    }
}
