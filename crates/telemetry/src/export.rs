//! Exporters: Chrome trace-event JSON for span trees, plus a validator
//! that round-trips the exported document.
//!
//! The Chrome trace-event format (the "JSON Array with metadata"
//! object form) is what `chrome://tracing` and Perfetto load directly:
//! complete (`"ph":"X"`) events carry `ts`/`dur` in **microseconds**,
//! instant (`"ph":"i"`) events mark span events. Virtual milliseconds
//! are scaled by 1000, so one simulated millisecond reads as one
//! millisecond on the timeline.
//!
//! Prometheus text exposition lives on
//! [`crate::metrics::MetricsRegistry::render_prometheus`]; this module
//! owns the span-tree side plus [`validate_prometheus`], the validator
//! that round-trips the exposition page (including OpenMetrics
//! exemplars on histogram buckets).

use serde_json::Value;

use crate::span::{SpanRecord, TraceId};

fn hex_id(value: u64, width: usize) -> String {
    format!("{value:0width$x}")
}

fn span_args(span: &SpanRecord) -> Value {
    let mut fields = vec![
        (
            "trace_id".to_owned(),
            Value::String(hex_id(span.trace_id.0, 32)),
        ),
        (
            "span_id".to_owned(),
            Value::String(hex_id(span.span_id.0, 16)),
        ),
        ("plane".to_owned(), Value::String(span.plane.to_string())),
    ];
    if let Some(parent) = span.parent_id {
        fields.push(("parent_id".to_owned(), Value::String(hex_id(parent.0, 16))));
    }
    for (key, value) in span.attrs.iter() {
        fields.push((format!("attr.{key}"), Value::String(value.to_owned())));
    }
    Value::Object(fields)
}

/// Renders finished spans as a Chrome trace-event JSON document.
///
/// Every span becomes one complete (`"X"`) event whose `args` carry the
/// span/parent ids (hex) and attributes; every [`span
/// event`](crate::span::SpanEvent) becomes a thread-scoped instant
/// (`"i"`) event.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events = Vec::new();
    for span in spans {
        events.push(Value::Object(vec![
            ("name".to_owned(), Value::String(span.name.to_string())),
            ("cat".to_owned(), Value::String(span.plane.to_string())),
            ("ph".to_owned(), Value::String("X".to_owned())),
            (
                "ts".to_owned(),
                Value::Number(span.start_ms as f64 * 1000.0),
            ),
            (
                "dur".to_owned(),
                Value::Number((span.end_ms - span.start_ms) as f64 * 1000.0),
            ),
            ("pid".to_owned(), Value::Number(1.0)),
            ("tid".to_owned(), Value::Number(span.trace_id.0 as f64)),
            ("args".to_owned(), span_args(span)),
        ]));
        for event in &span.events {
            events.push(Value::Object(vec![
                ("name".to_owned(), Value::String(event.name.clone())),
                ("cat".to_owned(), Value::String(span.plane.to_string())),
                ("ph".to_owned(), Value::String("i".to_owned())),
                ("ts".to_owned(), Value::Number(event.at_ms as f64 * 1000.0)),
                ("pid".to_owned(), Value::Number(1.0)),
                ("tid".to_owned(), Value::Number(span.trace_id.0 as f64)),
                ("s".to_owned(), Value::String("t".to_owned())),
                (
                    "args".to_owned(),
                    Value::Object(vec![(
                        "span_id".to_owned(),
                        Value::String(hex_id(span.span_id.0, 16)),
                    )]),
                ),
            ]));
        }
    }
    Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(events)),
        ("displayTimeUnit".to_owned(), Value::String("ms".to_owned())),
    ])
    .to_string()
}

/// What [`validate_chrome_trace`] found in a valid document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events (complete + instant).
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Distinct trace ids.
    pub traces: usize,
}

fn field_str<'a>(event: &'a Value, key: &str) -> Result<&'a str, String> {
    match event.get_field(key) {
        Some(Value::String(s)) => Ok(s),
        other => Err(format!("field {key} is {other:?}, expected a string")),
    }
}

fn field_num(event: &Value, key: &str) -> Result<f64, String> {
    match event.get_field(key) {
        Some(Value::Number(n)) => Ok(*n),
        other => Err(format!("field {key} is {other:?}, expected a number")),
    }
}

/// Parses a Chrome trace-event JSON document back and checks its
/// structure: a `traceEvents` array of well-formed `X`/`i` events with
/// non-negative microsecond timestamps, and — per trace — every
/// `parent_id` resolving to a span in the same trace that started no
/// later than its child.
///
/// # Errors
///
/// A description of the first violation (including JSON parse errors).
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = match doc.get_field("traceEvents") {
        Some(Value::Array(events)) => events,
        other => return Err(format!("traceEvents is {other:?}, expected an array")),
    };
    // (trace hex, span hex) -> start ts.
    let mut span_starts = std::collections::HashMap::new();
    let mut parents = Vec::new();
    let mut traces = std::collections::BTreeSet::new();
    let mut spans = 0usize;
    for event in events {
        let name = field_str(event, "name")?;
        let ph = field_str(event, "ph")?;
        let ts = field_num(event, "ts")?;
        if ts < 0.0 {
            return Err(format!("event {name} has negative ts {ts}"));
        }
        match ph {
            "X" => {
                spans += 1;
                let dur = field_num(event, "dur")?;
                if dur < 0.0 {
                    return Err(format!("span {name} has negative dur {dur}"));
                }
                let args = event
                    .get_field("args")
                    .ok_or_else(|| format!("span {name} has no args"))?;
                let trace = field_str(args, "trace_id")?.to_owned();
                let span = field_str(args, "span_id")?.to_owned();
                traces.insert(trace.clone());
                if let Some(Value::String(parent)) = args.get_field("parent_id") {
                    parents.push((name.to_owned(), trace.clone(), parent.clone(), ts));
                }
                if span_starts.insert((trace, span), ts).is_some() {
                    return Err(format!("span {name} has a duplicate span_id"));
                }
            }
            "i" => {}
            other => return Err(format!("event {name} has unknown phase {other:?}")),
        }
    }
    for (name, trace, parent, ts) in parents {
        match span_starts.get(&(trace, parent.clone())) {
            None => return Err(format!("span {name} has unresolved parent {parent}")),
            Some(parent_ts) if ts < *parent_ts => {
                return Err(format!(
                    "span {name} starts at {ts} before its parent at {parent_ts}"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        spans,
        traces: traces.len(),
    })
}

/// What [`validate_prometheus`] found in a valid exposition page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrometheusSummary {
    /// Sample lines (all kinds).
    pub series: usize,
    /// `# TYPE` headers.
    pub types: usize,
    /// Cumulative `_bucket` sample lines.
    pub histogram_buckets: usize,
    /// OpenMetrics exemplars attached to bucket lines.
    pub exemplars: usize,
    /// The exemplar trace ids, 16 hex digits each, in page order.
    pub exemplar_trace_ids: Vec<String>,
}

fn parse_prom_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    if raw.is_empty() {
        return Ok(labels);
    }
    for pair in raw.split(',') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("label pair {pair:?} has no '='"))?;
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value in {pair:?} is not quoted"))?;
        labels.push((key.to_owned(), value.to_owned()));
    }
    Ok(labels)
}

/// One parsed sample line: name, rendered label set (minus `le`), the
/// `le` value for buckets, the sample value, and the exemplar if any.
struct PromSample {
    name: String,
    series_key: String,
    le: Option<String>,
    value: f64,
    exemplar: Option<(String, f64)>,
}

fn parse_prom_sample(line: &str) -> Result<PromSample, String> {
    // OpenMetrics exemplar syntax: `<sample> # {trace_id="…"} <value>`.
    let (main, exemplar) = match line.split_once(" # ") {
        Some((main, exemplar)) => (main, Some(exemplar)),
        None => (line, None),
    };
    let (series, value) = main
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample {line:?} has no value"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("sample {line:?} value {value:?} is not a number"))?;
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let raw = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("sample {line:?} has an unterminated label set"))?;
            (name, parse_prom_labels(raw)?)
        }
        None => (series, Vec::new()),
    };
    if name.is_empty() {
        return Err(format!("sample {line:?} has an empty metric name"));
    }
    let mut le = None;
    let mut key = String::new();
    for (k, v) in &labels {
        if k == "le" {
            le = Some(v.clone());
        } else {
            key.push_str(k);
            key.push('=');
            key.push_str(v);
            key.push(',');
        }
    }
    let exemplar = match exemplar {
        None => None,
        Some(raw) => {
            let rest = raw
                .strip_prefix("{trace_id=\"")
                .ok_or_else(|| format!("exemplar {raw:?} does not open with trace_id"))?;
            let (trace, value) = rest
                .split_once("\"} ")
                .ok_or_else(|| format!("exemplar {raw:?} has no value"))?;
            if trace.len() != 16 || !trace.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("exemplar trace id {trace:?} is not 16 hex digits"));
            }
            if trace.bytes().all(|b| b == b'0') {
                return Err(format!("exemplar trace id {trace:?} is zero"));
            }
            let value: f64 = value
                .parse()
                .map_err(|_| format!("exemplar {raw:?} value is not a number"))?;
            Some((trace.to_owned(), value))
        }
    };
    Ok(PromSample {
        name: name.to_owned(),
        series_key: key,
        le,
        value,
        exemplar,
    })
}

/// Parses a Prometheus text exposition page (as rendered by
/// [`crate::metrics::MetricsRegistry::render_prometheus`]) and checks
/// its structure: every sample belongs to a `# TYPE`-declared family,
/// values parse, cumulative `_bucket` series are non-decreasing and
/// end in a `+Inf` bucket that matches the family's `_count`, and
/// exemplars — legal only on bucket lines — carry well-formed 16-hex
/// trace ids in OpenMetrics syntax.
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<PrometheusSummary, String> {
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut last_bucket: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    let mut inf_total: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    let mut summary = PrometheusSummary {
        series: 0,
        types: 0,
        histogram_buckets: 0,
        exemplars: 0,
        exemplar_trace_ids: Vec::new(),
    };
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed TYPE header {line:?}"))?;
            match kind {
                "counter" | "gauge" | "summary" | "histogram" => {}
                other => return Err(format!("unknown metric type {other:?} in {line:?}")),
            }
            if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(format!("duplicate TYPE header for {name}"));
            }
            summary.types += 1;
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unexpected comment line {line:?}"));
        }
        let sample = parse_prom_sample(line)?;
        summary.series += 1;
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| sample.name.strip_suffix(suffix))
            .unwrap_or(&sample.name);
        if !types.contains_key(base) && !types.contains_key(&sample.name) {
            return Err(format!("sample {line:?} has no TYPE header"));
        }
        if sample.name.ends_with("_bucket") {
            summary.histogram_buckets += 1;
            let le = sample
                .le
                .ok_or_else(|| format!("bucket sample {line:?} has no le label"))?;
            let key = (base.to_owned(), sample.series_key.clone());
            if let Some(previous) = last_bucket.get(&key) {
                if sample.value < *previous {
                    return Err(format!(
                        "bucket series for {base} decreases: {} after {previous}",
                        sample.value
                    ));
                }
            }
            last_bucket.insert(key.clone(), sample.value);
            if le == "+Inf" {
                inf_total.insert(key, sample.value);
            }
            if let Some((trace, _)) = sample.exemplar {
                summary.exemplars += 1;
                summary.exemplar_trace_ids.push(trace);
            }
        } else {
            if sample.exemplar.is_some() {
                return Err(format!("exemplar on non-bucket sample {line:?}"));
            }
            if sample.name.ends_with("_count") {
                let key = (base.to_owned(), sample.series_key.clone());
                if let Some(total) = inf_total.get(&key) {
                    if *total != sample.value {
                        return Err(format!(
                            "{base} +Inf bucket {total} does not match _count {}",
                            sample.value
                        ));
                    }
                }
            }
        }
    }
    Ok(summary)
}

/// Groups spans by trace id, preserving order within each trace.
pub fn group_by_trace(spans: &[SpanRecord]) -> Vec<(TraceId, Vec<SpanRecord>)> {
    let mut grouped: Vec<(TraceId, Vec<SpanRecord>)> = Vec::new();
    for span in spans {
        match grouped.iter_mut().find(|(id, _)| *id == span.trace_id) {
            Some((_, bucket)) => bucket.push(span.clone()),
            None => grouped.push((span.trace_id, vec![span.clone()])),
        }
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ambient, Plane, Tracer};

    fn sample_spans() -> Vec<SpanRecord> {
        let tracer = Tracer::new();
        let mut root = tracer.root("app:patrol", Plane::App, 0);
        root.attr("agent", "a-1");
        {
            let mut child = ambient::child("proxy:Location.getLocation", Plane::Proxy, 5).unwrap();
            child.event("retry", 7);
            child.end(20);
        }
        root.end(30);
        tracer.take_finished()
    }

    #[test]
    fn export_round_trips_through_validation() {
        let spans = sample_spans();
        let json = chrome_trace_json(&spans);
        let summary = validate_chrome_trace(&json).expect("valid document");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.events, 3, "two spans plus one instant event");
        assert_eq!(summary.traces, 1);
    }

    #[test]
    fn validation_rejects_broken_parent_links() {
        let mut spans = sample_spans();
        // Drop the root: the child's parent can no longer resolve.
        spans.retain(|s| s.parent_id.is_some());
        let json = chrome_trace_json(&spans);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("unresolved parent"), "{err}");
    }

    #[test]
    fn validation_rejects_non_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn prometheus_page_round_trips_with_and_without_exemplars() {
        use crate::metrics::{Labels, MetricsRegistry};

        let registry = MetricsRegistry::new();
        registry
            .counter("calls_total", &Labels::call("Http", "request", "android"))
            .add(3);
        let h = registry.histogram("call_ms", &Labels::call("Http", "request", "android"));
        h.record(10);
        h.record(300);
        let plain = validate_prometheus(&registry.render_prometheus()).expect("valid page");
        assert_eq!(plain.exemplars, 0, "no exemplars attached yet");
        assert!(plain.histogram_buckets >= 3, "two buckets plus +Inf");
        assert!(plain.types >= 2);

        h.attach_exemplar(300, TraceId(0xbeef));
        let page = registry.render_prometheus();
        let with = validate_prometheus(&page).expect("valid page with exemplar");
        assert_eq!(with.exemplars, 1);
        assert_eq!(with.exemplar_trace_ids, vec!["000000000000beef".to_owned()]);
        assert_eq!(with.histogram_buckets, plain.histogram_buckets);
    }

    #[test]
    fn prometheus_validation_rejects_structural_breaks() {
        // No TYPE header.
        assert!(validate_prometheus("orphan_metric 1\n").is_err());
        // Decreasing cumulative buckets.
        let page = "# TYPE h summary\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n";
        let err = validate_prometheus(page).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
        // +Inf bucket disagreeing with _count.
        let page = "# TYPE h summary\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n";
        let err = validate_prometheus(page).unwrap_err();
        assert!(err.contains("does not match _count"), "{err}");
        // Malformed exemplar trace id.
        let page = "# TYPE h summary\nh_bucket{le=\"+Inf\"} 3 # {trace_id=\"xyz\"} 1\n";
        assert!(validate_prometheus(page).is_err());
        // Exemplar on a non-bucket sample.
        let page = "# TYPE c_total counter\nc_total 3 # {trace_id=\"00000000000000ab\"} 1\n";
        let err = validate_prometheus(page).unwrap_err();
        assert!(err.contains("non-bucket"), "{err}");
    }

    #[test]
    fn grouping_separates_traces() {
        let tracer = Tracer::new();
        tracer.root("a", Plane::App, 0).end(1);
        tracer.root("b", Plane::App, 0).end(1);
        let grouped = group_by_trace(&tracer.take_finished());
        assert_eq!(grouped.len(), 2);
        assert!(grouped.iter().all(|(_, spans)| spans.len() == 1));
    }
}
