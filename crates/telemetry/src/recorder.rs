//! Tail-based trace promotion out of the flight-recorder rings.
//!
//! The per-thread span rings ([`crate::span`]) retain only the most
//! recent history; this module decides — at the moment a trace's root
//! span closes, when the outcome is fully known — whether that trace
//! is *interesting* enough to keep forever. Interesting means: the
//! root carries an `error` attribute (any proxy error kind — a
//! timeout, a circuit rejection, an `Overloaded` shed, a
//! `DeadlineExceeded`, a retry exhaustion), the root is marked
//! `deadline=blown` (the call finished past its propagated budget), or
//! the root's duration crossed a per-operation latency threshold.
//! Promoted traces are copied whole into a bounded [`IncidentStore`]
//! before the ring can overwrite them, and the store keeps the
//! *earliest* incidents (keep-first), so the promoted set for a
//! deterministic run is itself deterministic and independent of how
//! work is split across workers: every trace is classified on the one
//! thread that recorded it, with the same virtual timestamps.
//!
//! Classification is allocation-free when the answer is "not
//! interesting" — the common case on a healthy hot path — so the
//! recorder can stay on in the zero-allocation traced configurations.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::Counter;
use crate::span::{validate_tree, SpanId, SpanName, SpanRecord, TraceId, Tracer};

/// Default incident-store capacity: roomy enough that a brownout run
/// keeps one promoted trace per breached call, small enough that a
/// misbehaving fleet device stays bounded.
pub const DEFAULT_INCIDENT_CAPACITY: usize = 1024;

/// Why a trace was promoted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromotionReason {
    /// The root span recorded an `error` attribute; the payload is the
    /// error-kind name (e.g. `Overloaded`, `DeadlineExceeded`).
    Error(String),
    /// The call completed past its propagated deadline budget
    /// (`deadline=blown` on the root span).
    DeadlineBlown,
    /// The root span's duration crossed a configured threshold.
    SlowCall {
        /// Observed root duration in virtual milliseconds.
        observed_ms: u64,
        /// The threshold that was crossed.
        threshold_ms: u64,
    },
}

impl PromotionReason {
    /// Small stable discriminant, used in checksums and digests.
    pub fn code(&self) -> u64 {
        match self {
            PromotionReason::Error(_) => 1,
            PromotionReason::DeadlineBlown => 2,
            PromotionReason::SlowCall { .. } => 3,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &str {
        match self {
            PromotionReason::Error(kind) => kind,
            PromotionReason::DeadlineBlown => "deadline_blown",
            PromotionReason::SlowCall { .. } => "slow_call",
        }
    }
}

/// Declarative rules for what counts as an interesting trace.
///
/// The default policy promotes errored and deadline-blown traces and
/// has no latency thresholds; [`PromotionPolicy::latency_threshold`]
/// adds per-operation ones keyed by the **root span name** (e.g.
/// `proxy:Http.request`).
#[derive(Debug, Clone)]
pub struct PromotionPolicy {
    promote_errors: bool,
    promote_deadline_blown: bool,
    /// `(root span name, threshold in virtual ms)`; linear scan — the
    /// list is a handful of entries resolved against `&str` names, so
    /// classification never allocates.
    latency_thresholds: Vec<(String, u64)>,
    max_incidents: usize,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        Self {
            promote_errors: true,
            promote_deadline_blown: true,
            latency_thresholds: Vec::new(),
            max_incidents: DEFAULT_INCIDENT_CAPACITY,
        }
    }
}

impl PromotionPolicy {
    /// The default policy (promote errors + blown deadlines).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether traces whose root records an `error` attribute promote.
    pub fn promote_errors(mut self, on: bool) -> Self {
        self.promote_errors = on;
        self
    }

    /// Whether traces marked `deadline=blown` promote.
    pub fn promote_deadline_blown(mut self, on: bool) -> Self {
        self.promote_deadline_blown = on;
        self
    }

    /// Promotes traces whose root span named `root_name` ran for at
    /// least `threshold_ms` virtual milliseconds.
    pub fn latency_threshold(mut self, root_name: impl Into<String>, threshold_ms: u64) -> Self {
        self.latency_thresholds
            .push((root_name.into(), threshold_ms));
        self
    }

    /// Caps the incident store at `capacity` promoted traces
    /// (keep-first; minimum 1). Later promotions are counted as
    /// dropped.
    pub fn max_incidents(mut self, capacity: usize) -> Self {
        self.max_incidents = capacity.max(1);
        self
    }

    /// The configured incident-store capacity.
    pub fn incident_capacity(&self) -> usize {
        self.max_incidents
    }

    /// Classifies a closing trace root. `None` — the common, healthy
    /// case — allocates nothing.
    pub fn classify(&self, root: &SpanRecord) -> Option<PromotionReason> {
        if self.promote_deadline_blown && root.attrs.get("deadline") == Some("blown") {
            return Some(PromotionReason::DeadlineBlown);
        }
        if self.promote_errors {
            if let Some(kind) = root.attrs.get("error") {
                return Some(PromotionReason::Error(kind.to_owned()));
            }
        }
        let name = root.name.as_str();
        for (candidate, threshold_ms) in &self.latency_thresholds {
            let observed_ms = root.end_ms - root.start_ms;
            if candidate == name && observed_ms >= *threshold_ms {
                return Some(PromotionReason::SlowCall {
                    observed_ms,
                    threshold_ms: *threshold_ms,
                });
            }
        }
        None
    }
}

/// One promoted trace: the whole tree, copied out of the ring at the
/// moment the root closed.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotedTrace {
    /// The trace's id.
    pub trace_id: TraceId,
    /// The root span's id.
    pub root_span: SpanId,
    /// The root span's operation name.
    pub root_name: SpanName,
    /// Why the trace was promoted.
    pub reason: PromotionReason,
    /// Root start, virtual milliseconds.
    pub start_ms: u64,
    /// Root end, virtual milliseconds.
    pub end_ms: u64,
    /// Whether the captured spans passed [`validate_tree`] — `false`
    /// means some children had already been evicted from the ring
    /// (retention smaller than the trace).
    pub complete: bool,
    /// Every captured span of the trace, oldest first (root last).
    pub spans: Vec<SpanRecord>,
}

impl PromotedTrace {
    /// Root duration in virtual milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }
}

/// A bounded keep-first store of promoted traces.
#[derive(Debug)]
pub struct IncidentStore {
    capacity: usize,
    promoted: AtomicU64,
    dropped: AtomicU64,
    traces: Mutex<Vec<PromotedTrace>>,
}

impl IncidentStore {
    /// An empty store keeping at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            promoted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            traces: Mutex::new(Vec::with_capacity(capacity.min(64))),
        }
    }

    /// Stores a promoted trace if there is room. Returns whether it
    /// was kept.
    fn push(&self, trace: PromotedTrace) -> bool {
        self.promoted.fetch_add(1, Ordering::Relaxed);
        let mut traces = self.traces.lock();
        if traces.len() < self.capacity {
            traces.push(trace);
            true
        } else {
            drop(traces);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// The store's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces promoted so far (kept + dropped).
    pub fn promoted_total(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// Promotions that found the store full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of traces currently kept.
    pub fn len(&self) -> usize {
        self.traces.lock().len()
    }

    /// Whether no trace has been kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the kept traces, in promotion order.
    pub fn traces(&self) -> Vec<PromotedTrace> {
        self.traces.lock().clone()
    }
}

/// Registry counters mirroring the flight recorder's health: installed
/// on a [`Tracer`] they surface eviction and promotion totals in the
/// Prometheus exposition instead of only the `Debug` impl.
#[derive(Debug, Clone)]
pub struct RecorderCounters {
    /// Spans overwritten by ring wrap-around
    /// (`telemetry_spans_evicted_total`).
    pub evicted: Counter,
    /// Traces promoted into the incident store
    /// (`telemetry_traces_promoted_total`).
    pub promoted: Counter,
    /// Promotions dropped because the store was full
    /// (`telemetry_promotions_dropped_total`).
    pub promoted_dropped: Counter,
}

/// The promotion engine a [`Tracer`] consults when a root span files:
/// a [`PromotionPolicy`] plus the [`IncidentStore`] promoted traces
/// land in.
#[derive(Debug, Clone)]
pub struct Recorder {
    policy: Arc<PromotionPolicy>,
    store: Arc<IncidentStore>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(PromotionPolicy::default())
    }
}

impl Recorder {
    /// A recorder with a fresh store sized by the policy's
    /// `max_incidents`.
    pub fn new(policy: PromotionPolicy) -> Self {
        let store = Arc::new(IncidentStore::new(policy.incident_capacity()));
        Self {
            policy: Arc::new(policy),
            store,
        }
    }

    /// The classification rules.
    pub fn policy(&self) -> &PromotionPolicy {
        &self.policy
    }

    /// The incident store.
    pub fn store(&self) -> &Arc<IncidentStore> {
        &self.store
    }

    /// Promotes a collected trace (called by `Tracer::file` with the
    /// resident trace spans, root last).
    pub(crate) fn promote(
        &self,
        tracer_id: u64,
        reason: PromotionReason,
        spans: Vec<SpanRecord>,
        counters: Option<&RecorderCounters>,
    ) {
        let root = match spans.last() {
            Some(root) => root,
            None => return,
        };
        let trace = PromotedTrace {
            trace_id: root.trace_id,
            root_span: root.span_id,
            root_name: root.name.clone(),
            reason,
            start_ms: root.start_ms,
            end_ms: root.end_ms,
            complete: validate_tree(&spans).is_ok(),
            spans,
        };
        let trace_id = trace.trace_id;
        let kept = self.store.push(trace);
        if let Some(counters) = counters {
            counters.promoted.inc();
            if !kept {
                counters.promoted_dropped.inc();
            }
        }
        note_promotion(tracer_id, trace_id);
    }
}

thread_local! {
    /// The most recent promotion on this thread: `(tracer id, trace
    /// id)`. Lets the traced decorator attach the promoted trace as a
    /// histogram exemplar immediately after the root span ends,
    /// without threading state through the call.
    static LAST_PROMOTION: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn note_promotion(tracer_id: u64, trace_id: TraceId) {
    LAST_PROMOTION.with(|cell| cell.set((tracer_id, trace_id.0)));
}

/// Consumes the trace id of the promotion that just happened on this
/// thread for `tracer`, if any. One read clears it — exactly one
/// exemplar per promotion.
pub fn take_promotion(tracer: &Tracer) -> Option<TraceId> {
    LAST_PROMOTION.with(|cell| {
        let (tracer_id, trace_id) = cell.get();
        if tracer_id == tracer.id() && trace_id != 0 {
            cell.set((0, 0));
            Some(TraceId(trace_id))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ambient, Plane};

    fn recorder_tracer(retention: usize, policy: PromotionPolicy) -> Tracer {
        Tracer::with_recorder(retention, Recorder::new(policy))
    }

    #[test]
    fn errored_roots_promote_the_whole_tree() {
        let tracer = recorder_tracer(64, PromotionPolicy::default());
        let mut root = tracer.root("proxy:Location.getLocation", Plane::Proxy, 0);
        ambient::child("platform:gps", Plane::Platform, 2)
            .expect("ambient parent")
            .end(9);
        root.attr("error", "Timeout");
        root.end(10);
        // A healthy trace alongside it does not promote.
        tracer
            .root("proxy:Location.getLocation", Plane::Proxy, 20)
            .end(25);

        let store = tracer.incident_store().expect("recorder installed");
        assert_eq!(store.len(), 1);
        assert_eq!(store.promoted_total(), 1);
        let traces = store.traces();
        assert_eq!(traces[0].reason, PromotionReason::Error("Timeout".into()));
        assert_eq!(traces[0].spans.len(), 2);
        assert!(traces[0].complete, "tree validated");
        assert_eq!(traces[0].duration_ms(), 10);
        // The promotion is consumable exactly once per tracer.
        assert_eq!(take_promotion(&tracer), Some(traces[0].trace_id));
        assert_eq!(take_promotion(&tracer), None);
    }

    #[test]
    fn deadline_blown_outranks_error_and_latency() {
        let policy = PromotionPolicy::default().latency_threshold("op", 1);
        let tracer = recorder_tracer(8, policy);
        let mut root = tracer.root("op", Plane::Proxy, 0);
        root.attr("deadline", "blown");
        root.attr("error", "DeadlineExceeded");
        root.end(100);
        let traces = tracer.incident_store().unwrap().traces();
        assert_eq!(traces[0].reason, PromotionReason::DeadlineBlown);
    }

    #[test]
    fn latency_thresholds_match_by_root_name() {
        let policy = PromotionPolicy::default().latency_threshold("proxy:Http.request", 50);
        let tracer = recorder_tracer(8, policy);
        tracer.root("proxy:Http.request", Plane::Proxy, 0).end(49);
        tracer.root("proxy:Sms.send", Plane::Proxy, 0).end(500);
        tracer.root("proxy:Http.request", Plane::Proxy, 0).end(80);
        let traces = tracer.incident_store().unwrap().traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].reason,
            PromotionReason::SlowCall {
                observed_ms: 80,
                threshold_ms: 50
            }
        );
    }

    #[test]
    fn store_keeps_first_k_and_counts_drops() {
        let policy = PromotionPolicy::default().max_incidents(2);
        let tracer = recorder_tracer(8, policy);
        for i in 0..5u64 {
            let mut root = tracer.root("op", Plane::Proxy, i * 10);
            root.attr("error", "Timeout");
            root.end(i * 10 + 1);
        }
        let store = tracer.incident_store().unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.promoted_total(), 5);
        assert_eq!(store.dropped(), 3);
        let starts: Vec<u64> = store.traces().iter().map(|t| t.start_ms).collect();
        assert_eq!(starts, vec![0, 10], "earliest incidents win");
    }

    #[test]
    fn promotion_beats_ring_eviction() {
        // Retention of 2 with a 3-span trace: the promotion still sees
        // whatever is resident, and marks itself incomplete when the
        // tree lost members.
        let tracer = recorder_tracer(2, PromotionPolicy::default());
        let mut root = tracer.root("op", Plane::Proxy, 0);
        ambient::child("a", Plane::Platform, 1).unwrap().end(2);
        ambient::child("b", Plane::Platform, 3).unwrap().end(4);
        ambient::child("c", Plane::Device, 5).unwrap().end(6);
        root.attr("error", "Timeout");
        root.end(7);
        let traces = tracer.incident_store().unwrap().traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].spans.len(), 3, "two resident children + root");
        assert!(traces[0].complete, "b and c still parent to the root");
        // With enough retention the whole tree survives.
        let roomy = recorder_tracer(16, PromotionPolicy::default());
        let mut root = roomy.root("op", Plane::Proxy, 0);
        ambient::child("a", Plane::Platform, 1).unwrap().end(2);
        root.attr("error", "Timeout");
        root.end(3);
        let traces = roomy.incident_store().unwrap().traces();
        assert!(traces[0].complete);
        assert_eq!(
            validate_tree(&traces[0].spans).unwrap(),
            traces[0].root_span
        );
    }

    #[test]
    fn policy_knobs_disable_classes() {
        let policy = PromotionPolicy::default()
            .promote_errors(false)
            .promote_deadline_blown(false);
        let tracer = recorder_tracer(8, policy);
        let mut root = tracer.root("op", Plane::Proxy, 0);
        root.attr("error", "Timeout");
        root.attr("deadline", "blown");
        root.end(1);
        assert!(tracer.incident_store().unwrap().is_empty());
        assert_eq!(take_promotion(&tracer), None);
    }
}
