//! The metrics registry: named counters, gauges and log-bucketed
//! latency histograms keyed by sorted label sets.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! shared atomics — get them once, update them lock-free on the hot
//! path. The registry itself is only locked on get-or-create and on
//! export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A canonicalised (sorted, deduplicated) label set.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Builds a label set from pairs; keys are sorted and later
    /// duplicates win.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            match labels.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = (*value).to_owned(),
                None => labels.push(((*key).to_owned(), (*value).to_owned())),
            }
        }
        labels.sort();
        Self(labels)
    }

    /// The canonical call-path key: `(proxy, method, platform)`.
    pub fn call(proxy: &str, method: &str, platform: &str) -> Self {
        Self::new(&[("proxy", proxy), ("method", method), ("platform", platform)])
    }

    /// Looks a label up by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Renders `{k="v",…}` in Prometheus exposition syntax (empty
    /// string for the empty set). `extra` pairs are appended, used for
    /// the `quantile` label on histogram summaries.
    fn render(&self, extra: &[(&str, &str)]) -> String {
        if self.0.is_empty() && extra.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in self
            .0
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{k}=\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push('}');
        out
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 65;

struct HistogramInner {
    /// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
    /// `[2^(i-1), 2^i - 1]` — power-of-two (log-bucketed) boundaries.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-bucketed histogram of non-negative integer samples (virtual
/// milliseconds or wall-clock microseconds — unit is the caller's).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(HistogramInner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimated quantile (`0.0..=1.0`) by cumulative walk over the
    /// log buckets with linear interpolation inside the landing bucket.
    /// Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 0-based rank of the sample we are after.
        let target = (q * (count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.inner.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket > target {
                let (lo, hi) = bucket_bounds(i);
                let position = (target - seen) as f64 + 0.5;
                return lo as f64 + (hi - lo) as f64 * (position / in_bucket as f64);
            }
            seen += in_bucket;
        }
        bucket_bounds(BUCKETS - 1).1 as f64
    }
}

/// The registry: get-or-create metric handles by `(name, labels)` and
/// render the whole set as Prometheus-style text.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<(String, Labels), Counter>>,
    gauges: Mutex<BTreeMap<(String, Labels), Gauge>>,
    histograms: Mutex<BTreeMap<(String, Labels), Histogram>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .field("histograms", &self.histograms.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh registry behind an [`Arc`], the shape everything shares.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str, labels: Labels) -> Counter {
        self.counters
            .lock()
            .entry((name.to_owned(), labels))
            .or_default()
            .clone()
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str, labels: Labels) -> Gauge {
        self.gauges
            .lock()
            .entry((name.to_owned(), labels))
            .or_default()
            .clone()
    }

    /// Get-or-create a histogram.
    pub fn histogram(&self, name: &str, labels: Labels) -> Histogram {
        self.histograms
            .lock()
            .entry((name.to_owned(), labels))
            .or_default()
            .clone()
    }

    /// The current value of a counter, `0` if it was never created
    /// (reading does not create it).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .lock()
            .get(&(name.to_owned(), labels.clone()))
            .map_or(0, Counter::value)
    }

    /// Every counter as `(name, labels, value)`, sorted by key.
    pub fn counter_values(&self) -> Vec<(String, Labels, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|((name, labels), counter)| (name.clone(), labels.clone(), counter.value()))
            .collect()
    }

    /// Renders the registry in Prometheus text exposition format.
    /// Counters and gauges expose their value; histograms expose
    /// summary quantiles (p50/p95/p99) plus `_sum` and `_count`.
    /// Output is deterministic (sorted by name, then labels).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for ((name, labels), counter) in self.counters.lock().iter() {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name.clone_from(name);
            }
            let _ = writeln!(out, "{name}{} {}", labels.render(&[]), counter.value());
        }
        last_name.clear();
        for ((name, labels), gauge) in self.gauges.lock().iter() {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_name.clone_from(name);
            }
            let _ = writeln!(out, "{name}{} {}", labels.render(&[]), gauge.value());
        }
        last_name.clear();
        for ((name, labels), histogram) in self.histograms.lock().iter() {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} summary");
                last_name.clone_from(name);
            }
            for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    labels.render(&[("quantile", tag)]),
                    format_float(histogram.quantile(q))
                );
            }
            let _ = writeln!(out, "{name}_sum{} {}", labels.render(&[]), histogram.sum());
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                labels.render(&[]),
                histogram.count()
            );
        }
        out
    }
}

fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_canonicalise() {
        let a = Labels::new(&[("b", "2"), ("a", "1")]);
        let b = Labels::new(&[("a", "0"), ("a", "1"), ("b", "2")]);
        assert_eq!(a, b, "sorted and last-duplicate-wins");
        assert_eq!(a.get("a"), Some("1"));
        let call = Labels::call("location", "getLocation", "android");
        assert_eq!(call.get("proxy"), Some("location"));
        assert_eq!(call.get("method"), Some("getLocation"));
        assert_eq!(call.get("platform"), Some("android"));
    }

    #[test]
    fn counter_handles_share_state() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("calls_total", Labels::empty());
        let b = registry.counter("calls_total", Labels::empty());
        a.inc();
        b.add(2);
        assert_eq!(registry.counter_value("calls_total", &Labels::empty()), 3);
        assert_eq!(registry.counter_value("other", &Labels::empty()), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log buckets: the estimate lands in the right power-of-two
        // bracket, and the quantiles are ordered.
        assert!((256.0..1024.0).contains(&p50), "p50={p50}");
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p99 <= 1024.0, "p99={p99}");
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.record(0);
        assert_eq!(h.quantile(0.99), 0.0, "only the zero bucket");
        h.record(u64::MAX);
        assert!(h.quantile(1.0) >= (1u64 << 63) as f64);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "proxy_calls_total",
                Labels::call("location", "getLocation", "android"),
            )
            .inc();
        registry.gauge("queue_depth", Labels::empty()).set(4);
        let h = registry.histogram(
            "proxy_call_ms",
            Labels::call("location", "getLocation", "android"),
        );
        h.record(10);
        h.record(20);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE proxy_calls_total counter"));
        assert!(text.contains(
            "proxy_calls_total{method=\"getLocation\",platform=\"android\",proxy=\"location\"} 1"
        ));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 4"));
        assert!(text.contains("# TYPE proxy_call_ms summary"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("proxy_call_ms_count{"));
        assert_eq!(text, registry.render_prometheus(), "deterministic");
    }
}
