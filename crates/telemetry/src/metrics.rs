//! The metrics registry: named counters, gauges and log-bucketed
//! latency histograms keyed by sorted label sets.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! shared atomics — get them once, update them lock-free on the hot
//! path. Internally the registry is striped into a fixed power-of-two
//! number of shards keyed by interned `(NameKey, LabelKey)` symbols
//! (see [`crate::intern`]): get-or-create only locks one shard, and a
//! Prometheus scrape walks the shards one at a time, so registration
//! and export never stall recorders on a global lock. Export re-sorts
//! by `(name, labels)`, so the rendered text is deterministic and
//! identical to what a single sorted map would produce.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::intern::{self, LabelKey, NameKey};
use crate::span::TraceId;

/// A canonicalised (sorted, deduplicated) label set.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Builds a label set from pairs; keys are sorted and later
    /// duplicates win.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            match labels.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = (*value).to_owned(),
                None => labels.push(((*key).to_owned(), (*value).to_owned())),
            }
        }
        labels.sort();
        Self(labels)
    }

    /// The canonical call-path key: `(proxy, method, platform)`.
    pub fn call(proxy: &str, method: &str, platform: &str) -> Self {
        Self::new(&[("proxy", proxy), ("method", method), ("platform", platform)])
    }

    /// Looks a label up by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Renders `{k="v",…}` in Prometheus exposition syntax (empty
    /// string for the empty set). `extra` pairs are appended, used for
    /// the `quantile` label on histogram summaries.
    fn render(&self, extra: &[(&str, &str)]) -> String {
        if self.0.is_empty() && extra.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in self
            .0
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{k}=\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push('}');
        out
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 65;

struct HistogramInner {
    /// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
    /// `[2^(i-1), 2^i - 1]` — power-of-two (log-bucketed) boundaries.
    buckets: Vec<AtomicU64>,
    /// Per-bucket exemplar: the last promoted trace id whose sample
    /// landed in the bucket (`0` = none) and that sample's value.
    /// Written only on trace promotion — never on the plain recording
    /// hot path — and rendered in OpenMetrics exemplar syntax.
    exemplar_traces: Vec<AtomicU64>,
    exemplar_values: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-bucketed histogram of non-negative integer samples (virtual
/// milliseconds or wall-clock microseconds — unit is the caller's).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(HistogramInner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                exemplar_traces: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                exemplar_values: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Attaches `trace_id` as the exemplar for the bucket `value`
    /// falls into (last writer wins). Two relaxed stores — no
    /// allocation, safe on the warmed hot path; call it when a trace
    /// is promoted so every bucket links to the most recent promoted
    /// trace that landed there.
    pub fn attach_exemplar(&self, value: u64, trace_id: TraceId) {
        let bucket = bucket_index(value);
        self.inner.exemplar_values[bucket].store(value, Ordering::Relaxed);
        self.inner.exemplar_traces[bucket].store(trace_id.0, Ordering::Relaxed);
    }

    /// The exemplar attached to `bucket`, as `(trace id, sample
    /// value)`, if any.
    pub fn exemplar(&self, bucket: usize) -> Option<(TraceId, u64)> {
        let trace = self
            .inner
            .exemplar_traces
            .get(bucket)?
            .load(Ordering::Relaxed);
        if trace == 0 {
            return None;
        }
        let value = self.inner.exemplar_values[bucket].load(Ordering::Relaxed);
        Some((TraceId(trace), value))
    }

    /// Every exemplar currently attached, as `(bucket, trace id,
    /// sample value)`.
    pub fn exemplars(&self) -> Vec<(usize, TraceId, u64)> {
        (0..BUCKETS)
            .filter_map(|bucket| self.exemplar(bucket).map(|(id, v)| (bucket, id, v)))
            .collect()
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimated quantile (`0.0..=1.0`) by cumulative walk over the
    /// log buckets with linear interpolation inside the landing bucket.
    /// Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 0-based rank of the sample we are after.
        let target = (q * (count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.inner.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket > target {
                let (lo, hi) = bucket_bounds(i);
                let position = (target - seen) as f64 + 0.5;
                return lo as f64 + (hi - lo) as f64 * (position / in_bucket as f64);
            }
            seen += in_bucket;
        }
        bucket_bounds(BUCKETS - 1).1 as f64
    }
}

/// Number of lock stripes. Power of two so shard selection is a mask;
/// fixed so shard membership of a symbol never moves.
const SHARD_COUNT: usize = 8;

/// One metric's identity after interning: two machine words.
type MetricId = (NameKey, LabelKey);

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<MetricId, Counter>>,
    gauges: Mutex<HashMap<MetricId, Gauge>>,
    histograms: Mutex<HashMap<MetricId, Histogram>>,
}

fn shard_of(id: MetricId) -> usize {
    // splitmix64-style finalizer over the two symbol indices: cheap and
    // spreads consecutive symbols across stripes.
    let mut h = (u64::from(id.0.index()) << 32) | u64::from(id.1.index());
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h as usize) & (SHARD_COUNT - 1)
}

/// The registry: get-or-create metric handles by `(name, labels)` and
/// render the whole set as Prometheus-style text.
///
/// Lookups intern the key once and then touch a single shard; a scrape
/// locks one shard at a time, so it never blocks recorders that hold
/// pre-resolved handles and only briefly delays get-or-create on the
/// shard currently being copied out.
pub struct MetricsRegistry {
    shards: [Shard; SHARD_COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let count =
            |pick: &dyn Fn(&Shard) -> usize| -> usize { self.shards.iter().map(pick).sum() };
        f.debug_struct("MetricsRegistry")
            .field("counters", &count(&|s: &Shard| s.counters.lock().len()))
            .field("gauges", &count(&|s: &Shard| s.gauges.lock().len()))
            .field("histograms", &count(&|s: &Shard| s.histograms.lock().len()))
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh registry behind an [`Arc`], the shape everything shares.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str, labels: &Labels) -> Counter {
        let id = (intern::intern_name(name), intern::intern_labels(labels));
        self.shards[shard_of(id)]
            .counters
            .lock()
            .entry(id)
            .or_default()
            .clone()
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Gauge {
        let id = (intern::intern_name(name), intern::intern_labels(labels));
        self.shards[shard_of(id)]
            .gauges
            .lock()
            .entry(id)
            .or_default()
            .clone()
    }

    /// Get-or-create a histogram.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Histogram {
        let id = (intern::intern_name(name), intern::intern_labels(labels));
        self.shards[shard_of(id)]
            .histograms
            .lock()
            .entry(id)
            .or_default()
            .clone()
    }

    /// The current value of a counter, `0` if it was never created
    /// (reading does not create it, and does not even intern the key).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> u64 {
        let Some(name_key) = intern::lookup_name(name) else {
            return 0;
        };
        let Some(label_key) = intern::lookup_labels(labels) else {
            return 0;
        };
        let id = (name_key, label_key);
        self.shards[shard_of(id)]
            .counters
            .lock()
            .get(&id)
            .map_or(0, Counter::value)
    }

    /// Every counter as `(name, labels, value)`, sorted by key.
    pub fn counter_values(&self) -> Vec<(String, Labels, u64)> {
        self.sorted_entries(|shard| &shard.counters)
            .into_iter()
            .map(|(name, labels, counter)| (name, labels, counter.value()))
            .collect()
    }

    /// Snapshots one metric kind across all shards, resolves the
    /// interned symbols back to strings, and sorts by `(name, labels)`
    /// — the deterministic export order the single-map registry had.
    fn sorted_entries<T: Clone>(
        &self,
        pick: impl Fn(&Shard) -> &Mutex<HashMap<MetricId, T>>,
    ) -> Vec<(String, Labels, T)> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let map = pick(shard).lock();
            entries.reserve(map.len());
            for (&(name, labels), value) in map.iter() {
                entries.push((
                    intern::resolve_name(name),
                    intern::resolve_labels(labels),
                    value.clone(),
                ));
            }
        }
        entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        entries
    }

    /// Renders the registry in Prometheus text exposition format.
    /// Counters and gauges expose their value; histograms expose
    /// summary quantiles (p50/p95/p99), cumulative `_bucket` series
    /// over the non-empty log buckets — with OpenMetrics exemplars
    /// (`# {trace_id="…"} value`) where a promoted trace is attached —
    /// plus `_sum` and `_count`. Output is deterministic (sorted by
    /// name, then labels).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (name, labels, counter) in self.sorted_entries(|shard| &shard.counters) {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name.clone_from(&name);
            }
            let _ = writeln!(out, "{name}{} {}", labels.render(&[]), counter.value());
        }
        last_name.clear();
        for (name, labels, gauge) in self.sorted_entries(|shard| &shard.gauges) {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_name.clone_from(&name);
            }
            let _ = writeln!(out, "{name}{} {}", labels.render(&[]), gauge.value());
        }
        last_name.clear();
        for (name, labels, histogram) in self.sorted_entries(|shard| &shard.histograms) {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} summary");
                last_name.clone_from(&name);
            }
            for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    labels.render(&[("quantile", tag)]),
                    format_float(histogram.quantile(q))
                );
            }
            // Cumulative `_bucket` series over the non-empty log
            // buckets, each carrying its exemplar (the last promoted
            // trace that landed there) in OpenMetrics syntax:
            //   name_bucket{...,le="X"} N # {trace_id="…"} value
            let mut cumulative = 0u64;
            for bucket in 0..BUCKETS {
                let in_bucket = histogram.inner.buckets[bucket].load(Ordering::Relaxed);
                cumulative += in_bucket;
                if in_bucket == 0 || bucket == BUCKETS - 1 {
                    continue;
                }
                let le = bucket_bounds(bucket).1.to_string();
                let _ = write!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    labels.render(&[("le", &le)])
                );
                match histogram.exemplar(bucket) {
                    Some((trace_id, value)) => {
                        let _ = writeln!(out, " # {{trace_id=\"{:016x}\"}} {value}", trace_id.0);
                    }
                    None => out.push('\n'),
                }
            }
            let _ = write!(
                out,
                "{name}_bucket{} {}",
                labels.render(&[("le", "+Inf")]),
                histogram.count()
            );
            match histogram.exemplar(BUCKETS - 1) {
                Some((trace_id, value)) => {
                    let _ = writeln!(out, " # {{trace_id=\"{:016x}\"}} {value}", trace_id.0);
                }
                None => out.push('\n'),
            }
            let _ = writeln!(out, "{name}_sum{} {}", labels.render(&[]), histogram.sum());
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                labels.render(&[]),
                histogram.count()
            );
        }
        out
    }
}

fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_canonicalise() {
        let a = Labels::new(&[("b", "2"), ("a", "1")]);
        let b = Labels::new(&[("a", "0"), ("a", "1"), ("b", "2")]);
        assert_eq!(a, b, "sorted and last-duplicate-wins");
        assert_eq!(a.get("a"), Some("1"));
        let call = Labels::call("location", "getLocation", "android");
        assert_eq!(call.get("proxy"), Some("location"));
        assert_eq!(call.get("method"), Some("getLocation"));
        assert_eq!(call.get("platform"), Some("android"));
    }

    /// Deterministic randomized sweep over the `Labels::new` contract:
    /// keys sorted, later duplicates win, input order irrelevant. (The
    /// proptest mirror of this lives in `tests/properties.rs`; this
    /// version actually executes under the offline proptest stub.)
    #[test]
    fn labels_invariant_randomized() {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        const KEYS: [&str; 6] = ["a", "b", "proxy", "method", "platform", "zz"];
        const VALUES: [&str; 4] = ["", "1", "x", "longer value"];
        let mut state = 0xDEAD_BEEF;
        for _ in 0..500 {
            let len = (splitmix64(&mut state) % 7) as usize;
            let pairs: Vec<(&str, &str)> = (0..len)
                .map(|_| {
                    let k = KEYS[(splitmix64(&mut state) % KEYS.len() as u64) as usize];
                    let v = VALUES[(splitmix64(&mut state) % VALUES.len() as u64) as usize];
                    (k, v)
                })
                .collect();
            let labels = Labels::new(&pairs);
            // Keys strictly sorted (sorted + deduplicated).
            assert!(
                labels.pairs().windows(2).all(|w| w[0].0 < w[1].0),
                "keys not strictly sorted for input {pairs:?}: {labels:?}"
            );
            // Later duplicates win.
            for (k, v) in &pairs {
                let last = pairs.iter().rev().find(|(pk, _)| pk == k).unwrap().1;
                assert_eq!(labels.get(k), Some(last), "key {k} (inserted {v})");
            }
            // No invented keys.
            assert!(labels
                .pairs()
                .iter()
                .all(|(k, _)| KEYS.contains(&k.as_str())));
            // Input order is irrelevant: reversing the pairs changes
            // which duplicate wins, so compare via a dedup-last map.
            let mut dedup: Vec<(&str, &str)> = Vec::new();
            for (k, v) in &pairs {
                match dedup.iter_mut().find(|(dk, _)| dk == k) {
                    Some(slot) => slot.1 = v,
                    None => dedup.push((k, v)),
                }
            }
            assert_eq!(labels, Labels::new(&dedup));
        }
    }

    /// Deterministic randomized sweep over exporter-order independence:
    /// registering the same series in any permutation renders
    /// byte-identical Prometheus text. (The proptest mirror of this
    /// lives in `tests/properties.rs`; this version actually executes
    /// under the offline proptest stub.)
    #[test]
    fn prometheus_order_randomized() {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let series: Vec<Labels> = (0..12)
            .map(|i| Labels::call("Location", &format!("method{i:02}"), "android"))
            .collect();
        let reference = MetricsRegistry::new();
        for labels in &series {
            reference.counter("proxy_calls_total", labels).inc();
        }
        let mut state = 0x5EED;
        for _ in 0..20 {
            // A random permutation of the registration order.
            let mut order: Vec<usize> = (0..series.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, (splitmix64(&mut state) % (i as u64 + 1)) as usize);
            }
            let shuffled = MetricsRegistry::new();
            for &i in &order {
                shuffled.counter("proxy_calls_total", &series[i]).inc();
            }
            assert_eq!(
                reference.render_prometheus(),
                shuffled.render_prometheus(),
                "registration order {order:?} changed the exposition"
            );
        }
    }

    #[test]
    fn counter_handles_share_state() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("calls_total", &Labels::empty());
        let b = registry.counter("calls_total", &Labels::empty());
        a.inc();
        b.add(2);
        assert_eq!(registry.counter_value("calls_total", &Labels::empty()), 3);
        assert_eq!(
            registry.counter_value("never_created_counter", &Labels::empty()),
            0
        );
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log buckets: the estimate lands in the right power-of-two
        // bracket, and the quantiles are ordered.
        assert!((256.0..1024.0).contains(&p50), "p50={p50}");
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p99 <= 1024.0, "p99={p99}");
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.record(0);
        assert_eq!(h.quantile(0.99), 0.0, "only the zero bucket");
        h.record(u64::MAX);
        assert!(h.quantile(1.0) >= (1u64 << 63) as f64);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "proxy_calls_total",
                &Labels::call("location", "getLocation", "android"),
            )
            .inc();
        registry.gauge("queue_depth", &Labels::empty()).set(4);
        let h = registry.histogram(
            "proxy_call_ms",
            &Labels::call("location", "getLocation", "android"),
        );
        h.record(10);
        h.record(20);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE proxy_calls_total counter"));
        assert!(text.contains(
            "proxy_calls_total{method=\"getLocation\",platform=\"android\",proxy=\"location\"} 1"
        ));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 4"));
        assert!(text.contains("# TYPE proxy_call_ms summary"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("proxy_call_ms_count{"));
        assert_eq!(text, registry.render_prometheus(), "deterministic");
    }

    #[test]
    fn histogram_buckets_render_with_openmetrics_exemplars() {
        let registry = MetricsRegistry::new();
        let labels = Labels::call("Http", "request", "android");
        let h = registry.histogram("proxy_call_ms", &labels);
        h.record(10);
        h.record(300);
        let text = registry.render_prometheus();
        assert!(
            text.contains("proxy_call_ms_bucket{method=\"request\",platform=\"android\",proxy=\"Http\",le=\"15\"} 1\n"),
            "cumulative bucket line without exemplar: {text}"
        );
        assert!(text.contains("le=\"+Inf\"} 2\n"), "{text}");
        assert!(!text.contains("trace_id"), "no exemplars attached yet");

        h.attach_exemplar(300, TraceId(0xab));
        assert_eq!(h.exemplar(9), Some((TraceId(0xab), 300)));
        assert_eq!(h.exemplars(), vec![(9, TraceId(0xab), 300)]);
        let text = registry.render_prometheus();
        assert!(
            text.contains("le=\"511\"} 2 # {trace_id=\"00000000000000ab\"} 300\n"),
            "exemplar in OpenMetrics syntax: {text}"
        );
    }

    #[test]
    fn sharded_export_matches_sorted_single_map_order() {
        let registry = MetricsRegistry::new();
        // Enough distinct series to land in several shards.
        for i in 0..32 {
            let name = format!("shardtest_metric_{:02}", i % 4);
            let labels = Labels::new(&[("series", &format!("{i:02}"))]);
            registry.counter(&name, &labels).add(i);
        }
        let values = registry.counter_values();
        let mut expected = values.clone();
        expected.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        assert_eq!(values, expected, "counter_values sorted by (name, labels)");
        let text = registry.render_prometheus();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("shardtest_metric_"))
            .collect();
        assert_eq!(lines.len(), 32);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "rendered series sorted within the page");
    }
}
