//! Span tracing on virtual time.
//!
//! A [`Tracer`] mints [`ActiveSpan`]s; finished spans accumulate as
//! [`SpanRecord`]s inside the tracer, ready for export. Spans nest
//! through an **ambient stack**: creating a span pushes its context
//! onto a thread-local stack, so any lower layer — the resilience
//! engine, a platform middleware module, a device subsystem — can call
//! [`ambient::child`] and get a correctly parented span without the
//! call path threading tracer handles through every signature. When no
//! span is open the ambient constructors return `None` and
//! instrumentation costs one thread-local read.
//!
//! All timestamps are `u64` virtual milliseconds supplied by the
//! caller (the simulated device clock in this workspace), never the
//! wall clock — traces replay bit-identically.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::TraceContext;

/// Identifies one end-to-end trace (one logical operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The M-Proxy layer a span instruments — the paper's plane vocabulary
/// extended with the call-path layers around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Plane {
    /// Application code above the uniform API.
    App,
    /// The M-Proxy semantic dispatch (the uniform method surface).
    Proxy,
    /// The resilience decorator (retries, circuit breaker, fallbacks).
    Resilience,
    /// The per-platform binding module.
    Binding,
    /// The WebView JavaScript↔Java bridge crossing.
    Bridge,
    /// The platform middleware (LocationManager, LocationProvider, …).
    Platform,
    /// The simulated device substrate (GPS engine, SMSC, network).
    Device,
}

impl Plane {
    /// Stable lowercase name, used as the Chrome trace-event category.
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::App => "app",
            Plane::Proxy => "proxy",
            Plane::Resilience => "resilience",
            Plane::Binding => "binding",
            Plane::Bridge => "bridge",
            Plane::Platform => "platform",
            Plane::Device => "device",
        }
    }
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time annotation inside a span (a retry, a circuit
/// transition, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened.
    pub name: String,
    /// When it happened, in virtual milliseconds.
    pub at_ms: u64,
}

/// A finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// The parent span, `None` for a trace root.
    pub parent_id: Option<SpanId>,
    /// Human-readable operation name, e.g. `proxy:Location.getLocation`.
    pub name: String,
    /// The layer this span instruments.
    pub plane: Plane,
    /// Start, in virtual milliseconds.
    pub start_ms: u64,
    /// End, in virtual milliseconds (`>= start_ms`).
    pub end_ms: u64,
    /// Point events recorded while the span was open.
    pub events: Vec<SpanEvent>,
    /// Key/value annotations.
    pub attrs: Vec<(String, String)>,
}

struct TracerInner {
    next_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

/// Mints spans and collects the finished records.
///
/// Cheap to clone (all clones share the same record sink), `Send +
/// Sync`, and id allocation is lock-free.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("finished", &self.inner.finished.lock().len())
            .finish()
    }
}

impl Tracer {
    /// A fresh tracer with no finished spans.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TracerInner {
                next_id: AtomicU64::new(1),
                finished: Mutex::new(Vec::new()),
            }),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a new trace with a root span and pushes it onto the
    /// ambient stack.
    pub fn root(&self, name: &str, plane: Plane, now_ms: u64) -> ActiveSpan {
        let trace_id = TraceId(self.fresh_id());
        self.start(trace_id, None, name, plane, now_ms)
    }

    /// Starts a span under an explicit parent context (same trace) and
    /// pushes it onto the ambient stack.
    pub fn child_of(
        &self,
        parent: TraceContext,
        name: &str,
        plane: Plane,
        now_ms: u64,
    ) -> ActiveSpan {
        self.start(parent.trace_id, Some(parent.span_id), name, plane, now_ms)
    }

    fn start(
        &self,
        trace_id: TraceId,
        parent_id: Option<SpanId>,
        name: &str,
        plane: Plane,
        now_ms: u64,
    ) -> ActiveSpan {
        let span_id = SpanId(self.fresh_id());
        let record = SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name: name.to_owned(),
            plane,
            start_ms: now_ms,
            end_ms: now_ms,
            events: Vec::new(),
            attrs: Vec::new(),
        };
        let span = ActiveSpan {
            tracer: self.clone(),
            record,
            ended: false,
        };
        ambient::push(self.clone(), span.context());
        span
    }

    /// A copy of every finished span, in finish order.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.inner.finished.lock().clone()
    }

    /// Drains the finished spans, leaving the tracer empty.
    pub fn take_finished(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.inner.finished.lock())
    }
}

/// An open span. Finish it with [`ActiveSpan::end`]; dropping an
/// unfinished span closes it at its start time (zero duration) so the
/// record and the ambient stack stay consistent on early returns.
pub struct ActiveSpan {
    tracer: Tracer,
    record: SpanRecord,
    ended: bool,
}

impl ActiveSpan {
    /// The propagatable identity of this span.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.record.trace_id,
            span_id: self.record.span_id,
        }
    }

    /// Records a point event at `at_ms` virtual time.
    pub fn event(&mut self, name: &str, at_ms: u64) {
        self.record.events.push(SpanEvent {
            name: name.to_owned(),
            at_ms,
        });
    }

    /// Attaches (or appends) a key/value annotation.
    pub fn attr(&mut self, key: &str, value: &str) {
        self.record.attrs.push((key.to_owned(), value.to_owned()));
    }

    /// Closes the span at `now_ms` and files the record with the
    /// tracer. Ends before the start are clamped to zero duration.
    pub fn end(mut self, now_ms: u64) {
        self.finish(now_ms);
    }

    fn finish(&mut self, now_ms: u64) {
        if self.ended {
            return;
        }
        self.ended = true;
        self.record.end_ms = now_ms.max(self.record.start_ms);
        ambient::pop(self.record.span_id);
        self.tracer.inner.finished.lock().push(self.record.clone());
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let started = self.record.start_ms;
        self.finish(started);
    }
}

/// The ambient span stack: implicit parenting for layers that are not
/// telemetry-aware in their signatures.
pub mod ambient {
    use super::{ActiveSpan, Plane, Tracer};
    use crate::context::TraceContext;

    thread_local! {
        static STACK: std::cell::RefCell<Vec<(Tracer, TraceContext)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    pub(super) fn push(tracer: Tracer, ctx: TraceContext) {
        STACK.with(|stack| stack.borrow_mut().push((tracer, ctx)));
    }

    pub(super) fn pop(span_id: super::SpanId) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in the common case; scan back for robustness when
            // spans end out of order.
            if let Some(idx) = stack.iter().rposition(|(_, ctx)| ctx.span_id == span_id) {
                stack.remove(idx);
            }
        });
    }

    /// The innermost open span's context on this thread, if any.
    pub fn current() -> Option<TraceContext> {
        STACK.with(|stack| stack.borrow().last().map(|(_, ctx)| *ctx))
    }

    fn top() -> Option<(Tracer, TraceContext)> {
        STACK.with(|stack| stack.borrow().last().cloned())
    }

    /// Opens a child of the innermost open span, using its tracer.
    /// Returns `None` (and records nothing) when no span is open —
    /// instrumented code paths are free when telemetry is off.
    pub fn child(name: &str, plane: Plane, now_ms: u64) -> Option<ActiveSpan> {
        let (tracer, ctx) = top()?;
        Some(tracer.child_of(ctx, name, plane, now_ms))
    }

    /// Opens a span under an **explicit** parent context (e.g. one that
    /// arrived over the WebView bridge as a `traceparent` string),
    /// recording into the innermost open span's tracer. Returns `None`
    /// when no tracer is ambient.
    pub fn child_of(
        parent: TraceContext,
        name: &str,
        plane: Plane,
        now_ms: u64,
    ) -> Option<ActiveSpan> {
        let (tracer, _) = top()?;
        Some(tracer.child_of(parent, name, plane, now_ms))
    }
}

/// Checks that `spans` form one connected, singly-rooted tree on one
/// trace id with monotonic virtual timestamps (children start no
/// earlier than their parent and every span ends no earlier than it
/// starts). Returns the root's [`SpanId`].
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn validate_tree(spans: &[SpanRecord]) -> Result<SpanId, String> {
    if spans.is_empty() {
        return Err("no spans recorded".into());
    }
    let trace_id = spans[0].trace_id;
    let mut by_id = std::collections::HashMap::new();
    for span in spans {
        if span.trace_id != trace_id {
            return Err(format!(
                "span {:?} is on trace {:?}, expected {trace_id:?}",
                span.span_id, span.trace_id
            ));
        }
        if span.end_ms < span.start_ms {
            return Err(format!("span {} ends before it starts", span.name));
        }
        if by_id.insert(span.span_id, span).is_some() {
            return Err(format!("duplicate span id {:?}", span.span_id));
        }
    }
    let mut roots = Vec::new();
    for span in spans {
        match span.parent_id {
            None => roots.push(span.span_id),
            Some(parent_id) => {
                let parent = by_id.get(&parent_id).ok_or_else(|| {
                    format!("span {} has unknown parent {parent_id:?}", span.name)
                })?;
                if span.start_ms < parent.start_ms {
                    return Err(format!(
                        "span {} starts at {} before its parent {} at {}",
                        span.name, span.start_ms, parent.name, parent.start_ms
                    ));
                }
            }
        }
    }
    match roots.as_slice() {
        [root] => Ok(*root),
        [] => Err("no root span (parent cycle?)".into()),
        many => Err(format!("{} roots, expected exactly one", many.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_through_the_ambient_stack() {
        let tracer = Tracer::new();
        let mut root = tracer.root("app:op", Plane::App, 10);
        let child = ambient::child("proxy:op", Plane::Proxy, 20).expect("ambient parent");
        let grandchild = ambient::child("device:op", Plane::Device, 25).expect("ambient parent");
        grandchild.end(30);
        child.end(40);
        root.attr("k", "v");
        root.end(50);
        assert_eq!(ambient::current(), None);

        let spans = tracer.take_finished();
        assert_eq!(spans.len(), 3);
        let root_id = validate_tree(&spans).expect("single tree");
        let root = spans.iter().find(|s| s.span_id == root_id).unwrap();
        assert_eq!(root.name, "app:op");
        assert_eq!((root.start_ms, root.end_ms), (10, 50));
        let device = spans.iter().find(|s| s.plane == Plane::Device).unwrap();
        let proxy = spans.iter().find(|s| s.plane == Plane::Proxy).unwrap();
        assert_eq!(device.parent_id, Some(proxy.span_id));
        assert_eq!(proxy.parent_id, Some(root_id));
    }

    #[test]
    fn no_ambient_span_means_no_recording() {
        assert!(ambient::child("x", Plane::Device, 0).is_none());
        assert_eq!(ambient::current(), None);
    }

    #[test]
    fn dropping_an_unended_span_closes_it_at_start() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.root("op", Plane::App, 7);
            span.event("boom", 7);
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end_ms, 7);
        assert_eq!(ambient::current(), None);
    }

    #[test]
    fn end_clamps_to_start() {
        let tracer = Tracer::new();
        tracer.root("op", Plane::App, 100).end(50);
        assert_eq!(tracer.finished()[0].end_ms, 100);
    }

    #[test]
    fn validate_tree_rejects_orphans_and_multiple_roots() {
        let tracer = Tracer::new();
        tracer.root("a", Plane::App, 0).end(1);
        tracer.root("b", Plane::App, 0).end(1);
        let spans = tracer.take_finished();
        assert!(validate_tree(&spans).is_err(), "two different traces");
    }

    #[test]
    fn events_carry_virtual_timestamps() {
        let tracer = Tracer::new();
        let mut span = tracer.root("op", Plane::Resilience, 0);
        span.event("retry", 120);
        span.end(200);
        let record = &tracer.finished()[0];
        assert_eq!(
            record.events,
            vec![SpanEvent {
                name: "retry".into(),
                at_ms: 120
            }]
        );
    }
}
