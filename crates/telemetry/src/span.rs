//! Span tracing on virtual time.
//!
//! A [`Tracer`] mints [`ActiveSpan`]s; finished spans accumulate as
//! [`SpanRecord`]s inside the tracer, ready for export. Spans nest
//! through an **ambient stack**: creating a span pushes its context
//! onto a thread-local stack, so any lower layer — the resilience
//! engine, a platform middleware module, a device subsystem — can call
//! [`ambient::child`] and get a correctly parented span without the
//! call path threading tracer handles through every signature. When no
//! span is open the ambient constructors return `None` and
//! instrumentation costs one thread-local read.
//!
//! The recording path is allocation-free after warm-up: span names are
//! [`SpanName`] symbols (a `&'static str` or a shared `Arc<str>`
//! resolved once at wiring time), attributes live inline in an
//! [`AttrList`] until they overflow, and a finished record is **moved**
//! into a per-thread bounded sink — there is no global
//! `Mutex<Vec<_>>` that every worker thread serialises through. Each
//! sink is a **flight-recorder ring**: it pre-allocates its full
//! retention capacity on creation and, once full, overwrites the
//! oldest record in place (evictions are counted, never silent), so
//! 50k-device fleet runs with tracing on have bounded memory while the
//! most recent history is always resident. [`Tracer::finished`]
//! stitches the per-thread sinks back together in registration order,
//! oldest record first within each sink.
//!
//! An optional [`Recorder`](crate::recorder::Recorder) installed with
//! [`Tracer::install_recorder`] adds **tail-based promotion**: when a
//! trace's root span files with an interesting outcome (error, blown
//! deadline, latency over a per-operation threshold) the whole trace
//! tree — the children are still resident in the same thread's ring —
//! is copied out into a bounded incident store before the ring can
//! overwrite it.
//!
//! All timestamps are `u64` virtual milliseconds supplied by the
//! caller (the simulated device clock in this workspace), never the
//! wall clock — traces replay bit-identically.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::context::TraceContext;
use crate::recorder::{IncidentStore, Recorder, RecorderCounters};

/// Identifies one end-to-end trace (one logical operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The M-Proxy layer a span instruments — the paper's plane vocabulary
/// extended with the call-path layers around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Plane {
    /// Application code above the uniform API.
    App,
    /// The M-Proxy semantic dispatch (the uniform method surface).
    Proxy,
    /// The resilience decorator (retries, circuit breaker, fallbacks).
    Resilience,
    /// The per-platform binding module.
    Binding,
    /// The WebView JavaScript↔Java bridge crossing.
    Bridge,
    /// The platform middleware (LocationManager, LocationProvider, …).
    Platform,
    /// The simulated device substrate (GPS engine, SMSC, network).
    Device,
}

impl Plane {
    /// Stable lowercase name, used as the Chrome trace-event category.
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::App => "app",
            Plane::Proxy => "proxy",
            Plane::Resilience => "resilience",
            Plane::Binding => "binding",
            Plane::Bridge => "bridge",
            Plane::Platform => "platform",
            Plane::Device => "device",
        }
    }
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A span name or attribute value that is free to copy on the hot
/// path: either a `&'static str` or a shared `Arc<str>` resolved once
/// at wiring time. Cloning never allocates.
#[derive(Clone)]
pub enum SpanName {
    /// A compile-time string.
    Static(&'static str),
    /// A runtime string interned behind an `Arc` (refcount bump to
    /// clone, no heap copy).
    Shared(Arc<str>),
}

impl SpanName {
    /// The underlying string.
    pub fn as_str(&self) -> &str {
        match self {
            SpanName::Static(s) => s,
            SpanName::Shared(s) => s,
        }
    }
}

impl std::ops::Deref for SpanName {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for SpanName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SpanName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq for SpanName {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SpanName {}

impl PartialEq<str> for SpanName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SpanName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl From<&'static str> for SpanName {
    fn from(s: &'static str) -> Self {
        SpanName::Static(s)
    }
}

impl From<String> for SpanName {
    fn from(s: String) -> Self {
        SpanName::Shared(s.into())
    }
}

impl From<Arc<str>> for SpanName {
    fn from(s: Arc<str>) -> Self {
        SpanName::Shared(s)
    }
}

/// How many attributes a span stores without touching the heap. Proxy
/// and platform spans carry one or two (`platform`, plus `error` or
/// `provider`); only the chatty device/net spans overflow.
const INLINE_ATTRS: usize = 2;

/// Key/value annotations with inline storage for the common case.
/// Keys are `&'static str` (attribute vocabularies are fixed at
/// compile time); values are [`SpanName`]s so static values cost
/// nothing and dynamic ones are a moved allocation, never a copy.
#[derive(Clone, Debug, Default)]
pub struct AttrList {
    inline: [Option<(&'static str, SpanName)>; INLINE_ATTRS],
    overflow: Vec<(&'static str, SpanName)>,
}

impl AttrList {
    /// Appends an annotation (duplicates are kept, like the previous
    /// `Vec<(String, String)>` representation).
    pub fn push(&mut self, key: &'static str, value: SpanName) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some((key, value));
                return;
            }
        }
        self.overflow.push((key, value));
    }

    /// Iterates `(key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &str)> + '_ {
        self.inline
            .iter()
            .filter_map(|slot| slot.as_ref())
            .chain(self.overflow.iter())
            .map(|(k, v)| (*k, v.as_str()))
    }

    /// The first value recorded under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.inline.iter().filter(|slot| slot.is_some()).count() + self.overflow.len()
    }

    /// Whether there are no annotations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for AttrList {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

/// A point-in-time annotation inside a span (a retry, a circuit
/// transition, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened.
    pub name: String,
    /// When it happened, in virtual milliseconds.
    pub at_ms: u64,
}

/// A finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// The parent span, `None` for a trace root.
    pub parent_id: Option<SpanId>,
    /// Human-readable operation name, e.g. `proxy:Location.getLocation`.
    pub name: SpanName,
    /// The layer this span instruments.
    pub plane: Plane,
    /// Start, in virtual milliseconds.
    pub start_ms: u64,
    /// End, in virtual milliseconds (`>= start_ms`).
    pub end_ms: u64,
    /// Point events recorded while the span was open.
    pub events: Vec<SpanEvent>,
    /// Key/value annotations.
    pub attrs: AttrList,
}

/// Default per-thread span retention per tracer. See
/// [`Tracer::with_retention`] for the trade-off.
pub const DEFAULT_SPAN_RETENTION: usize = 4096;

/// One thread's flight-recorder ring of finished spans for one tracer.
struct SpanSink {
    ring: Mutex<Ring>,
}

/// A fixed-capacity overwrite-oldest ring. `slots` grows (within its
/// pre-allocated capacity) until full; after that `next` is the write
/// cursor and doubles as the index of the oldest resident record.
struct Ring {
    slots: Vec<SpanRecord>,
    next: usize,
    capacity: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            next: 0,
            capacity,
        }
    }

    /// Files one record, overwriting the oldest resident record when
    /// the ring is full. Returns `true` when a record was evicted. The
    /// evicted record is dropped in place — no reallocation either way.
    fn push(&mut self, record: SpanRecord) -> bool {
        if self.slots.len() < self.capacity {
            self.slots.push(record);
            false
        } else {
            self.slots[self.next] = record;
            self.next = (self.next + 1) % self.capacity;
            true
        }
    }

    /// Copies out every resident record, oldest first.
    fn snapshot_into(&self, out: &mut Vec<SpanRecord>) {
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
    }

    /// Copies out the resident records of one trace, oldest first.
    fn collect_trace(&self, trace_id: TraceId) -> Vec<SpanRecord> {
        self.slots[self.next..]
            .iter()
            .chain(self.slots[..self.next].iter())
            .filter(|record| record.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Moves every resident record out (oldest first), leaving the
    /// ring empty but at full capacity.
    fn drain(&mut self) -> Vec<SpanRecord> {
        self.slots.rotate_left(self.next);
        self.next = 0;
        self.slots.split_off(0)
    }
}

struct TracerInner {
    /// Process-unique tracer identity; the key into each thread's
    /// local sink table.
    id: u64,
    next_id: AtomicU64,
    /// Per-sink ring capacity; each sink's buffer is allocated at this
    /// capacity once, so filing a record never reallocates.
    retention: usize,
    /// Spans overwritten because a full ring wrapped around.
    evicted: AtomicU64,
    /// Every sink ever registered, in registration order. Only locked
    /// on sink creation and on drain — never on the recording path.
    sinks: Mutex<Vec<Arc<SpanSink>>>,
    /// Tail-based promotion: classifies closing trace roots and keeps
    /// the interesting trace trees. Installed at most once.
    recorder: OnceLock<Recorder>,
    /// Registry counters mirroring the eviction/promotion totals, so
    /// the flight recorder's health shows up in a Prometheus scrape.
    counters: OnceLock<RecorderCounters>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's sink per tracer id. An entry appears the first
    /// time a thread files a span for a tracer and lives for the
    /// thread's lifetime.
    static LOCAL_SINKS: RefCell<HashMap<u64, Arc<SpanSink>>> = RefCell::new(HashMap::new());
}

/// Mints spans and collects the finished records.
///
/// Cheap to clone (all clones share the same record sinks), `Send +
/// Sync`, and both id allocation and record filing are free of global
/// locks: each recording thread owns a bounded sink per tracer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let finished: usize = self
            .inner
            .sinks
            .lock()
            .iter()
            .map(|sink| sink.ring.lock().slots.len())
            .sum();
        f.debug_struct("Tracer")
            .field("finished", &finished)
            .field("retention", &self.inner.retention)
            .field("evicted", &self.evicted_spans())
            .finish()
    }
}

impl Tracer {
    /// A fresh tracer with no finished spans and the default retention.
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_SPAN_RETENTION)
    }

    /// A tracer whose per-thread sinks keep at most `retention`
    /// finished spans each (minimum 1). Each sink allocates its full
    /// capacity up front — recording never reallocates — so pick a
    /// small cap for fleet-scale runs (thousands of tracers) and a
    /// roomy one for single-device traces you intend to export whole.
    /// A full sink overwrites its oldest record (flight-recorder
    /// semantics); evictions are counted ([`Tracer::evicted_spans`]).
    pub fn with_retention(retention: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                next_id: AtomicU64::new(1),
                retention: retention.max(1),
                evicted: AtomicU64::new(0),
                sinks: Mutex::new(Vec::new()),
                recorder: OnceLock::new(),
                counters: OnceLock::new(),
            }),
        }
    }

    /// A tracer with tail-based promotion installed from the start.
    pub fn with_recorder(retention: usize, recorder: Recorder) -> Self {
        let tracer = Self::with_retention(retention);
        tracer.install_recorder(recorder);
        tracer
    }

    /// The per-thread sink capacity.
    pub fn retention(&self) -> usize {
        self.inner.retention
    }

    /// How many spans have been overwritten by newer records because a
    /// full ring wrapped around.
    pub fn evicted_spans(&self) -> u64 {
        self.inner.evicted.load(Ordering::Relaxed)
    }

    /// Installs the tail-based promotion recorder. The first install
    /// wins; returns `false` (and changes nothing) when a recorder is
    /// already present.
    pub fn install_recorder(&self, recorder: Recorder) -> bool {
        self.inner.recorder.set(recorder).is_ok()
    }

    /// Mirrors eviction/promotion totals into registry [`Counter`]s
    /// (see [`RecorderCounters`]). The first install wins.
    pub fn install_counters(&self, counters: RecorderCounters) -> bool {
        self.inner.counters.set(counters).is_ok()
    }

    /// The installed promotion recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.recorder.get()
    }

    /// The incident store holding promoted traces, when a recorder is
    /// installed.
    pub fn incident_store(&self) -> Option<&Arc<IncidentStore>> {
        self.inner.recorder.get().map(Recorder::store)
    }

    /// The process-unique tracer identity (keys thread-local state).
    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a new trace with a root span and pushes it onto the
    /// ambient stack.
    pub fn root(&self, name: impl Into<SpanName>, plane: Plane, now_ms: u64) -> ActiveSpan {
        let trace_id = TraceId(self.fresh_id());
        self.start(trace_id, None, name.into(), plane, now_ms)
    }

    /// Starts a span under an explicit parent context (same trace) and
    /// pushes it onto the ambient stack.
    pub fn child_of(
        &self,
        parent: TraceContext,
        name: impl Into<SpanName>,
        plane: Plane,
        now_ms: u64,
    ) -> ActiveSpan {
        self.start(
            parent.trace_id,
            Some(parent.span_id),
            name.into(),
            plane,
            now_ms,
        )
    }

    fn start(
        &self,
        trace_id: TraceId,
        parent_id: Option<SpanId>,
        name: SpanName,
        plane: Plane,
        now_ms: u64,
    ) -> ActiveSpan {
        let span_id = SpanId(self.fresh_id());
        let record = SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name,
            plane,
            start_ms: now_ms,
            end_ms: now_ms,
            events: Vec::new(),
            attrs: AttrList::default(),
        };
        let span = ActiveSpan {
            tracer: self.clone(),
            record: Some(record),
        };
        ambient::push(self.clone(), span.context());
        span
    }

    /// Moves a finished record into this thread's ring for this
    /// tracer, creating (and registering) the sink on first use. When
    /// the ring is full the oldest record is overwritten in place.
    ///
    /// Tail-based promotion happens here: a **root** record closing
    /// means its trace is complete — in this synchronous world every
    /// child filed into the same thread-local ring before it — so the
    /// installed [`Recorder`] classifies the root and, if the outcome
    /// is interesting, the trace tree is copied out *before* the root
    /// is inserted (the collected set is exactly the resident children
    /// plus the root).
    fn file(&self, record: SpanRecord) {
        let promotion = LOCAL_SINKS.with(|sinks| {
            let mut sinks = sinks.borrow_mut();
            let sink = sinks.entry(self.inner.id).or_insert_with(|| {
                let sink = Arc::new(SpanSink {
                    ring: Mutex::new(Ring::with_capacity(self.inner.retention)),
                });
                self.inner.sinks.lock().push(Arc::clone(&sink));
                sink
            });
            let mut ring = sink.ring.lock();
            let promotion = match (record.parent_id, self.inner.recorder.get()) {
                (None, Some(recorder)) => recorder.policy().classify(&record).map(|reason| {
                    let mut spans = ring.collect_trace(record.trace_id);
                    spans.push(record.clone());
                    (reason, spans)
                }),
                _ => None,
            };
            if ring.push(record) {
                self.inner.evicted.fetch_add(1, Ordering::Relaxed);
                if let Some(counters) = self.inner.counters.get() {
                    counters.evicted.inc();
                }
            }
            promotion
        });
        if let Some((reason, spans)) = promotion {
            if let Some(recorder) = self.inner.recorder.get() {
                recorder.promote(self.inner.id, reason, spans, self.inner.counters.get());
            }
        }
    }

    /// A copy of every finished span: oldest-first within each sink,
    /// sinks in registration order (on one thread that is plain finish
    /// order for the retained suffix).
    pub fn finished(&self) -> Vec<SpanRecord> {
        let sinks = self.inner.sinks.lock();
        let mut out = Vec::new();
        for sink in sinks.iter() {
            sink.ring.lock().snapshot_into(&mut out);
        }
        out
    }

    /// Drains the finished spans (oldest-first within each sink),
    /// leaving the tracer empty. The rings keep their capacity, so
    /// recording after a drain still does not reallocate.
    pub fn take_finished(&self) -> Vec<SpanRecord> {
        let sinks = self.inner.sinks.lock();
        let mut out = Vec::new();
        for sink in sinks.iter() {
            let mut drained = sink.ring.lock().drain();
            if out.is_empty() {
                out = drained;
            } else {
                out.append(&mut drained);
            }
        }
        out
    }
}

/// An open span. Finish it with [`ActiveSpan::end`]; dropping an
/// unfinished span closes it at its start time (zero duration) so the
/// record and the ambient stack stay consistent on early returns.
pub struct ActiveSpan {
    tracer: Tracer,
    /// `Some` while open; `finish` moves the record out into the sink,
    /// so closing a span copies nothing.
    record: Option<SpanRecord>,
}

impl ActiveSpan {
    /// The open record. Infallible by construction: `record` is `Some`
    /// from `Tracer::span` until `finish`, and `finish` is reachable
    /// only through `end(self)` (which consumes the span) or `Drop` —
    /// no `&self` method can observe a closed span.
    fn record(&self) -> &SpanRecord {
        self.record.as_ref().expect("span is open until end/drop")
    }

    /// Mutable twin of [`Self::record`]; same invariant.
    fn record_mut(&mut self) -> &mut SpanRecord {
        self.record.as_mut().expect("span is open until end/drop")
    }

    /// The propagatable identity of this span.
    pub fn context(&self) -> TraceContext {
        let record = self.record();
        TraceContext {
            trace_id: record.trace_id,
            span_id: record.span_id,
        }
    }

    /// Records a point event at `at_ms` virtual time.
    pub fn event(&mut self, name: &str, at_ms: u64) {
        self.record_mut().events.push(SpanEvent {
            name: name.to_owned(),
            at_ms,
        });
    }

    /// Attaches (or appends) a key/value annotation. Static values are
    /// free; pass owned `String`s for dynamic ones — they are moved,
    /// not copied.
    pub fn attr(&mut self, key: &'static str, value: impl Into<SpanName>) {
        self.record_mut().attrs.push(key, value.into());
    }

    /// Closes the span at `now_ms` and files the record with the
    /// tracer. Ends before the start are clamped to zero duration.
    pub fn end(mut self, now_ms: u64) {
        self.finish(now_ms);
    }

    fn finish(&mut self, now_ms: u64) {
        let Some(mut record) = self.record.take() else {
            return;
        };
        record.end_ms = now_ms.max(record.start_ms);
        ambient::pop(record.span_id);
        self.tracer.file(record);
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(record) = &self.record {
            let started = record.start_ms;
            self.finish(started);
        }
    }
}

/// The ambient span stack: implicit parenting for layers that are not
/// telemetry-aware in their signatures.
pub mod ambient {
    use super::{ActiveSpan, Plane, SpanName, Tracer};
    use crate::context::TraceContext;

    thread_local! {
        static STACK: std::cell::RefCell<Vec<(Tracer, TraceContext)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    pub(super) fn push(tracer: Tracer, ctx: TraceContext) {
        STACK.with(|stack| stack.borrow_mut().push((tracer, ctx)));
    }

    pub(super) fn pop(span_id: super::SpanId) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in the common case; scan back for robustness when
            // spans end out of order.
            if let Some(idx) = stack.iter().rposition(|(_, ctx)| ctx.span_id == span_id) {
                stack.remove(idx);
            }
        });
    }

    /// The innermost open span's context on this thread, if any.
    pub fn current() -> Option<TraceContext> {
        STACK.with(|stack| stack.borrow().last().map(|(_, ctx)| *ctx))
    }

    /// Whether any span is open on this thread. Lets callers skip
    /// building a dynamic span name (a `format!`) when it would go
    /// nowhere.
    pub fn is_active() -> bool {
        STACK.with(|stack| !stack.borrow().is_empty())
    }

    fn top() -> Option<(Tracer, TraceContext)> {
        STACK.with(|stack| stack.borrow().last().cloned())
    }

    /// Opens a child of the innermost open span, using its tracer.
    /// Returns `None` (and records nothing) when no span is open —
    /// instrumented code paths are free when telemetry is off. The
    /// name is only converted when a span is actually opened.
    pub fn child(name: impl Into<SpanName>, plane: Plane, now_ms: u64) -> Option<ActiveSpan> {
        let (tracer, ctx) = top()?;
        Some(tracer.child_of(ctx, name, plane, now_ms))
    }

    /// Opens a span under an **explicit** parent context (e.g. one that
    /// arrived over the WebView bridge as a `traceparent` string),
    /// recording into the innermost open span's tracer. Returns `None`
    /// when no tracer is ambient.
    pub fn child_of(
        parent: TraceContext,
        name: impl Into<SpanName>,
        plane: Plane,
        now_ms: u64,
    ) -> Option<ActiveSpan> {
        let (tracer, _) = top()?;
        Some(tracer.child_of(parent, name, plane, now_ms))
    }
}

/// Checks that `spans` form one connected, singly-rooted tree on one
/// trace id with monotonic virtual timestamps (children start no
/// earlier than their parent and every span ends no earlier than it
/// starts). Returns the root's [`SpanId`].
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn validate_tree(spans: &[SpanRecord]) -> Result<SpanId, String> {
    if spans.is_empty() {
        return Err("no spans recorded".into());
    }
    let trace_id = spans[0].trace_id;
    let mut by_id = std::collections::HashMap::new();
    for span in spans {
        if span.trace_id != trace_id {
            return Err(format!(
                "span {:?} is on trace {:?}, expected {trace_id:?}",
                span.span_id, span.trace_id
            ));
        }
        if span.end_ms < span.start_ms {
            return Err(format!("span {} ends before it starts", span.name));
        }
        if by_id.insert(span.span_id, span).is_some() {
            return Err(format!("duplicate span id {:?}", span.span_id));
        }
    }
    let mut roots = Vec::new();
    for span in spans {
        match span.parent_id {
            None => roots.push(span.span_id),
            Some(parent_id) => {
                let parent = by_id.get(&parent_id).ok_or_else(|| {
                    format!("span {} has unknown parent {parent_id:?}", span.name)
                })?;
                if span.start_ms < parent.start_ms {
                    return Err(format!(
                        "span {} starts at {} before its parent {} at {}",
                        span.name, span.start_ms, parent.name, parent.start_ms
                    ));
                }
            }
        }
    }
    match roots.as_slice() {
        [root] => Ok(*root),
        [] => Err("no root span (parent cycle?)".into()),
        many => Err(format!("{} roots, expected exactly one", many.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_through_the_ambient_stack() {
        let tracer = Tracer::new();
        let mut root = tracer.root("app:op", Plane::App, 10);
        let child = ambient::child("proxy:op", Plane::Proxy, 20).expect("ambient parent");
        let grandchild = ambient::child("device:op", Plane::Device, 25).expect("ambient parent");
        grandchild.end(30);
        child.end(40);
        root.attr("k", "v");
        root.end(50);
        assert_eq!(ambient::current(), None);

        let spans = tracer.take_finished();
        assert_eq!(spans.len(), 3);
        let root_id = validate_tree(&spans).expect("single tree");
        let root = spans.iter().find(|s| s.span_id == root_id).unwrap();
        assert_eq!(root.name, "app:op");
        assert_eq!((root.start_ms, root.end_ms), (10, 50));
        let device = spans.iter().find(|s| s.plane == Plane::Device).unwrap();
        let proxy = spans.iter().find(|s| s.plane == Plane::Proxy).unwrap();
        assert_eq!(device.parent_id, Some(proxy.span_id));
        assert_eq!(proxy.parent_id, Some(root_id));
    }

    #[test]
    fn no_ambient_span_means_no_recording() {
        assert!(ambient::child("x", Plane::Device, 0).is_none());
        assert_eq!(ambient::current(), None);
        assert!(!ambient::is_active());
    }

    #[test]
    fn dropping_an_unended_span_closes_it_at_start() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.root("op", Plane::App, 7);
            span.event("boom", 7);
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end_ms, 7);
        assert_eq!(ambient::current(), None);
    }

    #[test]
    fn end_clamps_to_start() {
        let tracer = Tracer::new();
        tracer.root("op", Plane::App, 100).end(50);
        assert_eq!(tracer.finished()[0].end_ms, 100);
    }

    #[test]
    fn validate_tree_rejects_orphans_and_multiple_roots() {
        let tracer = Tracer::new();
        tracer.root("a", Plane::App, 0).end(1);
        tracer.root("b", Plane::App, 0).end(1);
        let spans = tracer.take_finished();
        assert!(validate_tree(&spans).is_err(), "two different traces");
    }

    #[test]
    fn events_carry_virtual_timestamps() {
        let tracer = Tracer::new();
        let mut span = tracer.root("op", Plane::Resilience, 0);
        span.event("retry", 120);
        span.end(200);
        let record = &tracer.finished()[0];
        assert_eq!(
            record.events,
            vec![SpanEvent {
                name: "retry".into(),
                at_ms: 120
            }]
        );
    }

    #[test]
    fn attrs_overflow_past_the_inline_slots_in_order() {
        let mut attrs = AttrList::default();
        assert!(attrs.is_empty());
        attrs.push("a", SpanName::Static("1"));
        attrs.push("b", SpanName::Static("2"));
        attrs.push("c", SpanName::from(String::from("3")));
        attrs.push("a", SpanName::Static("4"));
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs.get("a"), Some("1"), "first value wins for get");
        let collected: Vec<_> = attrs.iter().collect();
        assert_eq!(
            collected,
            vec![("a", "1"), ("b", "2"), ("c", "3"), ("a", "4")]
        );
    }

    #[test]
    fn dynamic_and_static_names_compare_by_content() {
        let owned = SpanName::from(String::from("proxy:op"));
        assert_eq!(owned, SpanName::Static("proxy:op"));
        assert_eq!(owned, "proxy:op");
        assert_eq!(owned.as_str(), "proxy:op");
        assert!(owned.contains("proxy"));
        assert_eq!(format!("{owned}"), "proxy:op");
    }

    #[test]
    fn retention_cap_overwrites_oldest_and_counts_evictions() {
        let tracer = Tracer::with_retention(3);
        assert_eq!(tracer.retention(), 3);
        for i in 0..5 {
            tracer.root("op", Plane::App, i).end(i + 1);
        }
        let kept = tracer.finished();
        assert_eq!(kept.len(), 3, "bounded by retention");
        // Flight-recorder semantics: the two *oldest* spans were
        // overwritten and the retained suffix reads oldest-first.
        let starts: Vec<u64> = kept.iter().map(|s| s.start_ms).collect();
        assert_eq!(starts, vec![2, 3, 4]);
        assert_eq!(tracer.evicted_spans(), 2);
        // Draining empties the ring: recording resumes at the front.
        assert_eq!(tracer.take_finished().len(), 3);
        tracer.root("op", Plane::App, 9).end(10);
        assert_eq!(tracer.finished().len(), 1);
        assert_eq!(tracer.evicted_spans(), 2, "no new evictions after drain");
    }

    #[test]
    fn wrapped_ring_drains_oldest_first_and_keeps_capacity() {
        let tracer = Tracer::with_retention(4);
        for i in 0..11 {
            tracer.root("op", Plane::App, i).end(i + 1);
        }
        assert_eq!(tracer.evicted_spans(), 7);
        let drained = tracer.take_finished();
        let starts: Vec<u64> = drained.iter().map(|s| s.start_ms).collect();
        assert_eq!(starts, vec![7, 8, 9, 10]);
        // The ring was reset, not shrunk: it fills and wraps again.
        for i in 20..25 {
            tracer.root("op", Plane::App, i).end(i + 1);
        }
        let starts: Vec<u64> = tracer.finished().iter().map(|s| s.start_ms).collect();
        assert_eq!(starts, vec![21, 22, 23, 24]);
        assert_eq!(tracer.evicted_spans(), 8);
    }

    #[test]
    fn worker_threads_record_without_a_shared_sink() {
        let tracer = Tracer::new();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let root = tracer.root("op", Plane::App, worker * 1_000 + i);
                        root.end(worker * 1_000 + i + 1);
                    }
                });
            }
        });
        let spans = tracer.finished();
        assert_eq!(spans.len(), 200, "every span landed in some sink");
        // Per-sink order is preserved: start times are monotonic within
        // each worker's contiguous block.
        let mut seen = 0;
        while seen < spans.len() {
            let base = spans[seen].start_ms;
            for offset in 0..50 {
                assert_eq!(spans[seen + offset].start_ms, base + offset as u64);
            }
            seen += 50;
        }
    }
}
