//! Trace context propagation across serialization boundaries.
//!
//! Inside one address space the ambient span stack (see
//! [`crate::span::ambient`]) links layers implicitly. The WebView
//! JavaScript bridge, however, only carries marshalled values — the
//! paper's footnote 8 constraint — so the trace context crosses it as a
//! string in the W3C `traceparent` shape:
//!
//! ```text
//! 00-<32 hex trace id>-<16 hex span id>-01
//! ```

use std::fmt;

use crate::span::{SpanId, TraceId};

/// The propagatable identity of a span: which trace it belongs to and
/// which span is the parent of whatever gets created on the far side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace this context belongs to.
    pub trace_id: TraceId,
    /// The span that children created from this context hang off.
    pub span_id: SpanId,
}

impl TraceContext {
    /// Renders the context as a W3C-style `traceparent` header value.
    pub fn traceparent(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id.0, self.span_id.0)
    }

    /// Parses a `traceparent` header value back into a context.
    /// Returns `None` for malformed input (wrong field count, wrong
    /// widths, non-hex digits, or an all-zero id).
    pub fn parse_traceparent(value: &str) -> Option<Self> {
        let mut parts = value.split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some()
            || version.len() != 2
            || trace.len() != 32
            || span.len() != 16
            || flags.len() != 2
        {
            return None;
        }
        let trace_id = u64::from_str_radix(trace.get(16..)?, 16).ok()?;
        // The repro's trace ids are 64-bit; the upper half must be zero.
        if u64::from_str_radix(trace.get(..16)?, 16).ok()? != 0 {
            return None;
        }
        let span_id = u64::from_str_radix(span, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(Self {
            trace_id: TraceId(trace_id),
            span_id: SpanId(span_id),
        })
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.traceparent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: TraceId(0xDEAD_BEEF),
            span_id: SpanId(42),
        };
        let wire = ctx.traceparent();
        assert_eq!(
            wire,
            "00-000000000000000000000000deadbeef-000000000000002a-01"
        );
        assert_eq!(TraceContext::parse_traceparent(&wire), Some(ctx));
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "00-abc-def-01",
            "00-000000000000000000000000deadbeef-000000000000002a",
            "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-000000000000002a-01",
            "00-00000000000000000000000000000000-0000000000000000-01",
            "00-100000000000000000000000deadbeef-000000000000002a-01",
            "00-000000000000000000000000deadbeef-000000000000002a-01-extra",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }
}
