//! Trace context propagation across serialization boundaries.
//!
//! Inside one address space the ambient span stack (see
//! [`crate::span::ambient`]) links layers implicitly. The WebView
//! JavaScript bridge, however, only carries marshalled values — the
//! paper's footnote 8 constraint — so the trace context crosses it as a
//! string in the W3C `traceparent` shape:
//!
//! ```text
//! 00-<32 hex trace id>-<16 hex span id>-01
//! ```

use std::fmt;

use crate::span::{SpanId, TraceId};

/// The propagatable identity of a span: which trace it belongs to and
/// which span is the parent of whatever gets created on the far side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace this context belongs to.
    pub trace_id: TraceId,
    /// The span that children created from this context hang off.
    pub span_id: SpanId,
}

impl TraceContext {
    /// Renders the context as a W3C-style `traceparent` header value.
    ///
    /// Hot paths that must not allocate render into a
    /// [`TraceparentBuf`] instead; this owned form is the convenience
    /// wrapper over it.
    pub fn traceparent(&self) -> String {
        TraceparentBuf::render(self).as_str().to_owned()
    }

    /// Parses a `traceparent` header value back into a context.
    /// Returns `None` for malformed input (wrong field count, wrong
    /// widths, non-hex digits, or an all-zero id).
    pub fn parse_traceparent(value: &str) -> Option<Self> {
        let mut parts = value.split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some()
            || version.len() != 2
            || trace.len() != 32
            || span.len() != 16
            || flags.len() != 2
        {
            return None;
        }
        let trace_id = u64::from_str_radix(trace.get(16..)?, 16).ok()?;
        // The repro's trace ids are 64-bit; the upper half must be zero.
        if u64::from_str_radix(trace.get(..16)?, 16).ok()? != 0 {
            return None;
        }
        let span_id = u64::from_str_radix(span, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(Self {
            trace_id: TraceId(trace_id),
            span_id: SpanId(span_id),
        })
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(TraceparentBuf::render(self).as_str())
    }
}

/// A `traceparent` header value rendered into a fixed 55-byte stack
/// buffer — `00-` + 32 hex + `-` + 16 hex + `-01` — so the WebView
/// bridge can marshal trace context without touching the heap.
#[derive(Clone, Copy)]
pub struct TraceparentBuf([u8; 55]);

impl TraceparentBuf {
    /// Renders a context. The repro's trace ids are 64-bit, so the
    /// upper 16 hex digits of the trace-id field are always zero —
    /// matching what [`TraceContext::parse_traceparent`] accepts.
    pub fn render(ctx: &TraceContext) -> Self {
        let mut buf = [b'0'; 55];
        buf[2] = b'-';
        write_hex(&mut buf[19..35], ctx.trace_id.0);
        buf[35] = b'-';
        write_hex(&mut buf[36..52], ctx.span_id.0);
        buf[52] = b'-';
        buf[54] = b'1';
        Self(buf)
    }

    /// The rendered header as a borrowed string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: the buffer is filled exclusively with ASCII hex
        // digits and dashes.
        core::str::from_utf8(&self.0).expect("traceparent buffer is ASCII")
    }
}

impl fmt::Debug for TraceparentBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Writes `value` as exactly 16 lowercase hex digits into `out`.
fn write_hex(out: &mut [u8], value: u64) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    for (i, slot) in out.iter_mut().enumerate() {
        let shift = 60 - 4 * i;
        *slot = DIGITS[((value >> shift) & 0xF) as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: TraceId(0xDEAD_BEEF),
            span_id: SpanId(42),
        };
        let wire = ctx.traceparent();
        assert_eq!(
            wire,
            "00-000000000000000000000000deadbeef-000000000000002a-01"
        );
        assert_eq!(TraceContext::parse_traceparent(&wire), Some(ctx));
    }

    #[test]
    fn stack_buffer_matches_the_owned_rendering() {
        for (trace, span) in [(1, 1), (0xDEAD_BEEF, 42), (u64::MAX, u64::MAX >> 3)] {
            let ctx = TraceContext {
                trace_id: TraceId(trace),
                span_id: SpanId(span),
            };
            let buf = TraceparentBuf::render(&ctx);
            assert_eq!(buf.as_str(), ctx.traceparent());
            assert_eq!(buf.as_str().len(), 55);
            assert_eq!(TraceContext::parse_traceparent(buf.as_str()), Some(ctx));
        }
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "00-abc-def-01",
            "00-000000000000000000000000deadbeef-000000000000002a",
            "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-000000000000002a-01",
            "00-00000000000000000000000000000000-0000000000000000-01",
            "00-100000000000000000000000deadbeef-000000000000002a-01",
            "00-000000000000000000000000deadbeef-000000000000002a-01-extra",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }
}
