//! Declarative service-level objectives evaluated on virtual time.
//!
//! An [`SloObjective`] names a `(proxy, method, platform)` call path
//! and a target: **availability** (at least `target_ppm` of calls
//! succeed) or a **latency quantile** (at least `target_ppm` of
//! successful calls complete within `threshold_ms`). The [`SloEngine`]
//! evaluates objectives with the multi-window **burn-rate** method:
//! each objective keeps two sliding windows of good/bad counts — a
//! fast 5-minute window (catches sharp regressions quickly) and a slow
//! 1-hour window (filters blips) — and an objective is *breached* only
//! when **both** windows burn error budget faster than the configured
//! threshold. All arithmetic is integer (parts-per-million targets,
//! milli-scaled burn rates), so reports are `Eq`-comparable and
//! bit-identical across reruns and worker splits.
//!
//! The recording path is built for the traced decorators: an
//! [`SloRecorder`] is resolved once at wiring time (like the cached
//! `CallInstruments` handles) and [`SloRecorder::record`] touches only
//! pre-allocated atomics — no locks, no allocation — so objectives can
//! stay on in the zero-allocation configurations.
//!
//! Windows slide on **virtual milliseconds**: slots are keyed by epoch
//! (`now_ms / slot_ms`) and lazily reset when a new epoch lands on
//! them, so there is no background task and idle objectives cost
//! nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::Value;

use crate::recorder::IncidentStore;

/// Fast window: 5 virtual minutes, 10-second slots.
pub const FAST_WINDOW_MS: u64 = 5 * 60 * 1000;
const FAST_SLOT_MS: u64 = 10 * 1000;
/// Slow window: 1 virtual hour, 60-second slots.
pub const SLOW_WINDOW_MS: u64 = 60 * 60 * 1000;
const SLOW_SLOT_MS: u64 = 60 * 1000;

/// Default breach threshold: both windows burning budget at ≥ 1.0×
/// the sustainable rate (1000 milli-burn).
pub const DEFAULT_BURN_THRESHOLD_MILLI: u64 = 1000;

/// Burn rates are capped here so they stay exactly representable when
/// rendered through an `f64` JSON number.
pub const MAX_BURN_MILLI: u64 = 1_000_000_000;

/// What an objective promises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTarget {
    /// At least `target_ppm` parts-per-million of calls succeed.
    Availability {
        /// e.g. `990_000` for 99%.
        target_ppm: u32,
    },
    /// At least `target_ppm` parts-per-million of **successful** calls
    /// complete within `threshold_ms` virtual milliseconds (errors are
    /// the availability objective's business).
    Latency {
        /// The latency bound.
        threshold_ms: u64,
        /// e.g. `990_000` for "p99 ≤ threshold".
        target_ppm: u32,
    },
}

impl SloTarget {
    /// The promised good fraction in parts-per-million.
    pub fn target_ppm(&self) -> u32 {
        match self {
            SloTarget::Availability { target_ppm } => *target_ppm,
            SloTarget::Latency { target_ppm, .. } => *target_ppm,
        }
    }

    /// Stable kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SloTarget::Availability { .. } => "availability",
            SloTarget::Latency { .. } => "latency",
        }
    }
}

/// One declarative objective on a `(proxy, method, platform)` call
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloObjective {
    /// Report-facing name, e.g. `http-request-p99`.
    pub name: String,
    /// Proxy interface name as instrumented, e.g. `Http`.
    pub proxy: String,
    /// Method name, e.g. `request`.
    pub method: String,
    /// Platform id, e.g. `android`.
    pub platform: String,
    /// The promise.
    pub target: SloTarget,
}

struct Slot {
    epoch: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

/// A sliding window of good/bad counts in epoch-keyed slots. A slot is
/// lazily reset when a sample from a newer epoch lands on it; totals
/// only read slots whose stored epoch is still inside the window.
struct WindowRing {
    slot_ms: u64,
    slots: Vec<Slot>,
}

impl WindowRing {
    fn new(window_ms: u64, slot_ms: u64) -> Self {
        let slots = (window_ms / slot_ms) as usize;
        Self {
            slot_ms,
            slots: (0..slots.max(1))
                .map(|_| Slot {
                    epoch: AtomicU64::new(0),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn record(&self, now_ms: u64, good: bool) {
        let epoch = now_ms / self.slot_ms;
        let slot = &self.slots[(epoch as usize) % self.slots.len()];
        if slot.epoch.load(Ordering::Relaxed) != epoch {
            slot.epoch.store(epoch, Ordering::Relaxed);
            slot.good.store(0, Ordering::Relaxed);
            slot.bad.store(0, Ordering::Relaxed);
        }
        if good {
            slot.good.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(good, bad)` over the slots still inside the window at
    /// `now_ms`.
    fn totals(&self, now_ms: u64) -> (u64, u64) {
        let current = now_ms / self.slot_ms;
        let span = self.slots.len() as u64;
        let mut good = 0;
        let mut bad = 0;
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch <= current && epoch + span > current {
                good += slot.good.load(Ordering::Relaxed);
                bad += slot.bad.load(Ordering::Relaxed);
            }
        }
        (good, bad)
    }
}

struct ObjectiveState {
    objective: SloObjective,
    fast: WindowRing,
    slow: WindowRing,
}

impl ObjectiveState {
    fn record(&self, now_ms: u64, ok: bool, latency_ms: u64) {
        let good = match self.objective.target {
            SloTarget::Availability { .. } => ok,
            SloTarget::Latency { threshold_ms, .. } => {
                if !ok {
                    return; // errors don't consume the latency budget
                }
                latency_ms <= threshold_ms
            }
        };
        self.fast.record(now_ms, good);
        self.slow.record(now_ms, good);
    }
}

/// How fast the error budget is burning: `1000` means exactly the
/// sustainable rate (the whole budget spent over the objective's
/// horizon), `14_000` is the classic "page now" fast burn. Returns `0`
/// for an empty window and saturates at [`MAX_BURN_MILLI`].
pub fn burn_milli(good: u64, bad: u64, target_ppm: u32) -> u64 {
    let total = good + bad;
    if total == 0 || bad == 0 {
        return 0;
    }
    let budget_ppm = 1_000_000u128.saturating_sub(u128::from(target_ppm));
    if budget_ppm == 0 {
        return MAX_BURN_MILLI;
    }
    let burn = (u128::from(bad) * 1_000_000 * 1000) / (u128::from(total) * budget_ppm);
    burn.min(u128::from(MAX_BURN_MILLI)) as u64
}

/// Good/bad counts for one window of one objective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Samples that met the target.
    pub good: u64,
    /// Samples that burned budget.
    pub bad: u64,
}

impl WindowCounts {
    fn merge(&mut self, other: &WindowCounts) {
        self.good += other.good;
        self.bad += other.bad;
    }
}

/// One objective's evaluated state inside an [`SloReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    /// The objective.
    pub objective: SloObjective,
    /// The 5-minute window.
    pub fast: WindowCounts,
    /// The 1-hour window.
    pub slow: WindowCounts,
}

impl SloStatus {
    /// Fast-window burn rate, milli-scaled.
    pub fn fast_burn_milli(&self) -> u64 {
        burn_milli(
            self.fast.good,
            self.fast.bad,
            self.objective.target.target_ppm(),
        )
    }

    /// Slow-window burn rate, milli-scaled.
    pub fn slow_burn_milli(&self) -> u64 {
        burn_milli(
            self.slow.good,
            self.slow.bad,
            self.objective.target.target_ppm(),
        )
    }

    /// Multi-window breach: both windows burning at or above
    /// `threshold_milli`.
    pub fn breached(&self, threshold_milli: u64) -> bool {
        self.fast.bad > 0
            && self.fast_burn_milli() >= threshold_milli
            && self.slow_burn_milli() >= threshold_milli
    }
}

/// A point-in-time burn-rate report over every objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloReport {
    /// Evaluation time, virtual milliseconds.
    pub now_ms: u64,
    /// The breach threshold statuses were (or will be) judged against.
    pub burn_threshold_milli: u64,
    /// One status per objective, in engine declaration order.
    pub statuses: Vec<SloStatus>,
}

impl SloReport {
    /// The breached objectives, in declaration order.
    pub fn breached(&self) -> Vec<&SloStatus> {
        self.statuses
            .iter()
            .filter(|s| s.breached(self.burn_threshold_milli))
            .collect()
    }

    /// Folds another report (same objectives, same order) into this
    /// one by summing window counts — how a fleet merges per-device
    /// engines into one deterministic digest.
    ///
    /// # Errors
    ///
    /// When the objective lists don't match.
    pub fn merge(&mut self, other: &SloReport) -> Result<(), String> {
        if self.statuses.len() != other.statuses.len() {
            return Err(format!(
                "objective count mismatch: {} vs {}",
                self.statuses.len(),
                other.statuses.len()
            ));
        }
        for (mine, theirs) in self.statuses.iter_mut().zip(&other.statuses) {
            if mine.objective != theirs.objective {
                return Err(format!(
                    "objective mismatch: {} vs {}",
                    mine.objective.name, theirs.objective.name
                ));
            }
            mine.fast.merge(&theirs.fast);
            mine.slow.merge(&theirs.slow);
        }
        self.now_ms = self.now_ms.max(other.now_ms);
        Ok(())
    }
}

/// Pre-resolved recording handle for one call path: the objectives
/// that watch it. Resolved once at wiring time; recording is atomics
/// only.
#[derive(Clone, Default)]
pub struct SloRecorder {
    states: Vec<Arc<ObjectiveState>>,
}

impl SloRecorder {
    /// Whether any objective watches this call path.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Feeds one finished call into every watching objective.
    pub fn record(&self, now_ms: u64, ok: bool, latency_ms: u64) {
        for state in &self.states {
            state.record(now_ms, ok, latency_ms);
        }
    }
}

/// Evaluates declarative objectives on multi-window burn rates.
pub struct SloEngine {
    burn_threshold_milli: u64,
    states: Vec<Arc<ObjectiveState>>,
}

impl SloEngine {
    /// An engine over `objectives` with the default breach threshold.
    pub fn new(objectives: Vec<SloObjective>) -> Self {
        Self {
            burn_threshold_milli: DEFAULT_BURN_THRESHOLD_MILLI,
            states: objectives
                .into_iter()
                .map(|objective| {
                    Arc::new(ObjectiveState {
                        objective,
                        fast: WindowRing::new(FAST_WINDOW_MS, FAST_SLOT_MS),
                        slow: WindowRing::new(SLOW_WINDOW_MS, SLOW_SLOT_MS),
                    })
                })
                .collect(),
        }
    }

    /// Overrides the breach threshold (milli-scaled burn).
    pub fn with_burn_threshold(mut self, threshold_milli: u64) -> Self {
        self.burn_threshold_milli = threshold_milli.max(1);
        self
    }

    /// The breach threshold.
    pub fn burn_threshold_milli(&self) -> u64 {
        self.burn_threshold_milli
    }

    /// The declared objectives, in declaration order.
    pub fn objectives(&self) -> Vec<SloObjective> {
        self.states.iter().map(|s| s.objective.clone()).collect()
    }

    /// Resolves the recording handle for one call path (wiring time,
    /// not per call).
    pub fn recorder(&self, proxy: &str, method: &str, platform: &str) -> SloRecorder {
        SloRecorder {
            states: self
                .states
                .iter()
                .filter(|s| {
                    s.objective.proxy == proxy
                        && s.objective.method == method
                        && s.objective.platform == platform
                })
                .cloned()
                .collect(),
        }
    }

    /// Evaluates every objective at `now_ms`.
    pub fn report(&self, now_ms: u64) -> SloReport {
        SloReport {
            now_ms,
            burn_threshold_milli: self.burn_threshold_milli,
            statuses: self
                .states
                .iter()
                .map(|state| {
                    let (fast_good, fast_bad) = state.fast.totals(now_ms);
                    let (slow_good, slow_bad) = state.slow.totals(now_ms);
                    SloStatus {
                        objective: state.objective.clone(),
                        fast: WindowCounts {
                            good: fast_good,
                            bad: fast_bad,
                        },
                        slow: WindowCounts {
                            good: slow_good,
                            bad: slow_bad,
                        },
                    }
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("objectives", &self.states.len())
            .field("burn_threshold_milli", &self.burn_threshold_milli)
            .finish()
    }
}

/// A promoted trace linked to the objective watching its call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloTraceLink {
    /// Proxy interface name parsed from the root span.
    pub proxy: String,
    /// Method name parsed from the root span.
    pub method: String,
    /// Platform from the root span's `platform` attribute (empty when
    /// absent).
    pub platform: String,
    /// The promoted trace id, 16 hex digits.
    pub trace_id_hex: String,
    /// The promotion reason's label.
    pub reason: String,
}

/// Builds trace links from incident stores: each promoted root span
/// named `proxy:Interface.method` (with a `platform` attribute) links
/// to the objectives on that call path.
pub fn links_from_incidents(stores: &[Arc<IncidentStore>]) -> Vec<SloTraceLink> {
    let mut links = Vec::new();
    for store in stores {
        for trace in store.traces() {
            let name = trace.root_name.as_str();
            let Some(rest) = name.strip_prefix("proxy:") else {
                continue;
            };
            let Some((proxy, method)) = rest.split_once('.') else {
                continue;
            };
            let root = match trace.spans.last() {
                Some(root) => root,
                None => continue,
            };
            links.push(SloTraceLink {
                proxy: proxy.to_owned(),
                method: method.to_owned(),
                platform: root.attrs.get("platform").unwrap_or("").to_owned(),
                trace_id_hex: format!("{:016x}", trace.trace_id.0),
                reason: trace.reason.label().to_owned(),
            });
        }
    }
    links
}

/// Maximum trace links rendered per objective in the JSON report.
const MAX_LINKS_PER_OBJECTIVE: usize = 5;

/// Renders an [`SloReport`] (plus promoted-trace links) as the
/// `mobivine.slo.v1` JSON document served by `GET /slo`.
pub fn slo_report_json(report: &SloReport, links: &[SloTraceLink]) -> String {
    let objectives: Vec<Value> = report
        .statuses
        .iter()
        .map(|status| {
            let objective = &status.objective;
            let target = match objective.target {
                SloTarget::Availability { target_ppm } => Value::Object(vec![
                    ("kind".to_owned(), Value::String("availability".to_owned())),
                    (
                        "target_ppm".to_owned(),
                        Value::Number(f64::from(target_ppm)),
                    ),
                ]),
                SloTarget::Latency {
                    threshold_ms,
                    target_ppm,
                } => Value::Object(vec![
                    ("kind".to_owned(), Value::String("latency".to_owned())),
                    (
                        "threshold_ms".to_owned(),
                        Value::Number(threshold_ms as f64),
                    ),
                    (
                        "target_ppm".to_owned(),
                        Value::Number(f64::from(target_ppm)),
                    ),
                ]),
            };
            let window = |window_ms: u64, counts: &WindowCounts, burn: u64| {
                Value::Object(vec![
                    ("window_ms".to_owned(), Value::Number(window_ms as f64)),
                    ("good".to_owned(), Value::Number(counts.good as f64)),
                    ("bad".to_owned(), Value::Number(counts.bad as f64)),
                    ("burn_milli".to_owned(), Value::Number(burn as f64)),
                ])
            };
            let traces: Vec<Value> = links
                .iter()
                .filter(|link| {
                    link.proxy == objective.proxy
                        && link.method == objective.method
                        && link.platform == objective.platform
                })
                .take(MAX_LINKS_PER_OBJECTIVE)
                .map(|link| {
                    Value::Object(vec![
                        (
                            "trace_id".to_owned(),
                            Value::String(link.trace_id_hex.clone()),
                        ),
                        ("reason".to_owned(), Value::String(link.reason.clone())),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("name".to_owned(), Value::String(objective.name.clone())),
                ("proxy".to_owned(), Value::String(objective.proxy.clone())),
                ("method".to_owned(), Value::String(objective.method.clone())),
                (
                    "platform".to_owned(),
                    Value::String(objective.platform.clone()),
                ),
                ("target".to_owned(), target),
                (
                    "fast".to_owned(),
                    window(FAST_WINDOW_MS, &status.fast, status.fast_burn_milli()),
                ),
                (
                    "slow".to_owned(),
                    window(SLOW_WINDOW_MS, &status.slow, status.slow_burn_milli()),
                ),
                (
                    "breached".to_owned(),
                    Value::Bool(status.breached(report.burn_threshold_milli)),
                ),
                ("traces".to_owned(), Value::Array(traces)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".to_owned(),
            Value::String("mobivine.slo.v1".to_owned()),
        ),
        ("now_ms".to_owned(), Value::Number(report.now_ms as f64)),
        (
            "burn_threshold_milli".to_owned(),
            Value::Number(report.burn_threshold_milli as f64),
        ),
        ("objectives".to_owned(), Value::Array(objectives)),
    ])
    .to_string()
}

/// What [`validate_slo_json`] found in a valid document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloJsonSummary {
    /// Objectives in the document.
    pub objectives: usize,
    /// Objectives marked breached.
    pub breached: usize,
    /// Promoted-trace links across all objectives.
    pub trace_links: usize,
}

fn field_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    match value.get_field(key) {
        Some(Value::String(s)) => Ok(s),
        other => Err(format!("field {key} is {other:?}, expected a string")),
    }
}

fn field_num(value: &Value, key: &str) -> Result<f64, String> {
    match value.get_field(key) {
        Some(Value::Number(n)) => Ok(*n),
        other => Err(format!("field {key} is {other:?}, expected a number")),
    }
}

/// Parses a `mobivine.slo.v1` document back and checks its structure:
/// schema tag, window sizes, non-negative counts, burn rates
/// consistent with the counts, and well-formed 16-hex trace links.
///
/// # Errors
///
/// A description of the first violation (including JSON parse errors).
pub fn validate_slo_json(json: &str) -> Result<SloJsonSummary, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let schema = field_str(&doc, "schema")?;
    if schema != "mobivine.slo.v1" {
        return Err(format!("schema is {schema:?}, expected mobivine.slo.v1"));
    }
    let threshold = field_num(&doc, "burn_threshold_milli")? as u64;
    field_num(&doc, "now_ms")?;
    let objectives = match doc.get_field("objectives") {
        Some(Value::Array(objectives)) => objectives,
        other => return Err(format!("objectives is {other:?}, expected an array")),
    };
    let mut breached = 0usize;
    let mut trace_links = 0usize;
    for objective in objectives {
        let name = field_str(objective, "name")?;
        field_str(objective, "proxy")?;
        field_str(objective, "method")?;
        field_str(objective, "platform")?;
        let target = objective
            .get_field("target")
            .ok_or_else(|| format!("objective {name} has no target"))?;
        let target_ppm = field_num(target, "target_ppm")? as u32;
        if target_ppm > 1_000_000 {
            return Err(format!("objective {name} target_ppm {target_ppm} > 1e6"));
        }
        match field_str(target, "kind")? {
            "availability" => {}
            "latency" => {
                field_num(target, "threshold_ms")?;
            }
            other => {
                return Err(format!(
                    "objective {name} has unknown target kind {other:?}"
                ))
            }
        }
        let mut burns = Vec::new();
        for (window, expected_ms) in [("fast", FAST_WINDOW_MS), ("slow", SLOW_WINDOW_MS)] {
            let counts = objective
                .get_field(window)
                .ok_or_else(|| format!("objective {name} has no {window} window"))?;
            let window_ms = field_num(counts, "window_ms")? as u64;
            if window_ms != expected_ms {
                return Err(format!(
                    "objective {name} {window} window is {window_ms}ms, expected {expected_ms}ms"
                ));
            }
            let good = field_num(counts, "good")? as u64;
            let bad = field_num(counts, "bad")? as u64;
            let burn = field_num(counts, "burn_milli")? as u64;
            if burn != burn_milli(good, bad, target_ppm) {
                return Err(format!(
                    "objective {name} {window} burn {burn} inconsistent with good={good} bad={bad}"
                ));
            }
            burns.push((bad, burn));
        }
        let is_breached = match objective.get_field("breached") {
            Some(Value::Bool(b)) => *b,
            other => return Err(format!("objective {name} breached is {other:?}")),
        };
        let expected = burns[0].0 > 0 && burns.iter().all(|(_, burn)| *burn >= threshold);
        if is_breached != expected {
            return Err(format!(
                "objective {name} breached={is_breached} inconsistent with burns {burns:?} \
                 at threshold {threshold}"
            ));
        }
        if is_breached {
            breached += 1;
        }
        let traces = match objective.get_field("traces") {
            Some(Value::Array(traces)) => traces,
            other => return Err(format!("objective {name} traces is {other:?}")),
        };
        for trace in traces {
            let id = field_str(trace, "trace_id")?;
            if id.len() != 16 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("objective {name} trace id {id:?} is not 16 hex"));
            }
            field_str(trace, "reason")?;
            trace_links += 1;
        }
    }
    Ok(SloJsonSummary {
        objectives: objectives.len(),
        breached,
        trace_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_objective() -> SloObjective {
        SloObjective {
            name: "http-request-p99".into(),
            proxy: "Http".into(),
            method: "request".into(),
            platform: "android".into(),
            target: SloTarget::Latency {
                threshold_ms: 256,
                target_ppm: 990_000,
            },
        }
    }

    fn availability_objective() -> SloObjective {
        SloObjective {
            name: "location-availability".into(),
            proxy: "Location".into(),
            method: "getLocation".into(),
            platform: "android".into(),
            target: SloTarget::Availability {
                target_ppm: 990_000,
            },
        }
    }

    #[test]
    fn burn_math_is_integer_and_saturating() {
        assert_eq!(burn_milli(0, 0, 990_000), 0);
        assert_eq!(burn_milli(100, 0, 990_000), 0);
        // 1% bad at a 99% target: exactly the sustainable rate.
        assert_eq!(burn_milli(99, 1, 990_000), 1000);
        // 50% bad at a 99% target: 50x burn.
        assert_eq!(burn_milli(1, 1, 990_000), 50_000);
        // Zero budget saturates.
        assert_eq!(burn_milli(1, 1, 1_000_000), MAX_BURN_MILLI);
    }

    #[test]
    fn recorder_routes_to_matching_objectives_only() {
        let engine = SloEngine::new(vec![latency_objective(), availability_objective()]);
        assert!(engine.recorder("Http", "request", "s60").is_empty());
        let recorder = engine.recorder("Http", "request", "android");
        assert!(!recorder.is_empty());
        for _ in 0..99 {
            recorder.record(1_000, true, 10);
        }
        recorder.record(1_000, true, 9_999); // over threshold
        recorder.record(1_000, false, 9_999); // error: not a latency sample
        let report = engine.report(1_000);
        let status = &report.statuses[0];
        assert_eq!(status.objective.name, "http-request-p99");
        assert_eq!(status.fast, WindowCounts { good: 99, bad: 1 });
        assert_eq!(status.fast_burn_milli(), 1000);
        let availability = &report.statuses[1];
        assert_eq!(
            availability.fast,
            WindowCounts { good: 0, bad: 0 },
            "different call path"
        );
    }

    #[test]
    fn breach_requires_both_windows() {
        let engine = SloEngine::new(vec![availability_objective()]);
        let recorder = engine.recorder("Location", "getLocation", "android");
        // An old burst of errors: inside the slow window, outside fast.
        for _ in 0..10 {
            recorder.record(0, false, 0);
        }
        for _ in 0..10 {
            recorder.record(0, true, 0);
        }
        let late = FAST_WINDOW_MS + 60_000;
        let report = engine.report(late);
        let status = &report.statuses[0];
        assert_eq!(
            status.fast,
            WindowCounts::default(),
            "fast window slid past"
        );
        assert!(status.slow.bad > 0);
        assert!(!status.breached(1000), "fast window is quiet");
        assert!(report.breached().is_empty());
        // Fresh errors in both windows breach.
        for _ in 0..5 {
            recorder.record(late, false, 0);
        }
        let report = engine.report(late);
        assert_eq!(report.breached().len(), 1);
    }

    #[test]
    fn windows_slide_and_reset_slots() {
        let engine = SloEngine::new(vec![availability_objective()]);
        let recorder = engine.recorder("Location", "getLocation", "android");
        recorder.record(0, false, 0);
        // Far enough ahead that the same slot index is reused.
        let wrap = SLOW_WINDOW_MS * 2;
        recorder.record(wrap, true, 0);
        let (good, bad) = {
            let report = engine.report(wrap);
            let s = &report.statuses[0];
            (s.slow.good, s.slow.bad)
        };
        assert_eq!((good, bad), (1, 0), "stale slot did not leak");
    }

    #[test]
    fn reports_merge_deterministically() {
        let build = |bad: u64| {
            let engine = SloEngine::new(vec![availability_objective()]);
            let recorder = engine.recorder("Location", "getLocation", "android");
            for _ in 0..10 {
                recorder.record(500, true, 0);
            }
            for _ in 0..bad {
                recorder.record(500, false, 0);
            }
            engine.report(500)
        };
        let mut merged = build(2);
        merged.merge(&build(3)).expect("same objectives");
        let status = &merged.statuses[0];
        assert_eq!(status.fast, WindowCounts { good: 20, bad: 5 });
        // Merging in either order gives the same report.
        let mut reversed = build(3);
        reversed.merge(&build(2)).expect("same objectives");
        assert_eq!(merged, reversed);
        // Mismatched objective lists refuse to merge.
        let mut other = SloEngine::new(vec![latency_objective()]).report(0);
        assert!(other.merge(&merged).is_err());
    }

    #[test]
    fn json_report_round_trips_through_validation() {
        let engine = SloEngine::new(vec![latency_objective(), availability_objective()]);
        let http = engine.recorder("Http", "request", "android");
        for _ in 0..9 {
            http.record(1_000, true, 10);
        }
        http.record(1_000, true, 999);
        let links = vec![SloTraceLink {
            proxy: "Http".into(),
            method: "request".into(),
            platform: "android".into(),
            trace_id_hex: format!("{:016x}", 0xabcd),
            reason: "slow_call".into(),
        }];
        let json = slo_report_json(&engine.report(1_000), &links);
        let summary = validate_slo_json(&json).expect("valid document");
        assert_eq!(summary.objectives, 2);
        assert_eq!(summary.breached, 1, "10% slow at a 1% budget breaches");
        assert_eq!(summary.trace_links, 1);
        // Tampered burn rates fail validation.
        let tampered = json.replace("\"burn_milli\":10000", "\"burn_milli\":1");
        assert_ne!(tampered, json, "the burn rate was present to tamper with");
        assert!(validate_slo_json(&tampered).is_err());
    }
}
