//! Sharded proxy registry for fleet-scale workloads.
//!
//! One [`crate::registry::Mobivine`] runtime serves one application on
//! one device. A fleet of tens of thousands of simulated devices needs
//! the same uniform surface without paying per-device overhead twice
//! over: a private descriptor-catalog allocation per runtime, and
//! per-call proxy construction on every acquisition.
//!
//! [`ShardedRegistry`] fixes both. Runtimes are partitioned round-robin
//! into a fixed number of **shards**; every runtime in a shard shares
//! one `Arc`'d descriptor catalog (a 10k-device shard holds one catalog,
//! not 10k), and each runtime's resolution is memoized (see
//! [`crate::registry::Mobivine::proxy`]), so steady-state acquisition
//! across the whole fleet is a lock-free read per device. Shards are
//! also the unit of worker ownership upstream: the fleet engine assigns
//! disjoint shards to workers, so no two workers ever contend on the
//! same runtime.

use std::sync::Arc;

use mobivine_proxydl::ProxyDescriptor;

use crate::error::{ProxyError, ProxyErrorKind};
use crate::registry::{Mobivine, MobivineBuilder, ProxyApi};

/// A registry of per-device runtimes partitioned into catalog-sharing
/// shards, with typed memoized resolution routed by device index.
///
/// Registration is a build-time phase (`&mut self`); after that the
/// registry is read-only and every acquisition path
/// ([`ShardedRegistry::resolve`]) is lock-free, so a `ShardedRegistry`
/// behind an `Arc` can be hammered from many workers concurrently.
///
/// # Example
///
/// ```
/// use mobivine::api::SmsProxy;
/// use mobivine::shard::ShardedRegistry;
/// use mobivine_android::{AndroidPlatform, SdkVersion};
/// use mobivine_device::Device;
///
/// let mut registry = ShardedRegistry::new(4)?;
/// for _ in 0..16 {
///     let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
///     registry.push_with(|b| b.android(platform.new_context()))?;
/// }
/// registry.warm()?;
/// let sms = registry.resolve::<dyn SmsProxy>(11)?;
/// # drop(sms);
/// # Ok::<(), mobivine::error::ProxyError>(())
/// ```
pub struct ShardedRegistry {
    /// One shared catalog per shard; `catalogs.len()` is the shard count.
    catalogs: Vec<Arc<Vec<ProxyDescriptor>>>,
    /// Runtime `i` belongs to shard `i % catalogs.len()`.
    runtimes: Vec<Arc<Mobivine>>,
}

impl std::fmt::Debug for ShardedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRegistry")
            .field("shards", &self.catalogs.len())
            .field("runtimes", &self.runtimes.len())
            .finish()
    }
}

impl ShardedRegistry {
    /// Creates an empty registry with `shard_count` shards, each owning
    /// one shared copy of the standard descriptor catalog.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` if `shard_count` is zero.
    pub fn new(shard_count: usize) -> Result<Self, ProxyError> {
        if shard_count == 0 {
            return Err(ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                "ShardedRegistry needs at least one shard",
            ));
        }
        let catalogs = (0..shard_count)
            .map(|_| Arc::new(mobivine_proxydl::catalog::standard_catalog()))
            .collect();
        Ok(Self {
            catalogs,
            runtimes: Vec::new(),
        })
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.catalogs.len()
    }

    /// The number of registered runtimes.
    pub fn len(&self) -> usize {
        self.runtimes.len()
    }

    /// Whether no runtimes are registered yet.
    pub fn is_empty(&self) -> bool {
        self.runtimes.is_empty()
    }

    /// The shard owning device `device_index` (round-robin).
    pub fn shard_of(&self, device_index: usize) -> usize {
        device_index % self.catalogs.len()
    }

    /// The catalog shared by every runtime in `shard`.
    ///
    /// # Panics
    ///
    /// If `shard >= shard_count()`.
    pub fn shard_catalog(&self, shard: usize) -> Arc<Vec<ProxyDescriptor>> {
        Arc::clone(&self.catalogs[shard])
    }

    /// Registers the next runtime: hands `configure` a
    /// [`MobivineBuilder`] pre-seeded with the owning shard's shared
    /// catalog (platform selection and options are the caller's),
    /// builds it, and returns the new device index.
    ///
    /// # Errors
    ///
    /// Whatever [`MobivineBuilder::build`] returns — typically
    /// `IllegalArgument` when `configure` selects no platform.
    pub fn push_with(
        &mut self,
        configure: impl FnOnce(MobivineBuilder) -> MobivineBuilder,
    ) -> Result<usize, ProxyError> {
        let device_index = self.runtimes.len();
        let shard = self.shard_of(device_index);
        let builder = Mobivine::builder().catalog(Arc::clone(&self.catalogs[shard]));
        let runtime = configure(builder).build()?;
        self.runtimes.push(Arc::new(runtime));
        Ok(device_index)
    }

    /// The runtime for device `device_index`, when registered.
    pub fn runtime(&self, device_index: usize) -> Option<&Arc<Mobivine>> {
        self.runtimes.get(device_index)
    }

    /// The device indices belonging to `shard`, in registration order.
    pub fn shard_members(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        let shards = self.catalogs.len();
        (0..self.runtimes.len()).filter(move |i| i % shards == shard)
    }

    /// Routes `device_index` to its runtime and resolves the proxy for
    /// capability `P` — the fleet hot path. After [`ShardedRegistry::warm`]
    /// this is one bounds-check plus one atomic load per acquisition.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` for an unregistered index, otherwise as
    /// [`Mobivine::proxy`].
    pub fn resolve<P: ProxyApi + ?Sized>(&self, device_index: usize) -> Result<Arc<P>, ProxyError> {
        let runtime = self.runtime(device_index).ok_or_else(|| {
            ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                format!(
                    "device index {device_index} out of range ({} registered)",
                    self.runtimes.len()
                ),
            )
        })?;
        runtime.proxy::<P>()
    }

    /// Pre-resolves every supported capability of every registered
    /// runtime (see [`Mobivine::warm`]), returning the total number of
    /// cached proxies. Fleet workloads call this once after
    /// registration so steady state never constructs.
    ///
    /// # Errors
    ///
    /// Propagates the first construction error.
    pub fn warm(&self) -> Result<usize, ProxyError> {
        let mut resolved = 0;
        for runtime in &self.runtimes {
            resolved += runtime.warm()?;
        }
        Ok(resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{CallProxy, LocationProxy};
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;
    use mobivine_s60::S60Platform;

    fn android_fleet(shards: usize, devices: usize) -> ShardedRegistry {
        let mut registry = ShardedRegistry::new(shards).unwrap();
        for _ in 0..devices {
            let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
            registry
                .push_with(|b| b.android(platform.new_context()))
                .unwrap();
        }
        registry
    }

    #[test]
    fn zero_shards_is_an_error() {
        let err = ShardedRegistry::new(0).unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn devices_round_robin_across_shards() {
        let registry = android_fleet(3, 10);
        assert_eq!(registry.shard_count(), 3);
        assert_eq!(registry.len(), 10);
        assert_eq!(registry.shard_of(0), 0);
        assert_eq!(registry.shard_of(4), 1);
        assert_eq!(registry.shard_members(1).collect::<Vec<_>>(), [1, 4, 7]);
    }

    #[test]
    fn shard_members_share_one_catalog_allocation() {
        let registry = android_fleet(2, 6);
        let members: Vec<usize> = registry.shard_members(0).collect();
        let first = registry.runtime(members[0]).unwrap();
        for &m in &members[1..] {
            let other = registry.runtime(m).unwrap();
            assert!(
                std::ptr::eq(first.catalog().as_ptr(), other.catalog().as_ptr()),
                "devices {} and {} share shard 0's catalog",
                members[0],
                m
            );
        }
        // Different shards own different allocations.
        let other_shard = registry.runtime(1).unwrap();
        assert!(!std::ptr::eq(
            first.catalog().as_ptr(),
            other_shard.catalog().as_ptr()
        ));
    }

    #[test]
    fn resolve_routes_and_memoizes() {
        let registry = android_fleet(2, 4);
        let first = registry.resolve::<dyn LocationProxy>(3).unwrap();
        let second = registry.resolve::<dyn LocationProxy>(3).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let neighbour = registry.resolve::<dyn LocationProxy>(2).unwrap();
        assert!(!Arc::ptr_eq(&first, &neighbour), "per-device instances");
    }

    #[test]
    fn resolve_out_of_range_is_illegal_argument() {
        let registry = android_fleet(2, 2);
        let err = match registry.resolve::<dyn LocationProxy>(9) {
            Err(err) => err,
            Ok(_) => panic!("out-of-range index must fail"),
        };
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn warm_covers_mixed_platform_fleets() {
        let mut registry = ShardedRegistry::new(2).unwrap();
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        registry
            .push_with(|b| b.android(platform.new_context()))
            .unwrap();
        registry
            .push_with(|b| b.s60(S60Platform::new(Device::builder().build())))
            .unwrap();
        // Android resolves 6 kinds, S60 resolves 5 (no Call).
        assert_eq!(registry.warm().unwrap(), 11);
        let err = match registry.resolve::<dyn CallProxy>(1) {
            Err(err) => err,
            Ok(_) => panic!("call proxy must not exist on S60"),
        };
        assert_eq!(err.kind(), ProxyErrorKind::UnsupportedOnPlatform);
    }
}
