//! The MobiVine runtime facade and proxy registry.
//!
//! Applications obtain proxies from a [`Mobivine`] runtime bound to
//! their platform. The registry consults the standard descriptor
//! catalog: interfaces without a binding on the running platform (Call
//! on S60, PIM on WebView) fail with
//! [`crate::error::ProxyErrorKind::UnsupportedOnPlatform`] rather than a
//! missing symbol — MobiVine removes "the requirement of the proxy set
//! being determined by the least common denominator of functionalities
//! across different platforms" (§3.3).

use std::fmt;
use std::sync::Arc;

use mobivine_android::context::Context;
use mobivine_device::Device;
use mobivine_proxydl::{PlatformId, ProxyDescriptor};
use mobivine_s60::S60Platform;
use mobivine_telemetry::span::Plane;
use mobivine_telemetry::MetricsRegistry;
use mobivine_webview::WebView;

use crate::android::{
    AndroidCalendarProxy, AndroidCallProxy, AndroidContactsProxy, AndroidHttpProxy,
    AndroidLocationProxy, AndroidSmsProxy,
};
use crate::api::{
    CalendarProxy, CallProxy, ContactsProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy,
};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::resilience::{
    ResilienceMetrics, ResiliencePolicy, ResilientCallProxy, ResilientHttpProxy,
    ResilientLocationProxy, ResilientSmsProxy,
};
use crate::s60::{S60CalendarProxy, S60ContactsProxy, S60HttpProxy, S60LocationProxy, S60SmsProxy};
use crate::telemetry::{
    TelemetryRuntime, TracedCallProxy, TracedHttpProxy, TracedLocationProxy, TracedSmsProxy,
};
use crate::webview::proxies::{
    WebViewCallProxy, WebViewHttpProxy, WebViewLocationProxy, WebViewSmsProxy,
};
use crate::webview::wrappers::install_wrappers;

enum Target {
    Android(Context),
    S60(S60Platform),
    WebView(Arc<WebView>),
}

/// The runtime's resilience configuration: one policy and one shared
/// counter block applied identically to every proxy it constructs.
struct ResilienceRuntime {
    policy: ResiliencePolicy,
    metrics: Arc<ResilienceMetrics>,
}

/// The MobiVine runtime for one application on one platform.
pub struct Mobivine {
    target: Target,
    catalog: Vec<ProxyDescriptor>,
    resilience: Option<ResilienceRuntime>,
    telemetry: Option<TelemetryRuntime>,
}

impl fmt::Debug for Mobivine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mobivine")
            .field("platform", &self.platform_id().id().to_owned())
            .field("catalog", &self.catalog.len())
            .finish()
    }
}

impl Mobivine {
    /// Binds the runtime to an Android application context.
    pub fn for_android(ctx: Context) -> Self {
        Self {
            target: Target::Android(ctx),
            catalog: mobivine_proxydl::catalog::standard_catalog(),
            resilience: None,
            telemetry: None,
        }
    }

    /// Binds the runtime to an S60 platform.
    pub fn for_s60(platform: S60Platform) -> Self {
        Self {
            target: Target::S60(platform),
            catalog: mobivine_proxydl::catalog::standard_catalog(),
            resilience: None,
            telemetry: None,
        }
    }

    /// Binds the runtime to a WebView page, installing the Java
    /// wrappers (the plug-in's `addJavaScriptInterface` injection).
    pub fn for_webview(webview: Arc<WebView>) -> Self {
        install_wrappers(&webview);
        Self {
            target: Target::WebView(webview),
            catalog: mobivine_proxydl::catalog::standard_catalog(),
            resilience: None,
            telemetry: None,
        }
    }

    /// Turns on the resilience layer: every Location/SMS/Call/HTTP
    /// proxy this runtime constructs is pre-wrapped in the matching
    /// [`crate::resilience`] decorator under `policy` — identically on
    /// every platform, so retry behaviour is part of the uniform
    /// surface rather than per-platform application code.
    ///
    /// All decorators share one [`ResilienceMetrics`] block, readable
    /// through [`Mobivine::resilience_metrics`].
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        let metrics = match &self.telemetry {
            Some(t) => ResilienceMetrics::on_registry(t.metrics()),
            None => ResilienceMetrics::shared(),
        };
        self.resilience = Some(ResilienceRuntime { policy, metrics });
        self
    }

    /// Turns on plane-aware telemetry: every Location/SMS/Call/HTTP
    /// proxy this runtime constructs is wrapped **twice** in the
    /// matching [`crate::telemetry`] traced decorator — at the
    /// outermost semantic plane and at the binding plane (below the
    /// resilience layer, when present) — so each call descends the
    /// stack as a parented span tree: app → proxy → resilience →
    /// binding → platform → device.
    ///
    /// Metrics publish into the device's [`MetricsRegistry`] (shared
    /// with the device subsystems); spans collect in the tracer
    /// returned by [`Mobivine::tracer`]. If
    /// [`Mobivine::with_resilience`] was already applied, its counters
    /// are re-homed onto the same registry so one exporter covers the
    /// whole call path.
    #[must_use]
    pub fn with_telemetry(mut self) -> Self {
        let telemetry = TelemetryRuntime::new(Arc::clone(self.device().metrics()));
        if let Some(r) = &mut self.resilience {
            r.metrics = ResilienceMetrics::on_registry(telemetry.metrics());
        }
        self.telemetry = Some(telemetry);
        self
    }

    /// The shared resilience counters, when
    /// [`Mobivine::with_resilience`] was applied.
    pub fn resilience_metrics(&self) -> Option<Arc<ResilienceMetrics>> {
        self.resilience.as_ref().map(|r| Arc::clone(&r.metrics))
    }

    /// The tracer collecting proxy-call spans, when
    /// [`Mobivine::with_telemetry`] was applied.
    pub fn tracer(&self) -> Option<&mobivine_telemetry::Tracer> {
        self.telemetry.as_ref().map(TelemetryRuntime::tracer)
    }

    /// The metrics registry the traced proxies publish into, when
    /// [`Mobivine::with_telemetry`] was applied. This is the device's
    /// registry, so device-layer series appear alongside the proxy
    /// series.
    pub fn telemetry_metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.telemetry.as_ref().map(|t| Arc::clone(t.metrics()))
    }

    /// The simulated device underneath whichever platform binding this
    /// runtime targets — the clock source for resilience backoffs.
    fn device(&self) -> Device {
        match &self.target {
            Target::Android(ctx) => ctx.device().clone(),
            Target::S60(platform) => platform.device().clone(),
            Target::WebView(webview) => webview.context().device().clone(),
        }
    }

    /// The platform this runtime targets.
    pub fn platform_id(&self) -> PlatformId {
        match &self.target {
            Target::Android(_) => PlatformId::Android,
            Target::S60(_) => PlatformId::NokiaS60,
            Target::WebView(_) => PlatformId::AndroidWebView,
        }
    }

    /// The descriptor catalog backing this runtime.
    pub fn catalog(&self) -> &[ProxyDescriptor] {
        &self.catalog
    }

    /// Whether `interface` (descriptor name, e.g. `"Call"`) has a
    /// binding on the running platform.
    pub fn supports(&self, interface: &str) -> bool {
        let platform = self.platform_id();
        self.catalog
            .iter()
            .find(|d| d.name == interface)
            .is_some_and(|d| d.binding_for(&platform).is_some())
    }

    fn unsupported(&self, interface: &str) -> ProxyError {
        ProxyError::new(
            ProxyErrorKind::UnsupportedOnPlatform,
            format!(
                "interface {interface} has no binding on platform {}",
                self.platform_id().id()
            ),
        )
    }

    /// Constructs the Location proxy.
    ///
    /// # Errors
    ///
    /// `UnsupportedOnPlatform` if the catalog has no binding, or any
    /// construction error from the binding module.
    pub fn location(&self) -> Result<Arc<dyn LocationProxy>, ProxyError> {
        if !self.supports("Location") {
            return Err(self.unsupported("Location"));
        }
        let mut proxy: Arc<dyn LocationProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidLocationProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60LocationProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewLocationProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedLocationProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientLocationProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedLocationProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    /// Constructs the SMS proxy.
    ///
    /// # Errors
    ///
    /// As [`Mobivine::location`].
    pub fn sms(&self) -> Result<Arc<dyn SmsProxy>, ProxyError> {
        if !self.supports("SMS") {
            return Err(self.unsupported("SMS"));
        }
        let mut proxy: Arc<dyn SmsProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidSmsProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60SmsProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewSmsProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedSmsProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientSmsProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedSmsProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    /// Constructs the Call proxy.
    ///
    /// # Errors
    ///
    /// `UnsupportedOnPlatform` on S60 ("the core functionality was not
    /// exposed on the S60 platform", §4.1).
    pub fn call(&self) -> Result<Arc<dyn CallProxy>, ProxyError> {
        if !self.supports("Call") {
            return Err(self.unsupported("Call"));
        }
        let mut proxy: Arc<dyn CallProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidCallProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(_) => return Err(self.unsupported("Call")),
            Target::WebView(webview) => Arc::new(WebViewCallProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedCallProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientCallProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedCallProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    /// Constructs the HTTP proxy.
    ///
    /// # Errors
    ///
    /// As [`Mobivine::location`].
    pub fn http(&self) -> Result<Arc<dyn HttpProxy>, ProxyError> {
        if !self.supports("Http") {
            return Err(self.unsupported("Http"));
        }
        let mut proxy: Arc<dyn HttpProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidHttpProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60HttpProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewHttpProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedHttpProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientHttpProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedHttpProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    /// Constructs the Contacts proxy (extension feature).
    ///
    /// # Errors
    ///
    /// `UnsupportedOnPlatform` on WebView (no binding in the catalog).
    pub fn contacts(&self) -> Result<Arc<dyn ContactsProxy>, ProxyError> {
        if !self.supports("Contacts") {
            return Err(self.unsupported("Contacts"));
        }
        match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidContactsProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Ok(Arc::new(proxy))
            }
            Target::S60(platform) => Ok(Arc::new(S60ContactsProxy::new(platform.clone()))),
            Target::WebView(_) => Err(self.unsupported("Contacts")),
        }
    }

    /// Constructs the Calendar proxy (extension feature).
    ///
    /// # Errors
    ///
    /// `UnsupportedOnPlatform` on WebView (no binding in the catalog).
    pub fn calendar(&self) -> Result<Arc<dyn CalendarProxy>, ProxyError> {
        if !self.supports("Calendar") {
            return Err(self.unsupported("Calendar"));
        }
        match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidCalendarProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Ok(Arc::new(proxy))
            }
            Target::S60(platform) => Ok(Arc::new(S60CalendarProxy::new(platform.clone()))),
            Target::WebView(_) => Err(self.unsupported("Calendar")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;

    fn android_runtime() -> Mobivine {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        Mobivine::for_android(platform.new_context())
    }

    #[test]
    fn android_supports_all_paper_interfaces() {
        let runtime = android_runtime();
        for interface in ["Location", "SMS", "Call", "Http", "Contacts", "Calendar"] {
            assert!(runtime.supports(interface), "{interface}");
        }
        assert!(runtime.location().is_ok());
        assert!(runtime.sms().is_ok());
        assert!(runtime.call().is_ok());
        assert!(runtime.http().is_ok());
        assert!(runtime.contacts().is_ok());
        assert!(runtime.calendar().is_ok());
    }

    #[test]
    fn s60_has_no_call_proxy() {
        let runtime = Mobivine::for_s60(S60Platform::new(Device::builder().build()));
        assert!(!runtime.supports("Call"));
        let err = match runtime.call() {
            Err(err) => err,
            Ok(_) => panic!("call proxy must not exist on S60"),
        };
        assert_eq!(err.kind(), ProxyErrorKind::UnsupportedOnPlatform);
        assert!(runtime.location().is_ok());
        assert!(runtime.sms().is_ok());
        assert!(runtime.http().is_ok());
    }

    #[test]
    fn webview_runtime_installs_wrappers() {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(platform.new_context()));
        let runtime = Mobivine::for_webview(Arc::clone(&webview));
        assert_eq!(webview.interface_names().len(), 4);
        assert!(runtime.location().is_ok());
        assert!(runtime.call().is_ok());
        assert!(runtime.contacts().is_err());
    }

    #[test]
    fn platform_ids_reported() {
        assert_eq!(android_runtime().platform_id(), PlatformId::Android);
        assert_eq!(
            Mobivine::for_s60(S60Platform::new(Device::builder().build())).platform_id(),
            PlatformId::NokiaS60
        );
    }

    #[test]
    fn catalog_is_the_standard_one() {
        assert_eq!(android_runtime().catalog().len(), 6);
    }

    #[test]
    fn with_resilience_pre_wraps_proxies_on_every_platform() {
        let device = Device::builder().build();
        let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(android.new_context()));
        let runtimes = [
            Mobivine::for_android(android.new_context()),
            Mobivine::for_s60(S60Platform::new(device.clone())),
            Mobivine::for_webview(webview),
        ];
        for runtime in runtimes {
            let runtime = runtime.with_resilience(ResiliencePolicy::default());
            let metrics = runtime.resilience_metrics().expect("metrics installed");
            let location = runtime.location().unwrap();
            // The resilience property plane answers on the wrapped
            // proxy — proof the decorator is in front on this platform.
            location
                .set_property("retry.max_attempts", PropertyValue::Int(7))
                .unwrap();
            let _ = location.get_location();
            assert_eq!(
                metrics.snapshot().calls,
                1,
                "call flowed through the decorator on {:?}",
                runtime.platform_id()
            );
            assert!(runtime.sms().is_ok());
            assert!(runtime.http().is_ok());
        }
    }

    #[test]
    fn runtime_without_resilience_reports_no_metrics() {
        assert!(android_runtime().resilience_metrics().is_none());
    }
}
