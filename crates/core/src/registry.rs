//! The MobiVine runtime facade and proxy registry.
//!
//! Applications obtain proxies from a [`Mobivine`] runtime bound to
//! their platform. The registry consults the standard descriptor
//! catalog: interfaces without a binding on the running platform (Call
//! on S60, PIM on WebView) fail with
//! [`crate::error::ProxyErrorKind::UnsupportedOnPlatform`] rather than a
//! missing symbol — MobiVine removes "the requirement of the proxy set
//! being determined by the least common denominator of functionalities
//! across different platforms" (§3.3).
//!
//! ## Acquiring proxies
//!
//! The uniform acquisition surface is the typed resolver
//! [`Mobivine::proxy`], keyed by [`ProxyKind`] through the sealed
//! [`ProxyApi`] trait:
//!
//! ```
//! # use mobivine::registry::Mobivine;
//! # use mobivine::api::{LocationProxy, SmsProxy};
//! # use mobivine_android::{AndroidPlatform, SdkVersion};
//! # use mobivine_device::Device;
//! # let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
//! # let runtime = Mobivine::for_android(platform.new_context());
//! let location = runtime.proxy::<dyn LocationProxy>()?;
//! let sms = runtime.proxy::<dyn SmsProxy>()?;
//! # Ok::<(), mobivine::error::ProxyError>(())
//! ```
//!
//! Resolution is **memoized**: the first acquisition of a kind
//! constructs the decorated proxy stack, every later acquisition is a
//! lock-free read returning the same shared instance. The typed
//! resolver is the *only* acquisition surface — the six legacy
//! accessors (`location()`, `sms()`, …) were deprecated in 0.2.0 and
//! have been removed.
//!
//! ## Composable construction
//!
//! [`Mobivine::builder`] composes platform selection, resilience,
//! overload protection, caching and telemetry in any order with a
//! single `build()`; the legacy `for_*`/`with_*` chain remains for
//! simple cases. Either way the decorator stack always comes out in
//! the one canonical order, outermost first:
//! `Traced(Proxy) → Cached → Overload → Journaled → Resilient →
//! Traced(Binding)` — the journal sits inside the overload gate (shed
//! calls burn no intent record) and outside the retry engine (one
//! logical call appends one intent, however many retries it takes).

use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use mobivine_android::context::Context;
use mobivine_device::Device;
use mobivine_proxydl::{PlatformId, ProxyDescriptor};
use mobivine_s60::S60Platform;
use mobivine_telemetry::span::Plane;
use mobivine_telemetry::{IncidentStore, MetricsRegistry, PromotionPolicy, SloEngine};
use mobivine_webview::WebView;

use crate::android::{
    AndroidCalendarProxy, AndroidCallProxy, AndroidContactsProxy, AndroidHttpProxy,
    AndroidLocationProxy, AndroidSmsProxy,
};
use crate::api::{
    CalendarProxy, CallProxy, ContactsProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy,
};
use crate::cache::{
    CacheMetrics, CachePolicy, CachedCalendarProxy, CachedContactsProxy, CachedLocationProxy,
};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::journal::{
    JournalEngine, JournalMetrics, JournalPolicy, JournaledHttpProxy, JournaledSmsProxy,
};
use crate::overload::{
    OverloadCallProxy, OverloadHttpProxy, OverloadLocationProxy, OverloadMetrics, OverloadPolicy,
    OverloadSmsProxy,
};
use crate::property::PropertyValue;
use crate::resilience::{
    ResilienceMetrics, ResiliencePolicy, ResilientCallProxy, ResilientHttpProxy,
    ResilientLocationProxy, ResilientSmsProxy,
};
use crate::s60::{S60CalendarProxy, S60ContactsProxy, S60HttpProxy, S60LocationProxy, S60SmsProxy};
use crate::telemetry::{
    TelemetryRuntime, TracedCallProxy, TracedHttpProxy, TracedLocationProxy, TracedSmsProxy,
};
use crate::webview::proxies::{
    WebViewCallProxy, WebViewHttpProxy, WebViewLocationProxy, WebViewSmsProxy,
};
use crate::webview::wrappers::install_wrappers;

enum Target {
    Android(Context),
    S60(S60Platform),
    WebView(Arc<WebView>),
}

/// The six uniform proxy capabilities, keyed the way the descriptor
/// catalog names them. This is the enum the typed resolver
/// ([`Mobivine::proxy`]) is keyed by, via [`ProxyApi::KIND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProxyKind {
    /// The Location capability (`"Location"` in the catalog).
    Location,
    /// The SMS capability (`"SMS"`).
    Sms,
    /// The voice-call capability (`"Call"`), absent on S60.
    Call,
    /// The HTTP capability (`"Http"`).
    Http,
    /// The Contacts extension (`"Contacts"`), absent on WebView.
    Contacts,
    /// The Calendar extension (`"Calendar"`), absent on WebView.
    Calendar,
}

impl ProxyKind {
    /// Every capability, in catalog order.
    pub const ALL: [ProxyKind; 6] = [
        ProxyKind::Location,
        ProxyKind::Sms,
        ProxyKind::Call,
        ProxyKind::Http,
        ProxyKind::Contacts,
        ProxyKind::Calendar,
    ];

    /// The descriptor-catalog interface name for this kind.
    pub fn interface(&self) -> &'static str {
        match self {
            ProxyKind::Location => "Location",
            ProxyKind::Sms => "SMS",
            ProxyKind::Call => "Call",
            ProxyKind::Http => "Http",
            ProxyKind::Contacts => "Contacts",
            ProxyKind::Calendar => "Calendar",
        }
    }
}

impl fmt::Display for ProxyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.interface())
    }
}

/// Memoized resolution state of one runtime: one slot per
/// [`ProxyKind`], written once on first acquisition and read lock-free
/// afterwards. Construction failures are not cached, so a transient
/// error does not poison the slot.
#[derive(Default)]
pub struct ResolutionCache {
    location: OnceLock<Arc<dyn LocationProxy>>,
    sms: OnceLock<Arc<dyn SmsProxy>>,
    call: OnceLock<Arc<dyn CallProxy>>,
    http: OnceLock<Arc<dyn HttpProxy>>,
    contacts: OnceLock<Arc<dyn ContactsProxy>>,
    calendar: OnceLock<Arc<dyn CalendarProxy>>,
}

impl ResolutionCache {
    /// How many kinds have been resolved so far.
    fn resolved_count(&self) -> usize {
        usize::from(self.location.get().is_some())
            + usize::from(self.sms.get().is_some())
            + usize::from(self.call.get().is_some())
            + usize::from(self.http.get().is_some())
            + usize::from(self.contacts.get().is_some())
            + usize::from(self.calendar.get().is_some())
    }
}

impl fmt::Debug for ResolutionCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResolutionCache")
            .field("resolved", &self.resolved_count())
            .finish()
    }
}

mod sealed {
    /// Prevents downstream crates from adding resolvable proxy types:
    /// the registry's construction match is exhaustive over the six
    /// catalog capabilities.
    pub trait Sealed {}
    impl Sealed for dyn super::LocationProxy {}
    impl Sealed for dyn super::SmsProxy {}
    impl Sealed for dyn super::CallProxy {}
    impl Sealed for dyn super::HttpProxy {}
    impl Sealed for dyn super::ContactsProxy {}
    impl Sealed for dyn super::CalendarProxy {}
}

/// The link between a uniform proxy trait object and its [`ProxyKind`]:
/// the typed key of [`Mobivine::proxy`]. Implemented exactly for the
/// six `dyn *Proxy` types; sealed, because the registry's construction
/// logic is exhaustive over the catalog.
pub trait ProxyApi: sealed::Sealed + Send + Sync {
    /// The capability this proxy type provides.
    const KIND: ProxyKind;

    #[doc(hidden)]
    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>>;

    #[doc(hidden)]
    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError>;
}

impl ProxyApi for dyn LocationProxy {
    const KIND: ProxyKind = ProxyKind::Location;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.location
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_location()
    }
}

impl ProxyApi for dyn SmsProxy {
    const KIND: ProxyKind = ProxyKind::Sms;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.sms
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_sms()
    }
}

impl ProxyApi for dyn CallProxy {
    const KIND: ProxyKind = ProxyKind::Call;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.call
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_call()
    }
}

impl ProxyApi for dyn HttpProxy {
    const KIND: ProxyKind = ProxyKind::Http;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.http
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_http()
    }
}

impl ProxyApi for dyn ContactsProxy {
    const KIND: ProxyKind = ProxyKind::Contacts;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.contacts
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_contacts()
    }
}

impl ProxyApi for dyn CalendarProxy {
    const KIND: ProxyKind = ProxyKind::Calendar;

    fn slot(cache: &ResolutionCache) -> &OnceLock<Arc<Self>> {
        &cache.calendar
    }

    fn construct(runtime: &Mobivine) -> Result<Arc<Self>, ProxyError> {
        runtime.build_calendar()
    }
}

/// The runtime's resilience configuration: one policy and one shared
/// counter block applied identically to every proxy it constructs.
struct ResilienceRuntime {
    policy: ResiliencePolicy,
    metrics: Arc<ResilienceMetrics>,
}

/// The runtime's overload-protection configuration: one policy and one
/// shared counter block applied identically to every proxy it
/// constructs.
struct OverloadRuntime {
    policy: OverloadPolicy,
    metrics: Arc<OverloadMetrics>,
}

/// The runtime's read-through cache configuration: one policy and one
/// shared counter block applied identically to every cacheable proxy
/// it constructs.
struct CacheRuntime {
    policy: CachePolicy,
    metrics: Arc<CacheMetrics>,
}

/// The runtime's durability configuration: one policy, one shared
/// counter block, and one shared [`JournalEngine`] (the write-ahead
/// log + applied-key table) behind every mutating proxy it constructs.
struct JournalRuntime {
    policy: JournalPolicy,
    metrics: Arc<JournalMetrics>,
    engine: Arc<JournalEngine>,
}

/// The MobiVine runtime for one application on one platform.
pub struct Mobivine {
    target: Target,
    catalog: Arc<Vec<ProxyDescriptor>>,
    resilience: Option<ResilienceRuntime>,
    overload: Option<OverloadRuntime>,
    cache: Option<CacheRuntime>,
    journal: Option<JournalRuntime>,
    telemetry: Option<TelemetryRuntime>,
    slo: Option<Arc<SloEngine>>,
    resolved: ResolutionCache,
}

impl fmt::Debug for Mobivine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mobivine")
            .field("platform", &self.platform_id().id().to_owned())
            .field("catalog", &self.catalog.len())
            .field("resolved", &self.resolved.resolved_count())
            .finish()
    }
}

impl Mobivine {
    fn with_target(target: Target) -> Self {
        Self {
            target,
            catalog: Arc::new(mobivine_proxydl::catalog::standard_catalog()),
            resilience: None,
            overload: None,
            cache: None,
            journal: None,
            telemetry: None,
            slo: None,
            resolved: ResolutionCache::default(),
        }
    }

    /// Starts composable construction: platform selection, resilience
    /// and telemetry in any order, one [`MobivineBuilder::build`].
    pub fn builder() -> MobivineBuilder {
        MobivineBuilder::default()
    }

    /// Binds the runtime to an Android application context.
    pub fn for_android(ctx: Context) -> Self {
        Self::with_target(Target::Android(ctx))
    }

    /// Binds the runtime to an S60 platform.
    pub fn for_s60(platform: S60Platform) -> Self {
        Self::with_target(Target::S60(platform))
    }

    /// Binds the runtime to a WebView page, installing the Java
    /// wrappers (the plug-in's `addJavaScriptInterface` injection).
    pub fn for_webview(webview: Arc<WebView>) -> Self {
        install_wrappers(&webview);
        Self::with_target(Target::WebView(webview))
    }

    /// Turns on the resilience layer: every Location/SMS/Call/HTTP
    /// proxy this runtime constructs is pre-wrapped in the matching
    /// [`crate::resilience`] decorator under `policy` — identically on
    /// every platform, so retry behaviour is part of the uniform
    /// surface rather than per-platform application code.
    ///
    /// All decorators share one [`ResilienceMetrics`] block, readable
    /// through [`Mobivine::resilience_metrics`].
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        let metrics = match &self.telemetry {
            Some(t) => ResilienceMetrics::on_registry(t.metrics()),
            None => ResilienceMetrics::shared(),
        };
        self.resilience = Some(ResilienceRuntime { policy, metrics });
        // The decorator stack changed: previously resolved proxies do
        // not carry the new layer, so the memo is invalidated.
        self.resolved = ResolutionCache::default();
        self
    }

    /// Turns on overload protection: every Location/SMS/Call/HTTP proxy
    /// this runtime constructs is wrapped in the matching
    /// [`crate::overload`] decorator under `policy` — a per-proxy
    /// bulkhead, an adaptive load-shedding admission gate and
    /// deadline-aware fail-fast, sitting **outside** the resilience
    /// layer (when present) so a shed never spends retry budget.
    ///
    /// All decorators share one [`OverloadMetrics`] block, readable
    /// through [`Mobivine::overload_metrics`].
    #[must_use]
    pub fn with_overload(mut self, policy: OverloadPolicy) -> Self {
        let metrics = match &self.telemetry {
            Some(t) => OverloadMetrics::on_registry(t.metrics()),
            None => OverloadMetrics::shared(),
        };
        self.overload = Some(OverloadRuntime { policy, metrics });
        self.resolved = ResolutionCache::default();
        self
    }

    /// Turns on the read-through cache layer: the idempotent-read
    /// proxies this runtime constructs (Location, Contacts, Calendar)
    /// are wrapped in the matching [`crate::cache`] decorator under
    /// `policy` — a TTL'd result cache with single-flight coalescing
    /// and stamp-based invalidation, sitting **outside** the overload
    /// layer (when present) so a cache hit costs neither admission nor
    /// binding-plane work, and **inside** the proxy-plane traced layer
    /// so hits and misses both appear in the span tree. Write-shaped
    /// proxies (SMS, Call, HTTP) are never cached.
    ///
    /// All decorators share one [`CacheMetrics`] block, readable
    /// through [`Mobivine::cache_metrics`].
    #[must_use]
    pub fn with_cache(mut self, policy: CachePolicy) -> Self {
        let metrics = match &self.telemetry {
            Some(t) => CacheMetrics::on_registry(t.metrics()),
            None => CacheMetrics::shared(),
        };
        self.cache = Some(CacheRuntime { policy, metrics });
        self.resolved = ResolutionCache::default();
        self
    }

    /// Turns on the durability layer: the mutating proxies this
    /// runtime constructs (SMS, HTTP) are wrapped in the matching
    /// [`crate::journal`] decorator under `policy` — every send or
    /// submit appends an intent record to a shared write-ahead journal
    /// and crosses a simulated fsync barrier *before* the side effect
    /// runs, and mutations carrying an ambient
    /// [`crate::journal::IdempotencyKey`] are deduplicated against the
    /// journal (the `AlreadyApplied` fast path). The decorator sits
    /// **inside** the overload gate (shed calls burn no intent) and
    /// **outside** the retry engine (one logical call appends one
    /// intent, however many retries it takes).
    ///
    /// All decorators share one [`JournalMetrics`] block, readable
    /// through [`Mobivine::journal_metrics`].
    #[must_use]
    pub fn with_journal(mut self, policy: JournalPolicy) -> Self {
        let metrics = match &self.telemetry {
            Some(t) => JournalMetrics::on_registry(t.metrics()),
            None => JournalMetrics::shared(),
        };
        let engine = Arc::new(JournalEngine::new(
            self.device(),
            policy.clone(),
            Arc::clone(&metrics),
        ));
        self.journal = Some(JournalRuntime {
            policy,
            metrics,
            engine,
        });
        self.resolved = ResolutionCache::default();
        self
    }

    /// Turns on plane-aware telemetry: every Location/SMS/Call/HTTP
    /// proxy this runtime constructs is wrapped **twice** in the
    /// matching [`crate::telemetry`] traced decorator — at the
    /// outermost semantic plane and at the binding plane (below the
    /// resilience layer, when present) — so each call descends the
    /// stack as a parented span tree: app → proxy → resilience →
    /// binding → platform → device.
    ///
    /// Metrics publish into the device's [`MetricsRegistry`] (shared
    /// with the device subsystems); spans collect in the tracer
    /// returned by [`Mobivine::tracer`]. If
    /// [`Mobivine::with_resilience`] was already applied, its counters
    /// are re-homed onto the same registry so one exporter covers the
    /// whole call path.
    #[must_use]
    pub fn with_telemetry(self) -> Self {
        self.with_telemetry_retention(mobivine_telemetry::DEFAULT_SPAN_RETENTION)
    }

    /// Like [`Mobivine::with_telemetry`], but each worker thread's span
    /// ring keeps at most `span_retention` finished spans (the oldest
    /// are overwritten and counted as evicted). Fleet-scale runs use a
    /// small retention so tracing ten thousand devices does not hold
    /// ten thousand unbounded span buffers.
    #[must_use]
    pub fn with_telemetry_retention(self, span_retention: usize) -> Self {
        self.with_telemetry_recorder(span_retention, PromotionPolicy::default())
    }

    /// Like [`Mobivine::with_telemetry_retention`], but with an
    /// explicit tail-based [`PromotionPolicy`] deciding which finished
    /// traces the flight recorder promotes into the incident store
    /// ([`Mobivine::incidents`]) before ring wrap-around can overwrite
    /// them.
    #[must_use]
    pub fn with_telemetry_recorder(
        mut self,
        span_retention: usize,
        policy: PromotionPolicy,
    ) -> Self {
        let mut telemetry = TelemetryRuntime::with_recorder(
            Arc::clone(self.device().metrics()),
            span_retention,
            policy,
        );
        if let Some(engine) = &self.slo {
            telemetry = telemetry.with_slo(Arc::clone(engine));
        }
        if let Some(r) = &mut self.resilience {
            r.metrics = ResilienceMetrics::on_registry(telemetry.metrics());
        }
        if let Some(o) = &mut self.overload {
            o.metrics = OverloadMetrics::on_registry(telemetry.metrics());
        }
        if let Some(c) = &mut self.cache {
            c.metrics = CacheMetrics::on_registry(telemetry.metrics());
        }
        let device = self.device();
        if let Some(j) = &mut self.journal {
            // Re-home the counters and rebuild the engine on them: this
            // runs at wiring time, before any intent could have been
            // appended, so the fresh (empty) journal is equivalent.
            j.metrics = JournalMetrics::on_registry(telemetry.metrics());
            j.engine = Arc::new(JournalEngine::new(
                device,
                j.policy.clone(),
                Arc::clone(&j.metrics),
            ));
        }
        self.telemetry = Some(telemetry);
        self.resolved = ResolutionCache::default();
        self
    }

    /// Attaches a declarative SLO engine: proxy-plane decorators feed
    /// every finished call's `(ok, latency)` into the engine's matching
    /// `(proxy, method, platform)` objectives, evaluated on virtual-time
    /// multi-window burn rates. Order-independent with
    /// [`Mobivine::with_telemetry`] — whichever comes second picks up
    /// the other. Without telemetry the engine records nothing (the
    /// proxy plane is where outcomes are observed).
    #[must_use]
    pub fn with_slo(mut self, engine: Arc<SloEngine>) -> Self {
        if let Some(telemetry) = self.telemetry.take() {
            self.telemetry = Some(telemetry.with_slo(Arc::clone(&engine)));
        }
        self.slo = Some(engine);
        self.resolved = ResolutionCache::default();
        self
    }

    /// The shared resilience counters, when
    /// [`Mobivine::with_resilience`] was applied.
    pub fn resilience_metrics(&self) -> Option<Arc<ResilienceMetrics>> {
        self.resilience.as_ref().map(|r| Arc::clone(&r.metrics))
    }

    /// The shared overload-protection counters, when
    /// [`Mobivine::with_overload`] was applied.
    pub fn overload_metrics(&self) -> Option<Arc<OverloadMetrics>> {
        self.overload.as_ref().map(|o| Arc::clone(&o.metrics))
    }

    /// The shared cache counters, when [`Mobivine::with_cache`] was
    /// applied.
    pub fn cache_metrics(&self) -> Option<Arc<CacheMetrics>> {
        self.cache.as_ref().map(|c| Arc::clone(&c.metrics))
    }

    /// The shared durability counters, when [`Mobivine::with_journal`]
    /// was applied.
    pub fn journal_metrics(&self) -> Option<Arc<JournalMetrics>> {
        self.journal.as_ref().map(|j| Arc::clone(&j.metrics))
    }

    /// The shared write-ahead journal engine, when
    /// [`Mobivine::with_journal`] was applied.
    pub fn journal_engine(&self) -> Option<&Arc<JournalEngine>> {
        self.journal.as_ref().map(|j| &j.engine)
    }

    /// The tracer collecting proxy-call spans, when
    /// [`Mobivine::with_telemetry`] was applied.
    pub fn tracer(&self) -> Option<&mobivine_telemetry::Tracer> {
        self.telemetry.as_ref().map(TelemetryRuntime::tracer)
    }

    /// The metrics registry the traced proxies publish into, when
    /// [`Mobivine::with_telemetry`] was applied. This is the device's
    /// registry, so device-layer series appear alongside the proxy
    /// series.
    pub fn telemetry_metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.telemetry.as_ref().map(|t| Arc::clone(t.metrics()))
    }

    /// The flight recorder's bounded store of promoted incident traces,
    /// when [`Mobivine::with_telemetry`] was applied.
    pub fn incidents(&self) -> Option<&Arc<IncidentStore>> {
        self.telemetry
            .as_ref()
            .and_then(TelemetryRuntime::incidents)
    }

    /// The SLO engine grading proxy-plane calls, when
    /// [`Mobivine::with_slo`] was applied.
    pub fn slo_engine(&self) -> Option<&Arc<SloEngine>> {
        self.slo.as_ref()
    }

    /// The simulated device underneath whichever platform binding this
    /// runtime targets — the clock source for resilience backoffs.
    fn device(&self) -> Device {
        match &self.target {
            Target::Android(ctx) => ctx.device().clone(),
            Target::S60(platform) => platform.device().clone(),
            Target::WebView(webview) => webview.context().device().clone(),
        }
    }

    /// The platform this runtime targets.
    pub fn platform_id(&self) -> PlatformId {
        match &self.target {
            Target::Android(_) => PlatformId::Android,
            Target::S60(_) => PlatformId::NokiaS60,
            Target::WebView(_) => PlatformId::AndroidWebView,
        }
    }

    /// The descriptor catalog backing this runtime.
    pub fn catalog(&self) -> &[ProxyDescriptor] {
        &self.catalog
    }

    /// Whether `interface` (descriptor name, e.g. `"Call"`) has a
    /// binding on the running platform.
    pub fn supports(&self, interface: &str) -> bool {
        let platform = self.platform_id();
        self.catalog
            .iter()
            .find(|d| d.name == interface)
            .is_some_and(|d| d.binding_for(&platform).is_some())
    }

    /// Whether `kind` has a binding on the running platform.
    pub fn supports_kind(&self, kind: ProxyKind) -> bool {
        self.supports(kind.interface())
    }

    fn unsupported(&self, interface: &str) -> ProxyError {
        ProxyError::new(
            ProxyErrorKind::UnsupportedOnPlatform,
            format!(
                "interface {interface} has no binding on platform {}",
                self.platform_id().id()
            ),
        )
    }

    /// Resolves the proxy for capability `P`, memoized.
    ///
    /// The first acquisition of each [`ProxyKind`] constructs the
    /// platform binding with the full decorator stack (telemetry,
    /// resilience) and caches the shared instance; every later
    /// acquisition is a lock-free read returning a clone of the same
    /// `Arc`. This is the hot-path acquisition primitive fleet-scale
    /// workloads lean on: acquisition cost collapses from per-call
    /// construction to one atomic load.
    ///
    /// # Errors
    ///
    /// `UnsupportedOnPlatform` if the catalog has no binding for
    /// `P::KIND` on this platform, or any construction error from the
    /// binding module. Errors are not cached; a failed resolution is
    /// retried on the next acquisition.
    ///
    /// # Example
    ///
    /// ```
    /// # use mobivine::registry::Mobivine;
    /// # use mobivine::api::LocationProxy;
    /// # use mobivine_android::{AndroidPlatform, SdkVersion};
    /// # use mobivine_device::Device;
    /// # let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
    /// # let runtime = Mobivine::for_android(platform.new_context());
    /// let first = runtime.proxy::<dyn LocationProxy>()?;
    /// let second = runtime.proxy::<dyn LocationProxy>()?;
    /// assert!(std::sync::Arc::ptr_eq(&first, &second));
    /// # Ok::<(), mobivine::error::ProxyError>(())
    /// ```
    pub fn proxy<P: ProxyApi + ?Sized>(&self) -> Result<Arc<P>, ProxyError> {
        let slot = P::slot(&self.resolved);
        if let Some(hit) = slot.get() {
            return Ok(Arc::clone(hit));
        }
        let constructed = P::construct(self)?;
        // Under a race the first writer wins and everyone shares its
        // instance; the loser's construction is dropped.
        Ok(Arc::clone(slot.get_or_init(|| constructed)))
    }

    /// Pre-resolves every capability with a binding on this platform,
    /// returning how many were cached. Fleet workloads call this once
    /// per runtime so steady-state acquisition never constructs.
    ///
    /// # Errors
    ///
    /// Propagates the first construction error; kinds without a
    /// binding are skipped, not errors.
    pub fn warm(&self) -> Result<usize, ProxyError> {
        let mut resolved = 0;
        for kind in ProxyKind::ALL {
            if !self.supports_kind(kind) {
                continue;
            }
            match kind {
                ProxyKind::Location => drop(self.proxy::<dyn LocationProxy>()?),
                ProxyKind::Sms => drop(self.proxy::<dyn SmsProxy>()?),
                ProxyKind::Call => drop(self.proxy::<dyn CallProxy>()?),
                ProxyKind::Http => drop(self.proxy::<dyn HttpProxy>()?),
                ProxyKind::Contacts => drop(self.proxy::<dyn ContactsProxy>()?),
                ProxyKind::Calendar => drop(self.proxy::<dyn CalendarProxy>()?),
            }
            resolved += 1;
        }
        Ok(resolved)
    }

    fn build_location(&self) -> Result<Arc<dyn LocationProxy>, ProxyError> {
        if !self.supports("Location") {
            return Err(self.unsupported("Location"));
        }
        let mut proxy: Arc<dyn LocationProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidLocationProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60LocationProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewLocationProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedLocationProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        let mut circuit_epoch = None;
        if let Some(r) = &self.resilience {
            let resilient = ResilientLocationProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            );
            circuit_epoch = Some(resilient.circuit_epoch_handle());
            proxy = Arc::new(resilient);
        }
        if let Some(o) = &self.overload {
            proxy = Arc::new(OverloadLocationProxy::new(
                proxy,
                self.device(),
                o.policy.clone(),
                Arc::clone(&o.metrics),
            ));
        }
        if let Some(c) = &self.cache {
            proxy = Arc::new(CachedLocationProxy::new(
                proxy,
                self.device(),
                &c.policy,
                circuit_epoch,
                Arc::clone(&c.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedLocationProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    fn build_sms(&self) -> Result<Arc<dyn SmsProxy>, ProxyError> {
        if !self.supports("SMS") {
            return Err(self.unsupported("SMS"));
        }
        let mut proxy: Arc<dyn SmsProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidSmsProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60SmsProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewSmsProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedSmsProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientSmsProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(j) = &self.journal {
            proxy = Arc::new(JournaledSmsProxy::new(proxy, Arc::clone(&j.engine)));
        }
        if let Some(o) = &self.overload {
            proxy = Arc::new(OverloadSmsProxy::new(
                proxy,
                self.device(),
                o.policy.clone(),
                Arc::clone(&o.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedSmsProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    fn build_call(&self) -> Result<Arc<dyn CallProxy>, ProxyError> {
        if !self.supports("Call") {
            return Err(self.unsupported("Call"));
        }
        let mut proxy: Arc<dyn CallProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidCallProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(_) => return Err(self.unsupported("Call")),
            Target::WebView(webview) => Arc::new(WebViewCallProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedCallProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientCallProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(o) = &self.overload {
            proxy = Arc::new(OverloadCallProxy::new(
                proxy,
                self.device(),
                o.policy.clone(),
                Arc::clone(&o.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedCallProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    fn build_http(&self) -> Result<Arc<dyn HttpProxy>, ProxyError> {
        if !self.supports("Http") {
            return Err(self.unsupported("Http"));
        }
        let mut proxy: Arc<dyn HttpProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidHttpProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60HttpProxy::new(platform.clone())),
            Target::WebView(webview) => Arc::new(WebViewHttpProxy::new(webview)?),
        };
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedHttpProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Binding,
                self.platform_id().id(),
            ));
        }
        if let Some(r) = &self.resilience {
            proxy = Arc::new(ResilientHttpProxy::new(
                proxy,
                self.device(),
                r.policy.clone(),
                Arc::clone(&r.metrics),
            ));
        }
        if let Some(j) = &self.journal {
            proxy = Arc::new(JournaledHttpProxy::new(proxy, Arc::clone(&j.engine)));
        }
        if let Some(o) = &self.overload {
            proxy = Arc::new(OverloadHttpProxy::new(
                proxy,
                self.device(),
                o.policy.clone(),
                Arc::clone(&o.metrics),
            ));
        }
        if let Some(t) = &self.telemetry {
            proxy = Arc::new(TracedHttpProxy::new(
                proxy,
                self.device(),
                t,
                Plane::Proxy,
                self.platform_id().id(),
            ));
        }
        Ok(proxy)
    }

    fn build_contacts(&self) -> Result<Arc<dyn ContactsProxy>, ProxyError> {
        if !self.supports("Contacts") {
            return Err(self.unsupported("Contacts"));
        }
        let mut proxy: Arc<dyn ContactsProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidContactsProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60ContactsProxy::new(platform.clone())),
            Target::WebView(_) => return Err(self.unsupported("Contacts")),
        };
        if let Some(c) = &self.cache {
            proxy = Arc::new(CachedContactsProxy::new(
                proxy,
                self.device(),
                &c.policy,
                Arc::clone(&c.metrics),
            ));
        }
        Ok(proxy)
    }

    fn build_calendar(&self) -> Result<Arc<dyn CalendarProxy>, ProxyError> {
        if !self.supports("Calendar") {
            return Err(self.unsupported("Calendar"));
        }
        let mut proxy: Arc<dyn CalendarProxy> = match &self.target {
            Target::Android(ctx) => {
                let proxy = AndroidCalendarProxy::new();
                proxy.set_property("context", PropertyValue::opaque(ctx.clone()))?;
                Arc::new(proxy)
            }
            Target::S60(platform) => Arc::new(S60CalendarProxy::new(platform.clone())),
            Target::WebView(_) => return Err(self.unsupported("Calendar")),
        };
        if let Some(c) = &self.cache {
            proxy = Arc::new(CachedCalendarProxy::new(
                proxy,
                self.device(),
                &c.policy,
                Arc::clone(&c.metrics),
            ));
        }
        Ok(proxy)
    }
}

/// Composable construction of a [`Mobivine`] runtime.
///
/// The legacy surface requires a fixed sequence — a `for_*` constructor
/// first, then `with_resilience` / `with_telemetry` in an order the
/// caller must get right. The builder accepts platform selection,
/// resilience, telemetry and a shared catalog **in any order** and
/// applies them canonically in [`MobivineBuilder::build`] (telemetry is
/// wired before resilience so the resilience counters always land on
/// the telemetry registry when both are present).
///
/// # Example
///
/// ```
/// use mobivine::registry::Mobivine;
/// use mobivine::resilience::ResiliencePolicy;
/// use mobivine_android::{AndroidPlatform, SdkVersion};
/// use mobivine_device::Device;
///
/// let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
/// // Options first, platform last — any order works.
/// let runtime = Mobivine::builder()
///     .with_resilience(ResiliencePolicy::default())
///     .with_telemetry()
///     .android(platform.new_context())
///     .build()?;
/// assert!(runtime.tracer().is_some());
/// assert!(runtime.resilience_metrics().is_some());
/// # Ok::<(), mobivine::error::ProxyError>(())
/// ```
#[derive(Default)]
pub struct MobivineBuilder {
    target: Option<Target>,
    catalog: Option<Arc<Vec<ProxyDescriptor>>>,
    resilience: Option<ResiliencePolicy>,
    overload: Option<OverloadPolicy>,
    cache: Option<CachePolicy>,
    journal: Option<JournalPolicy>,
    /// Span retention per worker ring, when telemetry is enabled.
    telemetry: Option<usize>,
    /// Tail-based promotion policy override, when telemetry is enabled.
    promotion: Option<PromotionPolicy>,
    slo: Option<Arc<SloEngine>>,
}

impl fmt::Debug for MobivineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MobivineBuilder")
            .field("target", &self.target.is_some())
            .field("resilience", &self.resilience.is_some())
            .field("overload", &self.overload.is_some())
            .field("cache", &self.cache.is_some())
            .field("journal", &self.journal.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl MobivineBuilder {
    /// Targets an Android application context.
    #[must_use]
    pub fn android(mut self, ctx: Context) -> Self {
        self.target = Some(Target::Android(ctx));
        self
    }

    /// Targets an S60 platform.
    #[must_use]
    pub fn s60(mut self, platform: S60Platform) -> Self {
        self.target = Some(Target::S60(platform));
        self
    }

    /// Targets a WebView page. The Java wrappers are installed at
    /// [`MobivineBuilder::build`] time.
    #[must_use]
    pub fn webview(mut self, webview: Arc<WebView>) -> Self {
        self.target = Some(Target::WebView(webview));
        self
    }

    /// Uses a shared descriptor catalog instead of a private copy of
    /// the standard one. Fleet shards pass one `Arc` to every runtime
    /// they own, so a 10k-device shard holds one catalog, not 10k.
    #[must_use]
    pub fn catalog(mut self, catalog: Arc<Vec<ProxyDescriptor>>) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Enables the resilience layer (see [`Mobivine::with_resilience`]).
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// Enables overload protection (see [`Mobivine::with_overload`]).
    #[must_use]
    pub fn with_overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Enables the read-through cache layer (see
    /// [`Mobivine::with_cache`]).
    #[must_use]
    pub fn with_cache(mut self, policy: CachePolicy) -> Self {
        self.cache = Some(policy);
        self
    }

    /// Enables the durability layer (see [`Mobivine::with_journal`]).
    #[must_use]
    pub fn with_journal(mut self, policy: JournalPolicy) -> Self {
        self.journal = Some(policy);
        self
    }

    /// Enables plane-aware telemetry (see [`Mobivine::with_telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = Some(mobivine_telemetry::DEFAULT_SPAN_RETENTION);
        self
    }

    /// Enables telemetry with a bounded per-worker span retention (see
    /// [`Mobivine::with_telemetry_retention`]).
    #[must_use]
    pub fn with_telemetry_retention(mut self, span_retention: usize) -> Self {
        self.telemetry = Some(span_retention);
        self
    }

    /// Overrides the flight recorder's tail-based promotion policy (see
    /// [`Mobivine::with_telemetry_recorder`]). Implies telemetry at the
    /// default retention unless `with_telemetry_retention` also runs.
    #[must_use]
    pub fn with_promotion_policy(mut self, policy: PromotionPolicy) -> Self {
        self.telemetry
            .get_or_insert(mobivine_telemetry::DEFAULT_SPAN_RETENTION);
        self.promotion = Some(policy);
        self
    }

    /// Attaches a declarative SLO engine (see [`Mobivine::with_slo`]).
    #[must_use]
    pub fn with_slo(mut self, engine: Arc<SloEngine>) -> Self {
        self.slo = Some(engine);
        self
    }

    /// Builds the runtime, applying the configured options in canonical
    /// order regardless of the order the builder methods were called.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` if no platform target was selected.
    pub fn build(self) -> Result<Mobivine, ProxyError> {
        let Some(target) = self.target else {
            return Err(ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                "MobivineBuilder needs a platform target: call android(), s60() or webview()",
            ));
        };
        let mut runtime = match target {
            Target::Android(ctx) => Mobivine::for_android(ctx),
            Target::S60(platform) => Mobivine::for_s60(platform),
            Target::WebView(webview) => Mobivine::for_webview(webview),
        };
        if let Some(catalog) = self.catalog {
            runtime.catalog = catalog;
        }
        if let Some(engine) = self.slo {
            runtime = runtime.with_slo(engine);
        }
        if let Some(span_retention) = self.telemetry {
            let policy = self.promotion.unwrap_or_default();
            runtime = runtime.with_telemetry_recorder(span_retention, policy);
        }
        if let Some(policy) = self.resilience {
            runtime = runtime.with_resilience(policy);
        }
        if let Some(policy) = self.journal {
            runtime = runtime.with_journal(policy);
        }
        if let Some(policy) = self.overload {
            runtime = runtime.with_overload(policy);
        }
        if let Some(policy) = self.cache {
            runtime = runtime.with_cache(policy);
        }
        Ok(runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;

    fn android_runtime() -> Mobivine {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        Mobivine::for_android(platform.new_context())
    }

    #[test]
    fn android_supports_all_paper_interfaces() {
        let runtime = android_runtime();
        for interface in ["Location", "SMS", "Call", "Http", "Contacts", "Calendar"] {
            assert!(runtime.supports(interface), "{interface}");
        }
        assert!(runtime.proxy::<dyn LocationProxy>().is_ok());
        assert!(runtime.proxy::<dyn SmsProxy>().is_ok());
        assert!(runtime.proxy::<dyn CallProxy>().is_ok());
        assert!(runtime.proxy::<dyn HttpProxy>().is_ok());
        assert!(runtime.proxy::<dyn ContactsProxy>().is_ok());
        assert!(runtime.proxy::<dyn CalendarProxy>().is_ok());
    }

    #[test]
    fn s60_has_no_call_proxy() {
        let runtime = Mobivine::for_s60(S60Platform::new(Device::builder().build()));
        assert!(!runtime.supports("Call"));
        assert!(!runtime.supports_kind(ProxyKind::Call));
        let err = match runtime.proxy::<dyn CallProxy>() {
            Err(err) => err,
            Ok(_) => panic!("call proxy must not exist on S60"),
        };
        assert_eq!(err.kind(), ProxyErrorKind::UnsupportedOnPlatform);
        assert!(runtime.proxy::<dyn LocationProxy>().is_ok());
        assert!(runtime.proxy::<dyn SmsProxy>().is_ok());
        assert!(runtime.proxy::<dyn HttpProxy>().is_ok());
    }

    #[test]
    fn webview_runtime_installs_wrappers() {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(platform.new_context()));
        let runtime = Mobivine::for_webview(Arc::clone(&webview));
        assert_eq!(webview.interface_names().len(), 4);
        assert!(runtime.proxy::<dyn LocationProxy>().is_ok());
        assert!(runtime.proxy::<dyn CallProxy>().is_ok());
        assert!(runtime.proxy::<dyn ContactsProxy>().is_err());
    }

    #[test]
    fn platform_ids_reported() {
        assert_eq!(android_runtime().platform_id(), PlatformId::Android);
        assert_eq!(
            Mobivine::for_s60(S60Platform::new(Device::builder().build())).platform_id(),
            PlatformId::NokiaS60
        );
    }

    #[test]
    fn catalog_is_the_standard_one() {
        assert_eq!(android_runtime().catalog().len(), 6);
    }

    #[test]
    fn proxy_kind_names_cover_the_catalog() {
        let runtime = android_runtime();
        for kind in ProxyKind::ALL {
            assert!(
                runtime.catalog().iter().any(|d| d.name == kind.interface()),
                "catalog names {kind}"
            );
        }
    }

    #[test]
    fn resolution_is_memoized_per_kind() {
        let runtime = android_runtime();
        let first = runtime.proxy::<dyn LocationProxy>().unwrap();
        let second = runtime.proxy::<dyn LocationProxy>().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same cached instance");
        // Distinct runtimes have distinct caches.
        let other = android_runtime().proxy::<dyn LocationProxy>().unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn failed_resolution_is_not_cached() {
        let runtime = Mobivine::for_s60(S60Platform::new(Device::builder().build()));
        assert!(runtime.proxy::<dyn CallProxy>().is_err());
        assert_eq!(runtime.resolved.resolved_count(), 0);
        assert!(runtime.proxy::<dyn CallProxy>().is_err());
    }

    #[test]
    fn warm_resolves_every_supported_kind() {
        let runtime = android_runtime();
        assert_eq!(runtime.warm().unwrap(), 6);
        assert_eq!(runtime.resolved.resolved_count(), 6);

        let s60 = Mobivine::for_s60(S60Platform::new(Device::builder().build()));
        assert_eq!(s60.warm().unwrap(), 5, "everything but Call");
    }

    #[test]
    fn with_resilience_pre_wraps_proxies_on_every_platform() {
        let device = Device::builder().build();
        let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(android.new_context()));
        let runtimes = [
            Mobivine::for_android(android.new_context()),
            Mobivine::for_s60(S60Platform::new(device.clone())),
            Mobivine::for_webview(webview),
        ];
        for runtime in runtimes {
            let runtime = runtime.with_resilience(ResiliencePolicy::default());
            let metrics = runtime.resilience_metrics().expect("metrics installed");
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            // The resilience property plane answers on the wrapped
            // proxy — proof the decorator is in front on this platform.
            location
                .set_property("retry.max_attempts", PropertyValue::Int(7))
                .unwrap();
            let _ = location.get_location();
            assert_eq!(
                metrics.snapshot().calls,
                1,
                "call flowed through the decorator on {:?}",
                runtime.platform_id()
            );
            assert!(runtime.proxy::<dyn SmsProxy>().is_ok());
            assert!(runtime.proxy::<dyn HttpProxy>().is_ok());
        }
    }

    #[test]
    fn runtime_without_resilience_reports_no_metrics() {
        assert!(android_runtime().resilience_metrics().is_none());
        assert!(android_runtime().overload_metrics().is_none());
    }

    #[test]
    fn with_overload_pre_wraps_proxies_on_every_platform() {
        let device = Device::builder().build();
        let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(android.new_context()));
        let runtimes = [
            Mobivine::for_android(android.new_context()),
            Mobivine::for_s60(S60Platform::new(device.clone())),
            Mobivine::for_webview(webview),
        ];
        for runtime in runtimes {
            let runtime = runtime.with_overload(OverloadPolicy::default());
            let metrics = runtime.overload_metrics().expect("metrics installed");
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            // The overload property plane answers on the wrapped proxy
            // — proof the decorator is in front on this platform.
            location
                .set_property("bulkhead.max_concurrency", PropertyValue::Int(3))
                .unwrap();
            let _ = location.get_location();
            assert_eq!(
                metrics.snapshot().admitted,
                1,
                "call was admitted through the gate on {:?}",
                runtime.platform_id()
            );
            assert!(runtime.proxy::<dyn SmsProxy>().is_ok());
            assert!(runtime.proxy::<dyn HttpProxy>().is_ok());
        }
    }

    #[test]
    fn overload_sits_outside_resilience_and_homes_on_the_telemetry_registry() {
        let builder_runtime = Mobivine::builder()
            .with_telemetry()
            .with_resilience(ResiliencePolicy::default())
            .with_overload(OverloadPolicy::default())
            .android(
                AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context(),
            )
            .build()
            .unwrap();
        let overload = builder_runtime.overload_metrics().expect("overload");
        let resilience = builder_runtime.resilience_metrics().expect("resilience");
        let location = builder_runtime.proxy::<dyn LocationProxy>().unwrap();
        let _ = location.get_location();
        // One call traverses admission first, then the retry engine.
        assert_eq!(overload.snapshot().admitted, 1);
        assert_eq!(resilience.snapshot().calls, 1);
        let exposition = builder_runtime
            .telemetry_metrics()
            .expect("telemetry registry")
            .render_prometheus();
        assert!(
            exposition.contains("overload_admitted_total"),
            "overload series on the telemetry registry:\n{exposition}"
        );
    }

    #[test]
    fn builder_composes_in_any_order() {
        // Separate devices: resilience counters land on each device's
        // own telemetry registry, so the assertions don't alias.
        let option_first = Mobivine::builder()
            .with_telemetry()
            .with_resilience(ResiliencePolicy::default())
            .android(
                AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context(),
            )
            .build()
            .unwrap();
        let platform_first = Mobivine::builder()
            .android(
                AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context(),
            )
            .with_resilience(ResiliencePolicy::default())
            .with_telemetry()
            .build()
            .unwrap();

        for runtime in [option_first, platform_first] {
            assert!(runtime.tracer().is_some());
            let metrics = runtime.resilience_metrics().expect("resilience installed");
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            let _ = location.get_location();
            assert_eq!(metrics.snapshot().calls, 1);
            // Resilience counters are homed on the telemetry registry
            // regardless of builder-call order.
            let exposition = runtime
                .telemetry_metrics()
                .expect("telemetry registry")
                .render_prometheus();
            assert!(
                exposition.contains("resilience"),
                "resilience series on the telemetry registry:\n{exposition}"
            );
        }
    }

    #[test]
    fn slo_composes_in_any_order_and_incidents_are_reachable() {
        use mobivine_telemetry::{SloObjective, SloTarget};

        let objectives = || {
            vec![SloObjective {
                name: "location-availability".into(),
                proxy: "Location".into(),
                method: "getLocation".into(),
                platform: "android".into(),
                target: SloTarget::Availability {
                    target_ppm: 999_000,
                },
            }]
        };
        let slo_first = Mobivine::builder()
            .with_slo(Arc::new(SloEngine::new(objectives())))
            .with_telemetry()
            .android(
                AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context(),
            )
            .build()
            .unwrap();
        let telemetry_first = Mobivine::for_android(
            AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context(),
        )
        .with_telemetry()
        .with_slo(Arc::new(SloEngine::new(objectives())));

        for runtime in [slo_first, telemetry_first] {
            let engine = Arc::clone(runtime.slo_engine().expect("slo engine"));
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            location.get_location().unwrap();
            let report = engine.report(1);
            assert_eq!(
                report.statuses[0].fast.good, 1,
                "proxy plane feeds the engine regardless of wiring order"
            );
            assert!(runtime.incidents().expect("incident store").is_empty());
        }
    }

    #[test]
    fn builder_without_platform_is_an_error() {
        let err = match Mobivine::builder().with_telemetry().build() {
            Err(err) => err,
            Ok(_) => panic!("platformless build must fail"),
        };
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn builder_shares_a_caller_provided_catalog() {
        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let catalog = Arc::new(mobivine_proxydl::catalog::standard_catalog());
        let a = Mobivine::builder()
            .catalog(Arc::clone(&catalog))
            .android(platform.new_context())
            .build()
            .unwrap();
        let b = Mobivine::builder()
            .catalog(Arc::clone(&catalog))
            .s60(S60Platform::new(device))
            .build()
            .unwrap();
        assert!(std::ptr::eq(a.catalog().as_ptr(), b.catalog().as_ptr()));
    }

    #[test]
    fn with_cache_serves_the_second_read_without_binding_work() {
        let device = Device::builder().build();
        let android = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(android.new_context()));
        let runtimes = [
            Mobivine::for_android(android.new_context()),
            Mobivine::for_s60(S60Platform::new(device.clone())),
            Mobivine::for_webview(webview),
        ];
        for runtime in runtimes {
            let runtime = runtime.with_cache(CachePolicy::default());
            let metrics = runtime.cache_metrics().expect("metrics installed");
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            location.get_location().unwrap();
            location.get_location().unwrap();
            let snap = metrics.snapshot();
            assert_eq!(
                (snap.miss, snap.hit),
                (1, 1),
                "second read served hot on {:?}",
                runtime.platform_id()
            );
        }
    }

    #[test]
    fn with_journal_dedups_sms_and_stamps_http_urls() {
        use crate::journal::{with_idempotency_key, IdempotencyKey, JournalPolicy};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Mobivine::builder()
            .with_resilience(ResiliencePolicy::default())
            .with_journal(JournalPolicy::default())
            .android(platform.new_context())
            .build()
            .unwrap();
        let metrics = runtime.journal_metrics().expect("journal installed");
        let resilience = runtime.resilience_metrics().expect("resilience installed");
        let sms = runtime.proxy::<dyn SmsProxy>().unwrap();

        let key = IdempotencyKey::derive(7, 1, 1, 0);
        let first = with_idempotency_key(key, || sms.send_text_message("100", "hi", None));
        let second = with_idempotency_key(key, || sms.send_text_message("100", "hi", None));
        let (first, second) = (first.unwrap(), second.unwrap());
        assert_eq!(first, second, "duplicate answered with the memoized id");
        let snap = metrics.snapshot();
        assert_eq!(snap.appends, 1, "one logical send, one intent");
        assert_eq!(snap.fsyncs, 1);
        assert_eq!(snap.already_applied, 1, "the duplicate was counted");
        assert_eq!(
            resilience.snapshot().calls,
            1,
            "the duplicate never reached the retry engine — Journaled sits outside Resilient"
        );

        // A fresh key is a fresh logical call.
        let other = IdempotencyKey::derive(7, 1, 2, 0);
        let third = with_idempotency_key(other, || sms.send_text_message("100", "hi", None));
        assert_ne!(first, third.unwrap());
        assert_eq!(metrics.snapshot().appends, 2);
    }

    #[test]
    fn journaled_http_carries_the_idempotency_key_on_the_wire() {
        use crate::journal::{with_idempotency_key, IdempotencyKey, JournalPolicy};
        use std::sync::Mutex;

        let device = Device::builder().build();
        let seen: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_by_route = Arc::clone(&seen);
        device.network().register_route(
            "backend.example",
            mobivine_device::net::Method::Post,
            "/submit",
            move |req: &mobivine_device::net::HttpRequest| {
                seen_by_route.lock().unwrap().push(req.url.query.clone());
                mobivine_device::net::HttpResponse::ok(b"{}".to_vec())
            },
        );
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let runtime = Mobivine::builder()
            .with_journal(JournalPolicy::default())
            .android(platform.new_context())
            .build()
            .unwrap();
        let http = runtime.proxy::<dyn HttpProxy>().unwrap();

        let key = IdempotencyKey::derive(7, 2, 1, 0);
        let res = with_idempotency_key(key, || {
            http.request("POST", "http://backend.example/submit", b"{}")
        })
        .unwrap();
        assert!(res.is_success());
        // Keyless requests stay unstamped.
        http.request("POST", "http://backend.example/submit", b"{}")
            .unwrap();
        let queries = seen.lock().unwrap().clone();
        assert_eq!(
            queries,
            vec![Some(format!("idem={}", key.to_hex())), None],
            "the key travels as the idem query parameter"
        );
        assert_eq!(runtime.journal_metrics().unwrap().snapshot().appends, 2);
    }

    /// Pins the canonical decorator layering,
    /// `Traced(Proxy) → Cached → Overload → Resilient →
    /// Traced(Binding)`, for every wiring order: a cache hit must cost
    /// no admission (Cached outside Overload), a miss must pass the
    /// gate exactly once, and the cache counters must land on the
    /// telemetry registry whichever call came first.
    #[test]
    fn decorator_layering_is_canonical_regardless_of_wiring_order() {
        let runtime_for = |n: usize| {
            let ctx =
                AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context();
            match n {
                // Builder, options before platform.
                0 => Mobivine::builder()
                    .with_cache(CachePolicy::default())
                    .with_overload(OverloadPolicy::default())
                    .with_resilience(ResiliencePolicy::default())
                    .with_telemetry()
                    .android(ctx)
                    .build()
                    .unwrap(),
                // Builder, reversed option order.
                1 => Mobivine::builder()
                    .android(ctx)
                    .with_telemetry()
                    .with_resilience(ResiliencePolicy::default())
                    .with_overload(OverloadPolicy::default())
                    .with_cache(CachePolicy::default())
                    .build()
                    .unwrap(),
                // Legacy chain, cache wired before telemetry — the
                // re-homing path.
                _ => Mobivine::for_android(ctx)
                    .with_cache(CachePolicy::default())
                    .with_overload(OverloadPolicy::default())
                    .with_resilience(ResiliencePolicy::default())
                    .with_telemetry(),
            }
        };
        for n in 0..3 {
            let runtime = runtime_for(n);
            let cache = runtime.cache_metrics().expect("cache installed");
            let overload = runtime.overload_metrics().expect("overload installed");
            let resilience = runtime.resilience_metrics().expect("resilience installed");
            let location = runtime.proxy::<dyn LocationProxy>().unwrap();
            location.get_location().unwrap();
            location.get_location().unwrap();
            let (c, o, r) = (cache.snapshot(), overload.snapshot(), resilience.snapshot());
            assert_eq!((c.miss, c.hit), (1, 1), "order {n}: one fill, one hit");
            assert_eq!(
                o.admitted, 1,
                "order {n}: the hit bypassed admission — Cached sits outside Overload"
            );
            assert_eq!(
                r.calls, 1,
                "order {n}: the hit spent no retry budget — Cached sits outside Resilient"
            );
            let exposition = runtime
                .telemetry_metrics()
                .expect("telemetry registry")
                .render_prometheus();
            assert!(
                exposition.contains("cache_hit_total"),
                "order {n}: cache series homed on the telemetry registry:\n{exposition}"
            );
        }
    }
}
