//! Crash-fault tolerance for the mutating M-Proxy paths: a simulated
//! write-ahead journal, checkpoints, and idempotency keys.
//!
//! Every layer so far assumes the middleware process never dies: proxy
//! state, cache stamps and circuit breakers all live in memory, so a
//! crash silently loses accepted mutations and re-delivery duplicates
//! them. This module makes process death an ordinary fault class, the
//! same way the resilience layer absorbed transport faults and the
//! overload layer absorbed traffic storms:
//!
//! * a **[`Journal`]** — an append-only write-ahead log with length +
//!   FNV-1a checksum record framing, a volatile buffer drained to the
//!   durable image by an explicit [`Journal::fsync`] barrier, segment
//!   rotation at record boundaries, and torn-tail detection: recovery
//!   scans the durable image, truncates the first incomplete or
//!   checksum-corrupt frame, and replays only fully committed records;
//! * a **[`CheckpointCell`]** — a typed snapshot of arbitrary state
//!   plus the journal high-water mark it covers, so recovery is
//!   replay-from-checkpoint, never replay-from-genesis;
//! * **[`IdempotencyKey`]s** — deterministic per `(seed, device,
//!   round, op)` and carried down the call path through an ambient
//!   per-thread scope ([`with_idempotency_key`]), exactly like the
//!   overload layer's deadlines. A mutation whose key is already
//!   journaled as committed is answered from the journal — the typed
//!   [`ProxyErrorKind::AlreadyApplied`] fast path, counted and
//!   converted back into the memoized success, never surfaced as a
//!   failure;
//! * **`Journaled` decorators** for the mutating proxy surfaces (SMS
//!   send, HTTP submit, `setProperty`) that append an intent record
//!   and cross the fsync barrier *before* the side effect runs. The
//!   decorator sits between the overload and resilience layers
//!   (`… → Overload → Journaled → Resilient → …`), so shed calls burn
//!   no intent and resilience retries of one logical call never
//!   re-append.
//!
//! The fsync barrier charges a deterministic latency
//! ([`JournalPolicy::fsync_latency_ms`]) to the device's simulated
//! clock — the same "the caller advances its clock" convention the
//! network uses — so durability costs show up in latency distributions
//! while every run still replays bit-identically.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::{ambient, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};

use crate::api::{HttpProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{DeliveryListener, HttpResult};

// ---------------------------------------------------------------------
// Checksums and framing
// ---------------------------------------------------------------------

/// FNV-1a over a byte slice — the journal's record checksum. The same
/// fold the fleet report uses, so a corrupt frame and a corrupt
/// checksum disagree with probability 1 − 2⁻⁶⁴ per bit pattern.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        hash = (hash ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Frame header size: `[u32 payload len LE][u64 FNV-1a checksum LE]`.
const FRAME_HEADER: usize = 12;

/// A log sequence number — a global byte offset into the journal's
/// durable image. Monotone, never reused, survives segment rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

macro_rules! journal_counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Shared durability counters, updated by the journal, the
        /// decorators and the recovery path, snapshotted by
        /// observability code.
        ///
        /// A standalone block ([`JournalMetrics::shared`]) counts
        /// privately; a registry-backed block
        /// ([`JournalMetrics::on_registry`]) publishes the same
        /// counters as `journal_<name>_total` series.
        #[derive(Debug, Default)]
        pub struct JournalMetrics {
            $($(#[$doc])* $name: Counter,)*
        }

        /// A point-in-time copy of [`JournalMetrics`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct JournalSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl JournalMetrics {
            /// Copies every counter at once.
            pub fn snapshot(&self) -> JournalSnapshot {
                JournalSnapshot {
                    $($name: self.$name.value(),)*
                }
            }

            /// A counter block whose handles live in `registry` under
            /// `journal_<name>_total`.
            pub fn on_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
                Arc::new(Self {
                    $($name: registry.counter(
                        concat!("journal_", stringify!($name), "_total"),
                        &Labels::empty(),
                    ),)*
                })
            }
        }
    };
}

journal_counters! {
    /// Intent records appended (volatile until the next fsync).
    appends,
    /// fsync barriers crossed (volatile buffer drained durably).
    fsyncs,
    /// Segments sealed and rotated out of the active position.
    rotations,
    /// Torn tail records truncated during recovery (incomplete or
    /// checksum-corrupt frames that never committed).
    torn_truncated,
    /// Committed records replayed by recovery after a crash.
    replayed,
    /// Recovery passes completed (one per crash survived).
    recoveries,
    /// Mutations answered from the journal because their idempotency
    /// key was already committed — the `AlreadyApplied` fast path.
    already_applied,
    /// Checkpoints taken (state snapshot + high-water mark saved).
    checkpoints,
}

impl JournalMetrics {
    /// A fresh, shareable counter block (not registry-backed).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Counts one `AlreadyApplied` fast-path hit (callers outside this
    /// module — e.g. a server-side durability layer — dedup too).
    pub fn note_already_applied(&self) {
        self.already_applied.inc();
    }

    /// Counts one checkpoint taken.
    pub fn note_checkpoint(&self) {
        self.checkpoints.inc();
    }
}

impl fmt::Display for JournalSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appends={} fsyncs={} rotations={} torn={} replayed={} \
             recoveries={} already_applied={} checkpoints={}",
            self.appends,
            self.fsyncs,
            self.rotations,
            self.torn_truncated,
            self.replayed,
            self.recoveries,
            self.already_applied,
            self.checkpoints,
        )
    }
}

// ---------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------

/// Tunable knobs for the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalPolicy {
    fsync_latency_ms: u64,
    segment_bytes: usize,
}

impl Default for JournalPolicy {
    /// One simulated millisecond per fsync barrier — cheap flash, not
    /// spinning rust — and 4 KiB segments so rotation actually happens
    /// at simulation scale.
    fn default() -> Self {
        Self {
            fsync_latency_ms: 1,
            segment_bytes: 4096,
        }
    }
}

impl JournalPolicy {
    /// Sets the simulated latency charged per fsync barrier.
    #[must_use]
    pub fn fsync_latency_ms(mut self, ms: u64) -> Self {
        self.fsync_latency_ms = ms;
        self
    }

    /// Sets the segment size; the active segment rotates at the first
    /// record boundary at or past this many bytes.
    #[must_use]
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes.max(FRAME_HEADER + 1);
        self
    }

    /// The configured fsync latency (virtual ms).
    pub fn fsync_latency(&self) -> u64 {
        self.fsync_latency_ms
    }

    /// The configured segment size (bytes).
    pub fn segment_size(&self) -> usize {
        self.segment_bytes
    }
}

// ---------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------

/// One sealed-or-active run of durable bytes.
#[derive(Debug, Clone)]
struct Segment {
    start_lsn: u64,
    bytes: Vec<u8>,
}

/// A committed record handed back by [`Journal::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The record's position (frame start) in the durable image.
    pub lsn: Lsn,
    /// The record payload, checksum-verified.
    pub payload: Vec<u8>,
}

/// The outcome of a recovery scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Committed records at or past the scan origin, in LSN order.
    pub records: Vec<JournalRecord>,
    /// Torn-tail records truncated (0 or 1 per scan — a torn frame is
    /// always the last thing on disk).
    pub torn_records: u64,
    /// Bytes dropped with the torn tail.
    pub torn_bytes: u64,
}

/// A simulated append-only write-ahead log.
///
/// Appends land in a volatile buffer; [`Journal::fsync`] is the
/// durability barrier that moves them into the durable image (a list
/// of [`Segment`]s, rotated at record boundaries). [`Journal::crash`]
/// models process death: the volatile buffer is lost, except an
/// optional torn prefix that had reached the disk queue. Recovery
/// validates frames from a given LSN and truncates the torn tail.
#[derive(Debug)]
pub struct Journal {
    segments: Vec<Segment>,
    volatile: Vec<u8>,
    segment_bytes: usize,
    metrics: Arc<JournalMetrics>,
}

impl Journal {
    /// An empty journal rotating at `policy.segment_bytes`, counting
    /// into `metrics`.
    pub fn new(policy: &JournalPolicy, metrics: Arc<JournalMetrics>) -> Self {
        Self {
            segments: vec![Segment {
                start_lsn: 0,
                bytes: Vec::new(),
            }],
            volatile: Vec::new(),
            segment_bytes: policy.segment_bytes,
            metrics,
        }
    }

    /// Total durable bytes (the LSN the next fsync extends from).
    pub fn durable_end(&self) -> Lsn {
        match self.segments.last() {
            Some(last) => Lsn(last.start_lsn + last.bytes.len() as u64),
            None => Lsn(0),
        }
    }

    /// Bytes appended but not yet fsynced.
    pub fn volatile_len(&self) -> usize {
        self.volatile.len()
    }

    /// Number of durable segments (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends one intent record to the volatile buffer and returns
    /// the LSN its frame will occupy once fsynced.
    pub fn append(&mut self, payload: &[u8]) -> Lsn {
        let lsn = Lsn(self.durable_end().0 + self.volatile.len() as u64);
        let len = payload.len() as u32;
        self.volatile.extend_from_slice(&len.to_le_bytes());
        self.volatile
            .extend_from_slice(&fnv1a(payload).to_le_bytes());
        self.volatile.extend_from_slice(payload);
        self.metrics.appends.inc();
        lsn
    }

    /// The durability barrier: drains the volatile buffer into the
    /// durable image and rotates the active segment at the record
    /// boundary if it has grown past the policy size.
    pub fn fsync(&mut self) {
        if !self.volatile.is_empty() {
            let mut pending = std::mem::take(&mut self.volatile);
            self.active_mut().bytes.append(&mut pending);
        }
        self.metrics.fsyncs.inc();
        self.maybe_rotate();
    }

    /// Process death. The volatile buffer is lost — except the first
    /// `torn_keep` bytes, which had already reached the disk queue and
    /// now sit on the durable image as a torn (incomplete or
    /// checksum-corrupt) tail for recovery to truncate.
    pub fn crash(&mut self, torn_keep: Option<usize>) {
        let keep = torn_keep.unwrap_or(0).min(self.volatile.len());
        if keep > 0 {
            let torn: Vec<u8> = self.volatile[..keep].to_vec();
            self.active_mut().bytes.extend_from_slice(&torn);
        }
        self.volatile.clear();
    }

    /// Recovery scan: validates every frame at or past `from`,
    /// truncates the torn tail (an incomplete frame or one whose
    /// checksum disagrees with its payload), and returns the committed
    /// records in LSN order. Unfsynced bytes never survive — the
    /// volatile buffer is dropped.
    ///
    /// `from` must be a record boundary (an LSN previously returned by
    /// [`Journal::append`], or [`Lsn`]`(0)`, or a checkpoint
    /// high-water mark).
    pub fn recover(&mut self, from: Lsn) -> Recovery {
        self.volatile.clear();
        let mut out = Recovery::default();
        let mut torn_at: Option<(usize, usize)> = None; // (segment idx, offset)
        'segments: for (idx, segment) in self.segments.iter().enumerate() {
            let seg_end = segment.start_lsn + segment.bytes.len() as u64;
            if seg_end <= from.0 {
                continue;
            }
            // Frames never span segments (rotation happens at fsync,
            // which only moves whole records), so scanning restarts
            // cleanly at each segment head.
            let mut offset = usize::try_from(from.0.saturating_sub(segment.start_lsn))
                .unwrap_or(segment.bytes.len());
            while offset < segment.bytes.len() {
                let rest = &segment.bytes[offset..];
                let frame_ok = rest.len() >= FRAME_HEADER && {
                    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                    rest.len() >= FRAME_HEADER + len && {
                        let want = u64::from_le_bytes([
                            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10],
                            rest[11],
                        ]);
                        fnv1a(&rest[FRAME_HEADER..FRAME_HEADER + len]) == want
                    }
                };
                if !frame_ok {
                    torn_at = Some((idx, offset));
                    break 'segments;
                }
                let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                out.records.push(JournalRecord {
                    lsn: Lsn(segment.start_lsn + offset as u64),
                    payload: rest[FRAME_HEADER..FRAME_HEADER + len].to_vec(),
                });
                offset += FRAME_HEADER + len;
            }
        }
        if let Some((idx, offset)) = torn_at {
            let dropped: u64 = (self.segments[idx].bytes.len() - offset) as u64
                + self.segments[idx + 1..]
                    .iter()
                    .map(|s| s.bytes.len() as u64)
                    .sum::<u64>();
            self.segments[idx].bytes.truncate(offset);
            self.segments.truncate(idx + 1);
            out.torn_records = 1;
            out.torn_bytes = dropped;
            self.metrics.torn_truncated.inc();
        }
        self.metrics.recoveries.inc();
        self.metrics.replayed.add(out.records.len() as u64);
        out
    }

    /// Garbage-collects sealed segments that end at or before `upto`
    /// (typically a checkpoint high-water mark). The active segment is
    /// never dropped.
    pub fn truncate_before(&mut self, upto: Lsn) {
        while self.segments.len() > 1 {
            let first = &self.segments[0];
            if first.start_lsn + first.bytes.len() as u64 <= upto.0 {
                self.segments.remove(0);
            } else {
                break;
            }
        }
    }

    /// Test-only bit rot: flips one byte of the durable image at
    /// global offset `at`, so recovery's checksum validation has a
    /// genuinely corrupt (not merely incomplete) frame to reject.
    #[cfg(test)]
    fn corrupt_durable_byte(&mut self, at: u64) {
        for segment in &mut self.segments {
            let end = segment.start_lsn + segment.bytes.len() as u64;
            if at >= segment.start_lsn && at < end {
                let idx = (at - segment.start_lsn) as usize;
                segment.bytes[idx] ^= 0xFF;
                return;
            }
        }
        panic!("offset {at} is not durable");
    }

    fn active_mut(&mut self) -> &mut Segment {
        if self.segments.is_empty() {
            self.segments.push(Segment {
                start_lsn: 0,
                bytes: Vec::new(),
            });
        }
        let last = self.segments.len() - 1;
        &mut self.segments[last]
    }

    fn maybe_rotate(&mut self) {
        let end = self.durable_end().0;
        let rotate = self
            .segments
            .last()
            .is_some_and(|active| active.bytes.len() >= self.segment_bytes);
        if rotate {
            self.segments.push(Segment {
                start_lsn: end,
                bytes: Vec::new(),
            });
            self.metrics.rotations.inc();
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// A typed checkpoint slot: a snapshot of arbitrary state plus the
/// journal high-water mark it covers. Recovery loads the snapshot and
/// replays only the journal suffix past the mark.
#[derive(Debug, Default)]
pub struct CheckpointCell<T: Clone> {
    slot: Option<(T, Lsn)>,
}

impl<T: Clone> CheckpointCell<T> {
    /// An empty cell (recovery replays from genesis until the first
    /// save).
    pub fn new() -> Self {
        Self { slot: None }
    }

    /// Atomically replaces the checkpoint: `state` covers every journal
    /// record below `high_water`.
    pub fn save(&mut self, state: T, high_water: Lsn) {
        self.slot = Some((state, high_water));
    }

    /// The latest checkpoint, if one was ever saved.
    pub fn load(&self) -> Option<(T, Lsn)> {
        self.slot.clone()
    }

    /// The high-water mark replay should start from (genesis when no
    /// checkpoint exists).
    pub fn high_water(&self) -> Lsn {
        self.slot.as_ref().map(|(_, lsn)| *lsn).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------
// Idempotency keys
// ---------------------------------------------------------------------

/// A deterministic identity for one logical mutation. Two deliveries
/// of the same logical call — a resilience retry, an at-least-once
/// re-send after a crash — carry the same key, so the durability layer
/// can commit the effect exactly once and answer duplicates from the
/// journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdempotencyKey(pub u64);

impl IdempotencyKey {
    /// Derives the key for `(seed, device, round, op)` — a splitmix64
    /// finalizer over orthogonally-mixed coordinates, so keys collide
    /// only if the coordinates do.
    pub fn derive(seed: u64, device: u64, round: u64, op: u64) -> Self {
        let mut x = seed
            ^ device.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ round.wrapping_mul(0xE703_7ED1_A0B4_28DB)
            ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(x ^ (x >> 31))
    }

    /// The key as fixed-width lowercase hex — the wire form carried in
    /// the `idem` URL query parameter.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form back. `None` for anything that is not
    /// exactly 16 hex digits.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl fmt::Display for IdempotencyKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idem:{:016x}", self.0)
    }
}

thread_local! {
    /// The ambient idempotency-key stack, mirroring the overload
    /// layer's ambient deadline stack: the innermost
    /// [`with_idempotency_key`] scope is what
    /// [`current_idempotency_key`] sees.
    static IDEM_KEYS: RefCell<Vec<IdempotencyKey>> = const { RefCell::new(Vec::new()) };
}

/// Guard popping the ambient key on drop (panic-safe).
struct KeyScope;

impl Drop for KeyScope {
    fn drop(&mut self) {
        IDEM_KEYS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `key` as the ambient idempotency key for the current
/// thread. Scopes nest; the outer key is restored when the scope ends,
/// even on panic.
pub fn with_idempotency_key<T>(key: IdempotencyKey, f: impl FnOnce() -> T) -> T {
    IDEM_KEYS.with(|stack| stack.borrow_mut().push(key));
    let _scope = KeyScope;
    f()
}

/// The innermost ambient idempotency key on the current thread, if any
/// scope is open.
pub fn current_idempotency_key() -> Option<IdempotencyKey> {
    IDEM_KEYS.with(|stack| stack.borrow().last().copied())
}

// ---------------------------------------------------------------------
// The client-side journal engine
// ---------------------------------------------------------------------

/// The client journal proper: the WAL plus the applied-key table the
/// dedup fast path consults. One per runtime, shared by every
/// `Journaled` decorator the registry wires.
#[derive(Debug)]
struct ClientJournal {
    journal: Journal,
    /// Committed SMS sends by idempotency key → the message id the
    /// binding returned, memoized so a duplicate delivery can answer
    /// with the original id.
    applied: HashMap<IdempotencyKey, u64>,
}

/// Shared state + policy + metrics behind the `Journaled` decorators.
pub struct JournalEngine {
    device: Device,
    policy: JournalPolicy,
    metrics: Arc<JournalMetrics>,
    state: Mutex<ClientJournal>,
}

impl JournalEngine {
    /// A fresh engine for `device` under `policy`, counting into
    /// `metrics`.
    pub fn new(device: Device, policy: JournalPolicy, metrics: Arc<JournalMetrics>) -> Self {
        let journal = Journal::new(&policy, Arc::clone(&metrics));
        Self {
            device,
            policy,
            metrics,
            state: Mutex::new(ClientJournal {
                journal,
                applied: HashMap::new(),
            }),
        }
    }

    /// The engine's counter block.
    pub fn metrics(&self) -> &Arc<JournalMetrics> {
        &self.metrics
    }

    /// The policy the engine was wired with.
    pub fn policy(&self) -> &JournalPolicy {
        &self.policy
    }

    /// The typed duplicate check: `Err(AlreadyApplied)` when `key` is
    /// already journaled as committed. The decorators convert the
    /// error back into the memoized success — callers of the uniform
    /// API never see it — but the seam stays typed so tests (and any
    /// future cross-process re-delivery path) can assert on it.
    pub fn check(&self, key: IdempotencyKey) -> Result<(), ProxyError> {
        if self.state.lock().applied.contains_key(&key) {
            self.metrics.already_applied.inc();
            return Err(ProxyError::new(
                ProxyErrorKind::AlreadyApplied,
                format!("{key} already committed; answered from the journal"),
            ));
        }
        Ok(())
    }

    /// The message id memoized for a committed SMS key, if any.
    pub fn memoized_message(&self, key: IdempotencyKey) -> Option<u64> {
        self.state.lock().applied.get(&key).copied()
    }

    /// Appends one intent record and crosses the fsync barrier,
    /// charging the barrier's simulated latency to the device clock.
    /// This MUST run before the side effect it covers.
    pub fn intent(&self, payload: &[u8]) -> Lsn {
        let lsn = {
            let mut state = self.state.lock();
            let lsn = state.journal.append(payload);
            state.journal.fsync();
            lsn
        };
        if self.policy.fsync_latency_ms > 0 {
            self.device.advance_ms(self.policy.fsync_latency_ms);
        }
        if ambient::is_active() {
            if let Some(mut span) = ambient::child(
                "journal:fsync".to_string(),
                Plane::Resilience,
                self.device.now_ms(),
            ) {
                span.attr("lsn", lsn.to_string());
                span.end(self.device.now_ms());
            }
        }
        lsn
    }

    /// Marks an SMS key committed with the message id the binding
    /// returned.
    pub fn mark_applied(&self, key: IdempotencyKey, message_id: u64) {
        self.state.lock().applied.insert(key, message_id);
    }

    /// Snapshot of the journal shape for observability/tests.
    pub fn journal_stats(&self) -> (Lsn, usize, usize) {
        let state = self.state.lock();
        (
            state.journal.durable_end(),
            state.journal.volatile_len(),
            state.journal.segment_count(),
        )
    }
}

impl fmt::Debug for JournalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalEngine")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

fn intent_payload(op: &str, key: Option<IdempotencyKey>, detail: &str) -> Vec<u8> {
    let key = key
        .map(IdempotencyKey::to_hex)
        .unwrap_or_else(|| "-".into());
    format!("{op}|{key}|{detail}").into_bytes()
}

/// Appends `?idem=<key>` (or `&idem=` when a query already exists) so
/// the server-side durability layer can dedup at-least-once
/// re-deliveries. The uniform [`HttpProxy`] surface carries no
/// headers, so the key travels in the URL like any other query
/// parameter.
pub fn url_with_idempotency_key(url: &str, key: IdempotencyKey) -> String {
    let sep = if url.contains('?') { '&' } else { '?' };
    format!("{url}{sep}idem={}", key.to_hex())
}

// ---------------------------------------------------------------------
// Decorators
// ---------------------------------------------------------------------

/// [`SmsProxy`] decorator: journals a send intent before the radio
/// effect, and answers duplicate deliveries (same ambient idempotency
/// key) from the journal with the memoized message id.
pub struct JournaledSmsProxy {
    inner: Arc<dyn SmsProxy>,
    engine: Arc<JournalEngine>,
}

impl JournaledSmsProxy {
    /// Wraps `inner` with journaling through `engine`.
    pub fn new(inner: Arc<dyn SmsProxy>, engine: Arc<JournalEngine>) -> Self {
        Self { inner, engine }
    }
}

impl ProxyBase for JournaledSmsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.engine
            .intent(&intent_payload("set_property", None, key));
        self.inner.set_property(key, value)
    }
}

impl SmsProxy for JournaledSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        let key = current_idempotency_key();
        if let Some(key) = key {
            if let Err(duplicate) = self.engine.check(key) {
                debug_assert!(duplicate.kind().is_duplicate());
                if let Some(id) = self.engine.memoized_message(key) {
                    // Counted, not errored: the effect already
                    // committed once; re-delivery observes the
                    // original outcome.
                    return Ok(id);
                }
            }
        }
        self.engine
            .intent(&intent_payload("send_sms", key, destination));
        let id = self
            .inner
            .send_text_message(destination, text, delivery_listener)?;
        if let Some(key) = key {
            self.engine.mark_applied(key, id);
        }
        Ok(id)
    }
}

/// [`HttpProxy`] decorator: journals a submit intent before the
/// request leaves, and stamps the ambient idempotency key onto the URL
/// (`?idem=…`) so the server-side durability layer owns exactly-once —
/// the client never suppresses an HTTP send, because only the server
/// knows whether the previous delivery committed.
pub struct JournaledHttpProxy {
    inner: Arc<dyn HttpProxy>,
    engine: Arc<JournalEngine>,
}

impl JournaledHttpProxy {
    /// Wraps `inner` with journaling through `engine`.
    pub fn new(inner: Arc<dyn HttpProxy>, engine: Arc<JournalEngine>) -> Self {
        Self { inner, engine }
    }
}

impl ProxyBase for JournaledHttpProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.engine
            .intent(&intent_payload("set_property", None, key));
        self.inner.set_property(key, value)
    }
}

impl HttpProxy for JournaledHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        let key = current_idempotency_key();
        self.engine.intent(&intent_payload("http", key, url));
        match key {
            Some(key) => self
                .inner
                .request(method, &url_with_idempotency_key(url, key), body),
            None => self.inner.request(method, url, body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> (Journal, Arc<JournalMetrics>) {
        let metrics = JournalMetrics::shared();
        (
            Journal::new(&JournalPolicy::default(), Arc::clone(&metrics)),
            metrics,
        )
    }

    #[test]
    fn append_is_volatile_until_fsync() {
        let (mut j, _m) = journal();
        j.append(b"one");
        assert_eq!(j.durable_end(), Lsn(0));
        assert_eq!(j.volatile_len(), FRAME_HEADER + 3);
        j.fsync();
        assert_eq!(j.volatile_len(), 0);
        assert_eq!(j.durable_end(), Lsn((FRAME_HEADER + 3) as u64));
    }

    #[test]
    fn recover_replays_committed_records_in_order() {
        let (mut j, m) = journal();
        let a = j.append(b"alpha");
        let b = j.append(b"beta");
        j.fsync();
        let rec = j.recover(Lsn(0));
        assert_eq!(rec.torn_records, 0);
        assert_eq!(
            rec.records,
            vec![
                JournalRecord {
                    lsn: a,
                    payload: b"alpha".to_vec()
                },
                JournalRecord {
                    lsn: b,
                    payload: b"beta".to_vec()
                },
            ]
        );
        assert_eq!(m.snapshot().replayed, 2);
        assert_eq!(m.snapshot().recoveries, 1);
    }

    #[test]
    fn recover_from_a_high_water_mark_skips_the_prefix() {
        let (mut j, _m) = journal();
        j.append(b"old");
        let b = j.append(b"new");
        j.fsync();
        let rec = j.recover(b);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"new");
    }

    #[test]
    fn crash_drops_unfsynced_appends() {
        let (mut j, _m) = journal();
        j.append(b"committed");
        j.fsync();
        j.append(b"lost");
        j.crash(None);
        let rec = j.recover(Lsn(0));
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"committed");
        assert_eq!(rec.torn_records, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let (mut j, m) = journal();
        j.append(b"committed");
        j.fsync();
        j.append(b"torn-away-record");
        // Keep all but the last byte: length field says more bytes
        // than exist → incomplete frame → truncate.
        let keep = j.volatile_len() - 1;
        j.crash(Some(keep));
        let end_before = j.durable_end();
        let rec = j.recover(Lsn(0));
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.torn_records, 1);
        assert_eq!(rec.torn_bytes, keep as u64);
        assert!(j.durable_end() < end_before);
        assert_eq!(m.snapshot().torn_truncated, 1);
        // The journal is clean again: a fresh append + fsync commits.
        j.append(b"after");
        j.fsync();
        let rec2 = j.recover(Lsn(0));
        assert_eq!(rec2.records.len(), 2);
        assert_eq!(rec2.torn_records, 0);
    }

    #[test]
    fn corrupt_checksum_counts_as_torn() {
        let (mut j, _m) = journal();
        j.append(b"good");
        let evil = j.append(b"evil");
        j.fsync();
        // Flip a payload byte of the last record: the frame is
        // complete but its checksum no longer matches, so recovery
        // must truncate it as a torn tail.
        j.corrupt_durable_byte(evil.0 + FRAME_HEADER as u64);
        let rec = j.recover(Lsn(0));
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"good");
        assert_eq!(rec.torn_records, 1);
    }

    #[test]
    fn segments_rotate_at_record_boundaries_and_gc() {
        let metrics = JournalMetrics::shared();
        let policy = JournalPolicy::default().segment_bytes(64);
        let mut j = Journal::new(&policy, Arc::clone(&metrics));
        for i in 0..8 {
            j.append(format!("record-{i}-padding-padding").as_bytes());
            j.fsync();
        }
        assert!(j.segment_count() > 1, "64-byte segments must rotate");
        assert!(metrics.snapshot().rotations > 0);
        let all = j.recover(Lsn(0));
        assert_eq!(all.records.len(), 8);
        // GC everything below the 6th record; replay from there still
        // works and earlier segments are gone.
        let keep_from = all.records[5].lsn;
        j.truncate_before(keep_from);
        let tail = j.recover(keep_from);
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.records[0].payload, b"record-5-padding-padding");
    }

    #[test]
    fn checkpoint_cell_round_trips() {
        let mut cell: CheckpointCell<Vec<u64>> = CheckpointCell::new();
        assert_eq!(cell.high_water(), Lsn(0));
        assert!(cell.load().is_none());
        cell.save(vec![1, 2, 3], Lsn(96));
        let (state, hw) = cell.load().expect("saved above");
        assert_eq!(state, vec![1, 2, 3]);
        assert_eq!(hw, Lsn(96));
        assert_eq!(cell.high_water(), Lsn(96));
    }

    #[test]
    fn idempotency_keys_are_deterministic_and_distinct() {
        let a = IdempotencyKey::derive(11, 3, 2, 0);
        let b = IdempotencyKey::derive(11, 3, 2, 0);
        assert_eq!(a, b);
        let others = [
            IdempotencyKey::derive(12, 3, 2, 0),
            IdempotencyKey::derive(11, 4, 2, 0),
            IdempotencyKey::derive(11, 3, 3, 0),
            IdempotencyKey::derive(11, 3, 2, 1),
        ];
        for other in others {
            assert_ne!(a, other);
        }
        let hex = a.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(IdempotencyKey::from_hex(&hex), Some(a));
        assert_eq!(IdempotencyKey::from_hex("xyz"), None);
    }

    #[test]
    fn ambient_key_scopes_nest_and_restore() {
        assert_eq!(current_idempotency_key(), None);
        let outer = IdempotencyKey(7);
        let inner = IdempotencyKey(9);
        with_idempotency_key(outer, || {
            assert_eq!(current_idempotency_key(), Some(outer));
            with_idempotency_key(inner, || {
                assert_eq!(current_idempotency_key(), Some(inner));
            });
            assert_eq!(current_idempotency_key(), Some(outer));
        });
        assert_eq!(current_idempotency_key(), None);
    }

    #[test]
    fn url_key_stamping_handles_existing_queries() {
        let key = IdempotencyKey(0xabcd);
        assert_eq!(
            url_with_idempotency_key("http://h/p", key),
            format!("http://h/p?idem={}", key.to_hex())
        );
        assert_eq!(
            url_with_idempotency_key("http://h/p?a=1", key),
            format!("http://h/p?a=1&idem={}", key.to_hex())
        );
    }
}
