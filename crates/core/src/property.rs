//! The generic `setProperty` mechanism.
//!
//! "Any platform-mandated information should not form part of a common
//! API, but should still be provided to the implementation module for
//! that platform. In M-Proxies, this is enabled through a generic
//! `setProperty()` method." (paper §4.1) A [`PropertyBag`] validates
//! every set against the proxy's binding-plane descriptor: unknown keys
//! are rejected, constrained values are checked against the allowed set,
//! and defaults declared by the descriptor fill in automatically.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use mobivine_proxydl::PlatformBinding;

use crate::error::{ProxyError, ProxyErrorKind};

/// A value assignable to a proxy property.
#[derive(Clone)]
pub enum PropertyValue {
    /// A string value (checked against the descriptor's allowed set).
    Str(String),
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
    /// An opaque platform object — how the Android proxies receive the
    /// application `context` (`loc.setProperty("context", this)` in
    /// Fig. 8(a)).
    Opaque(Arc<dyn Any + Send + Sync>),
}

impl PropertyValue {
    /// Builds a string value.
    pub fn str(value: &str) -> Self {
        PropertyValue::Str(value.to_owned())
    }

    /// Wraps a platform object.
    pub fn opaque<T: Any + Send + Sync>(value: T) -> Self {
        PropertyValue::Opaque(Arc::new(value))
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropertyValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Downcasts an opaque platform object.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        match self {
            PropertyValue::Opaque(any) => Arc::clone(any).downcast::<T>().ok(),
            _ => None,
        }
    }

    /// The value rendered as a string for constraint checking.
    fn constraint_repr(&self) -> Option<String> {
        match self {
            PropertyValue::Str(s) => Some(s.clone()),
            PropertyValue::Int(i) => Some(i.to_string()),
            PropertyValue::Bool(b) => Some(b.to_string()),
            PropertyValue::Opaque(_) => None,
        }
    }
}

impl fmt::Debug for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Str(s) => write!(f, "Str({s:?})"),
            PropertyValue::Int(i) => write!(f, "Int({i})"),
            PropertyValue::Bool(b) => write!(f, "Bool({b})"),
            PropertyValue::Opaque(_) => write!(f, "Opaque(..)"),
        }
    }
}

/// A descriptor-validated property store, one per proxy instance.
pub struct PropertyBag {
    binding: PlatformBinding,
    values: RwLock<HashMap<String, PropertyValue>>,
}

impl fmt::Debug for PropertyBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropertyBag")
            .field("platform", &self.binding.platform.id())
            .field("set", &self.values.read().len())
            .finish()
    }
}

impl PropertyBag {
    /// Creates a bag validating against `binding` (the proxy's
    /// binding-plane descriptor for the running platform).
    pub fn new(binding: PlatformBinding) -> Self {
        Self {
            binding,
            values: RwLock::new(HashMap::new()),
        }
    }

    /// The binding plane this bag validates against.
    pub fn binding(&self) -> &PlatformBinding {
        &self.binding
    }

    /// `setProperty(key, value)`.
    ///
    /// # Errors
    ///
    /// - [`ProxyErrorKind::UnknownProperty`] if the binding plane does
    ///   not declare `key`.
    /// - [`ProxyErrorKind::BadPropertyValue`] if `value` violates the
    ///   property's allowed-values constraint.
    pub fn set(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        let spec = self.binding.find_property(key).ok_or_else(|| {
            ProxyError::new(
                ProxyErrorKind::UnknownProperty,
                format!(
                    "property '{key}' is not declared by the {} binding plane",
                    self.binding.platform.id()
                ),
            )
        })?;
        if let Some(repr) = value.constraint_repr() {
            if !spec.accepts(&repr) {
                return Err(ProxyError::new(
                    ProxyErrorKind::BadPropertyValue,
                    format!(
                        "value '{repr}' not allowed for property '{key}' (allowed: {})",
                        spec.allowed_values.join(", ")
                    ),
                ));
            }
        }
        self.values.write().insert(key.to_owned(), value);
        Ok(())
    }

    /// Reads a property: an explicitly set value, else the descriptor's
    /// declared default (as a string value), else `None`.
    pub fn get(&self, key: &str) -> Option<PropertyValue> {
        if let Some(v) = self.values.read().get(key) {
            return Some(v.clone());
        }
        self.binding
            .find_property(key)
            .and_then(|spec| spec.default_value.as_ref())
            .map(|d| PropertyValue::Str(d.clone()))
    }

    /// Reads a string property by reference, without cloning: `f`
    /// receives the set value (or the descriptor default) borrowed in
    /// place. The hot-path variant of [`PropertyBag::get_str`] — a
    /// traced call that consults a property each invocation must not
    /// pay a heap allocation for it. `f` runs under the bag's read
    /// lock when the value was explicitly set, so it must not call
    /// back into this bag.
    ///
    /// Non-string set values (int/bool) fall back to [`None`]; use
    /// [`PropertyBag::get_str`] when those spellings matter.
    pub fn with_str<T>(&self, key: &str, f: impl FnOnce(Option<&str>) -> T) -> T {
        let values = self.values.read();
        if let Some(PropertyValue::Str(s)) = values.get(key) {
            return f(Some(s.as_str()));
        }
        let set_non_string = values.get(key).is_some();
        drop(values);
        if set_non_string {
            return f(None);
        }
        f(self
            .binding
            .find_property(key)
            .and_then(|spec| spec.default_value.as_deref()))
    }

    /// Reads a string property (set value or descriptor default).
    pub fn get_str(&self, key: &str) -> Option<String> {
        self.get(key).and_then(|v| match v {
            PropertyValue::Str(s) => Some(s),
            PropertyValue::Int(i) => Some(i.to_string()),
            PropertyValue::Bool(b) => Some(b.to_string()),
            PropertyValue::Opaque(_) => None,
        })
    }

    /// Reads an integer property, parsing string defaults. Never
    /// allocates: set values are read under the lock and descriptor
    /// defaults are parsed from the borrowed spec string (hot-path
    /// criteria assembly calls this per traced invocation).
    pub fn get_int(&self, key: &str) -> Option<i64> {
        {
            let values = self.values.read();
            match values.get(key) {
                Some(PropertyValue::Int(i)) => return Some(*i),
                Some(PropertyValue::Str(s)) => return s.parse().ok(),
                Some(_) => return None,
                None => {}
            }
        }
        self.binding
            .find_property(key)
            .and_then(|spec| spec.default_value.as_deref())
            .and_then(|d| d.parse().ok())
    }

    /// Fetches a required opaque platform object.
    ///
    /// # Errors
    ///
    /// - [`ProxyErrorKind::MissingProperty`] if never set.
    /// - [`ProxyErrorKind::BadPropertyValue`] if set to the wrong type.
    pub fn require_opaque<T: Any + Send + Sync>(&self, key: &str) -> Result<Arc<T>, ProxyError> {
        let value = self.values.read().get(key).cloned().ok_or_else(|| {
            ProxyError::new(
                ProxyErrorKind::MissingProperty,
                format!("required property '{key}' was not set"),
            )
        })?;
        value.downcast::<T>().ok_or_else(|| {
            ProxyError::new(
                ProxyErrorKind::BadPropertyValue,
                format!("property '{key}' holds a value of the wrong type"),
            )
        })
    }

    /// Checks that every property marked required in the descriptor has
    /// been set.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyErrorKind::MissingProperty`] naming the first
    /// missing one.
    pub fn check_required(&self) -> Result<(), ProxyError> {
        let values = self.values.read();
        for spec in &self.binding.properties {
            if spec.required && !values.contains_key(&spec.name) {
                return Err(ProxyError::new(
                    ProxyErrorKind::MissingProperty,
                    format!("required property '{}' was not set", spec.name),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_proxydl::{PlatformId, PropertySpec};

    fn bag() -> PropertyBag {
        PropertyBag::new(
            PlatformBinding::new(PlatformId::NokiaS60, "Impl")
                .property(
                    PropertySpec::new("powerConsumption", "string", "")
                        .default_value("NoRequirement")
                        .allowed(&["NoRequirement", "Low", "Medium", "High"]),
                )
                .property(PropertySpec::new("preferredResponseTime", "int", "").default_value("-1"))
                .property(PropertySpec::new("context", "object", "").required()),
        )
    }

    #[test]
    fn set_and_get() {
        let bag = bag();
        bag.set("powerConsumption", PropertyValue::str("Low"))
            .unwrap();
        assert_eq!(bag.get_str("powerConsumption").as_deref(), Some("Low"));
    }

    #[test]
    fn defaults_come_from_descriptor() {
        let bag = bag();
        assert_eq!(
            bag.get_str("powerConsumption").as_deref(),
            Some("NoRequirement")
        );
        assert_eq!(bag.get_int("preferredResponseTime"), Some(-1));
        assert!(bag.get("undeclared").is_none());
    }

    #[test]
    fn unknown_key_rejected() {
        let err = bag().set("bogus", PropertyValue::str("x")).unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::UnknownProperty);
    }

    #[test]
    fn constrained_value_rejected() {
        let err = bag()
            .set("powerConsumption", PropertyValue::str("Turbo"))
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::BadPropertyValue);
        assert!(err.message().contains("Low"));
    }

    #[test]
    fn int_values_pass_unconstrained_properties() {
        let bag = bag();
        bag.set("preferredResponseTime", PropertyValue::Int(5000))
            .unwrap();
        assert_eq!(bag.get_int("preferredResponseTime"), Some(5000));
    }

    #[test]
    fn opaque_objects_store_and_downcast() {
        #[derive(Debug, PartialEq)]
        struct FakeContext(u32);
        let bag = bag();
        bag.set("context", PropertyValue::opaque(FakeContext(7)))
            .unwrap();
        let ctx: Arc<FakeContext> = bag.require_opaque("context").unwrap();
        assert_eq!(*ctx, FakeContext(7));
    }

    #[test]
    fn require_opaque_errors() {
        let bag = bag();
        let missing = bag.require_opaque::<String>("context").unwrap_err();
        assert_eq!(missing.kind(), ProxyErrorKind::MissingProperty);
        bag.set("context", PropertyValue::opaque(42u32)).unwrap();
        let wrong = bag.require_opaque::<String>("context").unwrap_err();
        assert_eq!(wrong.kind(), ProxyErrorKind::BadPropertyValue);
    }

    #[test]
    fn check_required_flags_missing_context() {
        let bag = bag();
        let err = bag.check_required().unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::MissingProperty);
        assert!(err.message().contains("context"));
        bag.set("context", PropertyValue::opaque(1u8)).unwrap();
        bag.check_required().unwrap();
    }
}
