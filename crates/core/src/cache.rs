//! Read-through result caching with single-flight coalescing for the
//! idempotent M-Proxy reads.
//!
//! Every `getLocation()` / `findContacts()` / `entriesBetween()` that
//! reaches the binding plane pays the full platform cost — and on the
//! WebView binding, a JavaScript bridge crossing on top. Yet those reads
//! are idempotent over short windows: the GPS engine interpolates the
//! same fix for the same instant, the contact store only changes when
//! something writes to it. This module puts a `Cached` decorator between
//! the overload and proxy-plane traced layers
//! (`Resilient → Overload → Cached → Traced`) providing:
//!
//! * a **read-through cache** — results are stored under a per-proxy
//!   TTL measured on the simulated clock, so expiry replays
//!   bit-identically run over run;
//! * **single-flight coalescing** — when an identical read is already
//!   in flight, late arrivals wait on the leader's result instead of
//!   issuing their own binding-plane invocation. The leader executes
//!   the fill *without holding any cache lock*, which keeps the scheme
//!   safe on the WebView binding where the fill crosses the JS bridge;
//! * **explicit invalidation** — a [`Stamp`] of three monotone epochs
//!   is recorded at fill time and compared on every read: the device's
//!   fault epoch (bumped by every
//!   [`FaultPlan`](mobivine_device::fault::FaultPlan) transition), the
//!   resilience circuit breaker's transition epoch, and a per-decorator
//!   generation bumped by `setProperty`. Any mismatch discards the
//!   entry before it can be served, so a stale read never survives a
//!   mutation.
//!
//! Writes (SMS send, calls, HTTP requests, `setProperty`) are never
//! cached; `setProperty` through a cached proxy invalidates before it
//! forwards. Knobs travel the ordinary property plane (`cache.ttl_ms`,
//! `cache.coalescing`) exactly like the `retry.*` and `bulkhead.*`
//! families.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::{ambient, ActiveSpan, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};

use crate::api::{CalendarProxy, ContactsProxy, LocationProxy, ProxyBase};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{CalendarRecord, ContactRecord, Location, SharedProximityListener};

// ---------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------

/// Tunable knobs for the read-through cache layer.
///
/// TTLs are simulated milliseconds per proxy kind; a TTL of zero
/// disables storage for that proxy (every read refills) while leaving
/// coalescing active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachePolicy {
    location_ttl_ms: u64,
    contacts_ttl_ms: u64,
    calendar_ttl_ms: u64,
    coalescing: bool,
}

impl Default for CachePolicy {
    /// Location fixes stay fresh for 10 s of simulated time; contact
    /// and calendar lookups — which only change on writes the
    /// invalidation stamps already catch — for 60 s. Coalescing on.
    fn default() -> Self {
        Self {
            location_ttl_ms: 10_000,
            contacts_ttl_ms: 60_000,
            calendar_ttl_ms: 60_000,
            coalescing: true,
        }
    }
}

impl CachePolicy {
    /// Sets the `getLocation` result TTL (virtual ms).
    #[must_use]
    pub fn location_ttl_ms(mut self, ms: u64) -> Self {
        self.location_ttl_ms = ms;
        self
    }

    /// Sets the `findContacts` result TTL (virtual ms).
    #[must_use]
    pub fn contacts_ttl_ms(mut self, ms: u64) -> Self {
        self.contacts_ttl_ms = ms;
        self
    }

    /// Sets the `entriesBetween` result TTL (virtual ms).
    #[must_use]
    pub fn calendar_ttl_ms(mut self, ms: u64) -> Self {
        self.calendar_ttl_ms = ms;
        self
    }

    /// Enables or disables single-flight coalescing.
    #[must_use]
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// The configured location TTL.
    pub fn location_ttl(&self) -> u64 {
        self.location_ttl_ms
    }

    /// The configured contacts TTL.
    pub fn contacts_ttl(&self) -> u64 {
        self.contacts_ttl_ms
    }

    /// The configured calendar TTL.
    pub fn calendar_ttl(&self) -> u64 {
        self.calendar_ttl_ms
    }

    /// Whether coalescing is enabled.
    pub fn coalescing_enabled(&self) -> bool {
        self.coalescing
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

macro_rules! cache_counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Shared cache counters, updated by the decorators and
        /// snapshotted by observability code.
        ///
        /// A standalone block ([`CacheMetrics::shared`]) counts
        /// privately; a registry-backed block
        /// ([`CacheMetrics::on_registry`]) publishes the same counters
        /// as `cache_<name>_total` series.
        #[derive(Debug, Default)]
        pub struct CacheMetrics {
            $($(#[$doc])* $name: Counter,)*
        }

        /// A point-in-time copy of [`CacheMetrics`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct CacheSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl CacheMetrics {
            /// Copies every counter at once.
            pub fn snapshot(&self) -> CacheSnapshot {
                CacheSnapshot {
                    $($name: self.$name.value(),)*
                }
            }

            /// A counter block whose handles live in `registry` under
            /// `cache_<name>_total`.
            pub fn on_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
                Arc::new(Self {
                    $($name: registry.counter(
                        concat!("cache_", stringify!($name), "_total"),
                        &Labels::empty(),
                    ),)*
                })
            }
        }
    };
}

cache_counters! {
    /// Reads served from a stored, still-fresh entry.
    hit,
    /// Reads that filled from the layer below (one binding-plane
    /// invocation each).
    miss,
    /// Reads that joined an identical in-flight fill instead of issuing
    /// their own.
    coalesced,
    /// Entries discarded by an invalidation trigger (`setProperty`,
    /// fault-plan transition, circuit-state change) — natural TTL
    /// expiry is not counted here.
    invalidated,
}

impl CacheMetrics {
    /// A fresh, shareable counter block (not registry-backed).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hit={} miss={} coalesced={} invalidated={}",
            self.hit, self.miss, self.coalesced, self.invalidated,
        )
    }
}

// ---------------------------------------------------------------------
// Invalidation stamps
// ---------------------------------------------------------------------

/// The invalidation coordinates an entry was filled under. A read whose
/// current stamp differs in *any* field discards the entry: something —
/// a fault transition, a circuit-state change, a `setProperty` — has
/// mutated the world since the fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// [`Device::fault_epoch`] at fill time.
    pub fault_epoch: u64,
    /// The resilience circuit breaker's transition epoch at fill time
    /// (zero when the stack has no breaker under this proxy).
    pub circuit_epoch: u64,
    /// The decorator's `setProperty` generation at fill time.
    pub generation: u64,
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

fn int_of(value: &PropertyValue) -> Option<i64> {
    if let Some(i) = value.as_int() {
        return Some(i);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn bool_of(value: &PropertyValue) -> Option<bool> {
    if let Some(b) = value.as_bool() {
        return Some(b);
    }
    if let Some(i) = value.as_int() {
        return Some(i != 0);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn bad_value(key: &str, value: &PropertyValue) -> ProxyError {
    ProxyError::new(
        ProxyErrorKind::BadPropertyValue,
        format!("cache property '{key}' cannot take value {value:?}"),
    )
}

/// The TTL/stamp/knob state shared by one cached decorator.
pub struct CacheEngine {
    device: Device,
    metrics: Arc<CacheMetrics>,
    ttl_ms: AtomicU64,
    coalescing: AtomicBool,
    generation: AtomicU64,
    circuit_epoch: Option<Arc<AtomicU64>>,
}

impl CacheEngine {
    /// Creates an engine over `device` with the given starting TTL.
    /// `circuit_epoch` is the breaker's transition-epoch handle when a
    /// resilience layer sits below this decorator.
    pub fn new(
        device: Device,
        ttl_ms: u64,
        coalescing: bool,
        circuit_epoch: Option<Arc<AtomicU64>>,
        metrics: Arc<CacheMetrics>,
    ) -> Self {
        Self {
            device,
            metrics,
            ttl_ms: AtomicU64::new(ttl_ms),
            coalescing: AtomicBool::new(coalescing),
            generation: AtomicU64::new(0),
            circuit_epoch,
        }
    }

    /// The counter block this engine reports into.
    pub fn metrics(&self) -> &Arc<CacheMetrics> {
        &self.metrics
    }

    /// The current TTL (virtual ms).
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms.load(Ordering::Acquire)
    }

    /// Whether coalescing is currently enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing.load(Ordering::Acquire)
    }

    /// The invalidation coordinates as of now.
    pub fn stamp(&self) -> Stamp {
        Stamp {
            fault_epoch: self.device.fault_epoch(),
            circuit_epoch: self
                .circuit_epoch
                .as_ref()
                .map_or(0, |e| e.load(Ordering::Acquire)),
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// Bumps the `setProperty` generation, retiring every entry filled
    /// before the bump (including fills still in flight).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Intercepts the cache property keys; returns `None` for keys that
    /// belong to the wrapped proxy.
    fn try_set_cache_property(
        &self,
        key: &str,
        value: &PropertyValue,
    ) -> Option<Result<(), ProxyError>> {
        let result = match key {
            "cache.ttl_ms" => match int_of(value) {
                Some(n) if n >= 0 => {
                    self.ttl_ms.store(n as u64, Ordering::Release);
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "cache.coalescing" => match bool_of(value) {
                Some(b) => {
                    self.coalescing.store(b, Ordering::Release);
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            _ => return None,
        };
        Some(result)
    }
}

// ---------------------------------------------------------------------
// Single-flight cell
// ---------------------------------------------------------------------

struct Entry<V> {
    value: V,
    stamp: Stamp,
    expires_at_ms: u64,
}

/// One in-flight fill. Single-use: the leader publishes exactly once,
/// then the flight is dropped from the map, so no epoch bookkeeping is
/// needed. Uses the standard-library mutex/condvar pair because the
/// follower side genuinely parks the thread.
struct Flight<V> {
    state: std::sync::Mutex<Option<Result<V, ProxyError>>>,
    cv: std::sync::Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(None),
            cv: std::sync::Condvar::new(),
        }
    }

    /// A poisoned flight mutex means a publisher or waiter panicked
    /// mid-section; the stored `Option` stays structurally valid either
    /// way, so recover the guard rather than propagate the panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Result<V, ProxyError>>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn publish(&self, result: Result<V, ProxyError>) {
        *self.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<V, ProxyError> {
        let mut state = self.lock();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The keyed store underneath one cached decorator: fresh entries plus
/// the map of in-flight fills.
///
/// Lock discipline: `entries` and `flights` are taken briefly and never
/// across the fill — the leader runs the wrapped call with no cache
/// lock held, so a fill that blocks (or crosses the WebView bridge)
/// cannot wedge readers of other keys.
pub struct CacheCell<K, V> {
    entries: Mutex<HashMap<K, Entry<V>>>,
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for CacheCell<K, V> {
    fn default() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> CacheCell<K, V> {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many live (possibly expired, not yet collected) entries the
    /// cell holds.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cell holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops every stored entry and retires in-flight fills via the
    /// engine's generation. Cleared entries count as invalidated.
    pub fn invalidate_all(&self, engine: &CacheEngine) {
        engine.bump_generation();
        let removed = {
            let mut entries = self.entries.lock();
            let n = entries.len();
            entries.clear();
            n
        };
        if removed > 0 {
            engine.metrics.invalidated.add(removed as u64);
        }
    }

    /// The read-through path: serve a fresh stored result, join an
    /// identical in-flight fill, or lead a new fill of `fill` —
    /// recording the decision as a `cache_*` counter always and as a
    /// span event when a trace is ambient.
    pub fn get_or_fill(
        &self,
        engine: &CacheEngine,
        operation: &str,
        key: K,
        fill: impl FnOnce() -> Result<V, ProxyError>,
    ) -> Result<V, ProxyError> {
        let mut span = if ambient::is_active() {
            ambient::child(
                format!("cache:{operation}"),
                Plane::Resilience,
                engine.device.now_ms(),
            )
        } else {
            None
        };
        let result = self.get_or_fill_inner(engine, key, fill, span.as_mut());
        if let Some(mut s) = span.take() {
            if let Err(e) = &result {
                s.attr("error", crate::telemetry::kind_name(e.kind()));
            }
            s.end(engine.device.now_ms());
        }
        result
    }

    fn get_or_fill_inner(
        &self,
        engine: &CacheEngine,
        key: K,
        fill: impl FnOnce() -> Result<V, ProxyError>,
        mut span: Option<&mut ActiveSpan>,
    ) -> Result<V, ProxyError> {
        // The stamp is taken *before* the fill and stored with the
        // entry: if an invalidation epoch moves while the fill is in
        // flight, the stored stamp is already stale and the next read
        // discards it — a fill racing a mutation can never pin a
        // pre-mutation answer.
        let stamp = engine.stamp();
        let now = engine.device.now_ms();
        {
            let mut entries = self.entries.lock();
            match entries.get(&key) {
                Some(entry) if entry.stamp != stamp => {
                    entries.remove(&key);
                    engine.metrics.invalidated.inc();
                }
                Some(entry) if now < entry.expires_at_ms => {
                    engine.metrics.hit.inc();
                    let value = entry.value.clone();
                    drop(entries);
                    if let Some(s) = span.as_deref_mut() {
                        s.event("cache_hit", now);
                    }
                    return Ok(value);
                }
                Some(_) => {
                    // Fresh stamp but past its TTL: plain expiry, the
                    // refill below counts as an ordinary miss.
                    entries.remove(&key);
                }
                None => {}
            }
        }

        if !engine.coalescing() {
            if let Some(s) = span.as_deref_mut() {
                s.event("cache_miss", now);
            }
            return self.fill_and_store(engine, key, stamp, fill);
        }

        enum Role<V> {
            Leader(Arc<Flight<V>>),
            Follower(Arc<Flight<V>>),
        }
        let role = {
            let mut flights = self.flights.lock();
            match flights.get(&key) {
                Some(flight) => Role::Follower(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(key.clone(), Arc::clone(&flight));
                    Role::Leader(flight)
                }
            }
        };
        match role {
            Role::Follower(flight) => {
                engine.metrics.coalesced.inc();
                if let Some(s) = span.as_deref_mut() {
                    s.event("cache_coalesced", now);
                }
                flight.wait()
            }
            Role::Leader(flight) => {
                if let Some(s) = span {
                    s.event("cache_miss", now);
                }
                let result = self.fill_and_store(engine, key.clone(), stamp, fill);
                // Unpublish before publishing: a caller arriving after
                // the removal starts a fresh flight instead of joining
                // a finished one.
                self.flights.lock().remove(&key);
                flight.publish(result.clone());
                result
            }
        }
    }

    /// Runs the fill with no cache lock held and stores a successful
    /// result under `stamp`. Errors are never cached.
    fn fill_and_store(
        &self,
        engine: &CacheEngine,
        key: K,
        stamp: Stamp,
        fill: impl FnOnce() -> Result<V, ProxyError>,
    ) -> Result<V, ProxyError> {
        engine.metrics.miss.inc();
        let result = fill();
        if let Ok(value) = &result {
            let filled_at = engine.device.now_ms();
            self.entries.lock().insert(
                key,
                Entry {
                    value: value.clone(),
                    stamp,
                    expires_at_ms: filled_at.saturating_add(engine.ttl_ms()),
                },
            );
        }
        result
    }
}

// ---------------------------------------------------------------------
// Decorators
// ---------------------------------------------------------------------

macro_rules! cached_set_property {
    () => {
        fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
            match self.engine.try_set_cache_property(key, &value) {
                Some(result) => {
                    if result.is_ok() {
                        self.cell.invalidate_all(&self.engine);
                    }
                    result
                }
                None => {
                    // Invalidate before forwarding, and even if the
                    // inner layer rejects the key: a property write is
                    // a mutation signal whether or not it lands.
                    self.cell.invalidate_all(&self.engine);
                    self.inner.set_property(key, value)
                }
            }
        }
    };
}

/// [`LocationProxy`] decorator: read-through caching and single-flight
/// coalescing for `getLocation`. Proximity-alert registration mutates
/// listener state and is forwarded untouched.
pub struct CachedLocationProxy {
    inner: Arc<dyn LocationProxy>,
    engine: CacheEngine,
    cell: CacheCell<(), Location>,
}

impl CachedLocationProxy {
    /// Wraps `inner` under `policy`, stamping entries against `device`'s
    /// fault epoch and (when present) the breaker epoch of the
    /// resilience layer below.
    pub fn new(
        inner: Arc<dyn LocationProxy>,
        device: Device,
        policy: &CachePolicy,
        circuit_epoch: Option<Arc<AtomicU64>>,
        metrics: Arc<CacheMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: CacheEngine::new(
                device,
                policy.location_ttl(),
                policy.coalescing_enabled(),
                circuit_epoch,
                metrics,
            ),
            cell: CacheCell::new(),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &CacheEngine {
        &self.engine
    }
}

impl ProxyBase for CachedLocationProxy {
    cached_set_property!();
}

impl LocationProxy for CachedLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.inner
            .add_proximity_alert(latitude, longitude, altitude, radius, timer_s, listener)
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        self.inner.remove_proximity_alert(listener)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        let inner = &self.inner;
        self.cell
            .get_or_fill(&self.engine, "getLocation", (), || inner.get_location())
    }

    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        // The power ledger is monotonic — caching the pair would serve
        // stale energy figures — so the multi-read always goes through.
        self.inner.get_location_with_power()
    }
}

/// [`ContactsProxy`] decorator: read-through caching keyed by query.
pub struct CachedContactsProxy {
    inner: Arc<dyn ContactsProxy>,
    engine: CacheEngine,
    cell: CacheCell<String, Vec<ContactRecord>>,
}

impl CachedContactsProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn ContactsProxy>,
        device: Device,
        policy: &CachePolicy,
        metrics: Arc<CacheMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: CacheEngine::new(
                device,
                policy.contacts_ttl(),
                policy.coalescing_enabled(),
                None,
                metrics,
            ),
            cell: CacheCell::new(),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &CacheEngine {
        &self.engine
    }
}

impl ProxyBase for CachedContactsProxy {
    cached_set_property!();
}

impl ContactsProxy for CachedContactsProxy {
    fn find_contacts(&self, query: &str) -> Result<Vec<ContactRecord>, ProxyError> {
        let inner = &self.inner;
        self.cell
            .get_or_fill(&self.engine, "findContacts", query.to_owned(), || {
                inner.find_contacts(query)
            })
    }
}

/// [`CalendarProxy`] decorator: read-through caching keyed by window.
pub struct CachedCalendarProxy {
    inner: Arc<dyn CalendarProxy>,
    engine: CacheEngine,
    cell: CacheCell<(u64, u64), Vec<CalendarRecord>>,
}

impl CachedCalendarProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn CalendarProxy>,
        device: Device,
        policy: &CachePolicy,
        metrics: Arc<CacheMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: CacheEngine::new(
                device,
                policy.calendar_ttl(),
                policy.coalescing_enabled(),
                None,
                metrics,
            ),
            cell: CacheCell::new(),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &CacheEngine {
        &self.engine
    }
}

impl ProxyBase for CachedCalendarProxy {
    cached_set_property!();
}

impl CalendarProxy for CachedCalendarProxy {
    fn entries_between(&self, from_ms: u64, to_ms: u64) -> Result<Vec<CalendarRecord>, ProxyError> {
        let inner = &self.inner;
        self.cell
            .get_or_fill(&self.engine, "entriesBetween", (from_ms, to_ms), || {
                inner.entries_between(from_ms, to_ms)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn engine(device: &Device, ttl_ms: u64) -> CacheEngine {
        CacheEngine::new(device.clone(), ttl_ms, true, None, CacheMetrics::shared())
    }

    #[test]
    fn policy_defaults_and_builders() {
        let policy = CachePolicy::default();
        assert_eq!(policy.location_ttl(), 10_000);
        assert_eq!(policy.contacts_ttl(), 60_000);
        assert_eq!(policy.calendar_ttl(), 60_000);
        assert!(policy.coalescing_enabled());
        let tuned = CachePolicy::default()
            .location_ttl_ms(1)
            .contacts_ttl_ms(2)
            .calendar_ttl_ms(3)
            .coalescing(false);
        assert_eq!(tuned.location_ttl(), 1);
        assert_eq!(tuned.contacts_ttl(), 2);
        assert_eq!(tuned.calendar_ttl(), 3);
        assert!(!tuned.coalescing_enabled());
    }

    #[test]
    fn second_read_hits_until_the_ttl_expires() {
        let device = Device::builder().build();
        let engine = engine(&device, 1_000);
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::SeqCst);
            Ok(7)
        };
        assert_eq!(cell.get_or_fill(&engine, "read", (), fill), Ok(7));
        assert_eq!(cell.get_or_fill(&engine, "read", (), fill), Ok(7));
        assert_eq!(fills.load(Ordering::SeqCst), 1, "second read served hot");
        device.advance_ms(1_001);
        assert_eq!(cell.get_or_fill(&engine, "read", (), fill), Ok(7));
        assert_eq!(fills.load(Ordering::SeqCst), 2, "expired entry refilled");
        let snap = engine.metrics().snapshot();
        assert_eq!((snap.hit, snap.miss), (1, 2));
        assert_eq!(snap.invalidated, 0, "TTL expiry is not an invalidation");
    }

    #[test]
    fn zero_ttl_disables_storage() {
        let device = Device::builder().build();
        let engine = engine(&device, 0);
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::SeqCst);
            Ok(1)
        };
        for _ in 0..3 {
            assert!(cell.get_or_fill(&engine, "read", (), fill).is_ok());
        }
        assert_eq!(fills.load(Ordering::SeqCst), 3);
        assert_eq!(engine.metrics().snapshot().hit, 0);
    }

    #[test]
    fn errors_are_never_cached() {
        let device = Device::builder().build();
        let engine = engine(&device, 10_000);
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::SeqCst);
            Err(ProxyError::new(ProxyErrorKind::Unavailable, "no fix"))
        };
        for _ in 0..2 {
            assert!(cell.get_or_fill(&engine, "read", (), fill).is_err());
        }
        assert_eq!(fills.load(Ordering::SeqCst), 2, "each failure re-fills");
        assert!(cell.is_empty());
    }

    #[test]
    fn fault_epoch_bump_invalidates_before_the_ttl() {
        let device = Device::builder().build();
        let engine = engine(&device, 60_000);
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::SeqCst);
            Ok(9)
        };
        cell.get_or_fill(&engine, "read", (), fill).ok();
        device.bump_fault_epoch();
        cell.get_or_fill(&engine, "read", (), fill).ok();
        assert_eq!(fills.load(Ordering::SeqCst), 2);
        assert_eq!(engine.metrics().snapshot().invalidated, 1);
    }

    #[test]
    fn circuit_epoch_bump_invalidates() {
        let device = Device::builder().build();
        let breaker_epoch = Arc::new(AtomicU64::new(0));
        let engine = CacheEngine::new(
            device.clone(),
            60_000,
            true,
            Some(Arc::clone(&breaker_epoch)),
            CacheMetrics::shared(),
        );
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        let fill = || {
            fills.fetch_add(1, Ordering::SeqCst);
            Ok(3)
        };
        cell.get_or_fill(&engine, "read", (), fill).ok();
        cell.get_or_fill(&engine, "read", (), fill).ok();
        assert_eq!(fills.load(Ordering::SeqCst), 1);
        breaker_epoch.fetch_add(1, Ordering::SeqCst);
        cell.get_or_fill(&engine, "read", (), fill).ok();
        assert_eq!(fills.load(Ordering::SeqCst), 2);
        assert_eq!(engine.metrics().snapshot().invalidated, 1);
    }

    #[test]
    fn invalidate_all_counts_cleared_entries_and_retires_inflight_stamps() {
        let device = Device::builder().build();
        let engine = engine(&device, 60_000);
        let cell: CacheCell<u32, u64> = CacheCell::new();
        for k in 0..3 {
            cell.get_or_fill(&engine, "read", k, || Ok(u64::from(k)))
                .ok();
        }
        assert_eq!(cell.len(), 3);
        let before = engine.stamp();
        cell.invalidate_all(&engine);
        assert!(cell.is_empty());
        assert_eq!(engine.metrics().snapshot().invalidated, 3);
        assert_ne!(engine.stamp(), before, "generation moved");
    }

    #[test]
    fn a_fill_racing_a_mutation_cannot_pin_a_stale_answer() {
        // The stamp is taken before the fill: bumping an epoch *during*
        // the fill leaves the stored entry already stale.
        let device = Device::builder().build();
        let engine = engine(&device, 60_000);
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        cell.get_or_fill(&engine, "read", (), || {
            fills.fetch_add(1, Ordering::SeqCst);
            device.bump_fault_epoch(); // mutation mid-flight
            Ok(1)
        })
        .ok();
        cell.get_or_fill(&engine, "read", (), || {
            fills.fetch_add(1, Ordering::SeqCst);
            Ok(2)
        })
        .ok();
        assert_eq!(fills.load(Ordering::SeqCst), 2, "mid-flight bump re-fills");
    }

    #[test]
    fn followers_share_the_leaders_single_invocation() {
        let device = Device::builder().build();
        let engine = Arc::new(engine(&device, 60_000));
        let cell: Arc<CacheCell<(), u64>> = Arc::new(CacheCell::new());
        let fills = Arc::new(AtomicUsize::new(0));
        const FOLLOWERS: usize = 4;

        // The leader's fill spins until every follower has joined the
        // flight (observable through the coalesced counter), making the
        // interleaving deterministic: exactly one fill, FOLLOWERS joins.
        let leader = {
            let engine = Arc::clone(&engine);
            let cell = Arc::clone(&cell);
            let fills = Arc::clone(&fills);
            std::thread::spawn(move || {
                cell.get_or_fill(&engine, "read", (), || {
                    fills.fetch_add(1, Ordering::SeqCst);
                    while engine.metrics().snapshot().coalesced < FOLLOWERS as u64 {
                        std::thread::yield_now();
                    }
                    Ok(42)
                })
            })
        };
        while engine.metrics().snapshot().miss == 0 {
            std::thread::yield_now(); // leader holds the flight
        }
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let cell = Arc::clone(&cell);
                let fills = Arc::clone(&fills);
                std::thread::spawn(move || {
                    cell.get_or_fill(&engine, "read", (), || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        Ok(0)
                    })
                })
            })
            .collect();
        assert_eq!(leader.join().map_err(|_| "leader panicked"), Ok(Ok(42)));
        for follower in followers {
            assert_eq!(follower.join().map_err(|_| "follower panicked"), Ok(Ok(42)));
        }
        assert_eq!(fills.load(Ordering::SeqCst), 1, "one binding invocation");
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.coalesced, FOLLOWERS as u64);
        assert_eq!(snap.miss, 1);
    }

    #[test]
    fn coalescing_off_fills_independently() {
        let device = Device::builder().build();
        let engine = CacheEngine::new(device, 0, false, None, CacheMetrics::shared());
        let cell: CacheCell<(), u64> = CacheCell::new();
        let fills = AtomicUsize::new(0);
        for _ in 0..2 {
            cell.get_or_fill(&engine, "read", (), || {
                fills.fetch_add(1, Ordering::SeqCst);
                Ok(5)
            })
            .ok();
        }
        assert_eq!(fills.load(Ordering::SeqCst), 2);
        assert_eq!(engine.metrics().snapshot().coalesced, 0);
    }

    #[test]
    fn property_plane_tunes_ttl_and_coalescing() {
        let device = Device::builder().build();
        let engine = engine(&device, 10_000);
        assert_eq!(
            engine.try_set_cache_property("cache.ttl_ms", &PropertyValue::Int(500)),
            Some(Ok(()))
        );
        assert_eq!(engine.ttl_ms(), 500);
        assert_eq!(
            engine.try_set_cache_property("cache.coalescing", &PropertyValue::Bool(false)),
            Some(Ok(()))
        );
        assert!(!engine.coalescing());
        assert!(matches!(
            engine.try_set_cache_property("cache.ttl_ms", &PropertyValue::Int(-1)),
            Some(Err(_))
        ));
        assert_eq!(
            engine.try_set_cache_property("provider", &PropertyValue::str("gps")),
            None,
            "foreign keys fall through to the wrapped proxy"
        );
    }
}
