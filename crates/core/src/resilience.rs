//! The M-Proxy resilience layer: retries, circuit breaking and
//! fallbacks as enrichment decorators (§3.3).
//!
//! Mobile platform capabilities fail transiently all the time — the GPS
//! loses its fix, the packet radio drops out of coverage, the SMSC
//! sheds load. The paper's enrichment plane ("value-added services such
//! as reliable delivery … can be plugged in without touching the
//! application") motivates this module: every uniform proxy can be
//! wrapped in a [`ResiliencePolicy`]-driven decorator that
//!
//! * retries **transient** failures ([`is_transient`]) with exponential
//!   backoff and seeded jitter, advancing the *simulated device clock*
//!   rather than sleeping on the wall clock;
//! * fails fast through a per-proxy [`CircuitBreaker`] once the binding
//!   has proven itself down, and probes it again after a cooldown;
//! * falls back, for Location, to the last known fix (marked stale by
//!   its old timestamp) and then to a configured default position;
//! * reports what it did through shared [`ResilienceMetrics`] counters.
//!
//! Policy knobs are also reachable through the ordinary property plane
//! (`setProperty("retry.max_attempts", 5)`, …) so applications tune
//! resilience exactly the way they tune `powerConsumption` or
//! `pollInterval`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::{ambient, ActiveSpan, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};

use crate::api::{CallProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{CallProgress, DeliveryListener, HttpResult, Location, SharedProximityListener};

/// Whether an error category is worth retrying.
///
/// `Unavailable` (no GPS fix yet, radio momentarily down) and `Io`
/// (transport hiccup) are transient: the same call can succeed moments
/// later. Everything else — security denials, unsupported interfaces,
/// property-plane mistakes, policy denials — is deterministic and
/// retrying would only repeat the failure. Thin alias over
/// [`ProxyErrorKind::is_retryable`], kept for callers that read better
/// with the paper's "transient" vocabulary.
pub fn is_transient(kind: ProxyErrorKind) -> bool {
    kind.is_retryable()
}

/// splitmix64 — a tiny, high-quality mixing function used to derive
/// deterministic jitter from the policy seed (no `rand` dependency, so
/// simulated runs replay bit-identically on every platform binding).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tunable knobs for the resilience decorators.
///
/// Every field is also settable at run time through the property plane;
/// the property keys are listed on each builder method.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Total attempts per call, including the first (`retry.max_attempts`).
    pub max_attempts: u32,
    /// Base backoff before the second attempt; doubles per retry
    /// (`retry.backoff_ms`).
    pub backoff_base_ms: u64,
    /// Per-call budget of simulated time for retries (`retry.deadline_ms`).
    pub deadline_ms: u64,
    /// Seed for the deterministic backoff jitter (`retry.jitter_seed`).
    pub jitter_seed: u64,
    /// Consecutive failures that open the circuit (`circuit.threshold`).
    pub circuit_threshold: u32,
    /// How long an open circuit rejects before a half-open probe
    /// (`circuit.cooldown_ms`).
    pub circuit_cooldown_ms: u64,
    /// Last-resort latitude for the Location fallback chain
    /// (`fallback.latitude`).
    pub fallback_latitude: Option<f64>,
    /// Last-resort longitude for the Location fallback chain
    /// (`fallback.longitude`).
    pub fallback_longitude: Option<f64>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ms: 100,
            deadline_ms: 10_000,
            jitter_seed: 0x5EED,
            circuit_threshold: 5,
            circuit_cooldown_ms: 30_000,
            fallback_latitude: None,
            fallback_longitude: None,
        }
    }
}

impl ResiliencePolicy {
    /// Sets the total attempts per call (property `retry.max_attempts`).
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base backoff in milliseconds (property `retry.backoff_ms`).
    #[must_use]
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    /// Sets the per-call retry deadline (property `retry.deadline_ms`).
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Sets the jitter seed (property `retry.jitter_seed`).
    #[must_use]
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Sets the circuit-opening failure threshold (property
    /// `circuit.threshold`).
    #[must_use]
    pub fn circuit_threshold(mut self, failures: u32) -> Self {
        self.circuit_threshold = failures.max(1);
        self
    }

    /// Sets the open-circuit cooldown (property `circuit.cooldown_ms`).
    #[must_use]
    pub fn circuit_cooldown_ms(mut self, ms: u64) -> Self {
        self.circuit_cooldown_ms = ms;
        self
    }

    /// Sets the configured default position terminating the Location
    /// fallback chain (properties `fallback.latitude` /
    /// `fallback.longitude`).
    #[must_use]
    pub fn fallback_position(mut self, latitude: f64, longitude: f64) -> Self {
        self.fallback_latitude = Some(latitude);
        self.fallback_longitude = Some(longitude);
        self
    }

    /// The configured default position, when both coordinates are set.
    pub fn fallback(&self) -> Option<(f64, f64)> {
        match (self.fallback_latitude, self.fallback_longitude) {
            (Some(lat), Some(lon)) => Some((lat, lon)),
            _ => None,
        }
    }

    /// Deterministic backoff before retry number `attempt` (1-based:
    /// the delay after the first failed attempt is `backoff_for(1, …)`).
    /// Exponential (`base << (attempt-1)`) plus seeded jitter of up to
    /// half the exponential term, so concurrent retriers de-synchronise
    /// without losing replayability.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(16));
        let span = (exp / 2).max(1);
        let jitter =
            splitmix64(self.jitter_seed ^ u64::from(attempt).rotate_left(17) ^ salt) % span;
        exp + jitter
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitState {
    /// Calls flow normally; consecutive failures are being counted.
    Closed,
    /// The binding is presumed down; calls are rejected fast with
    /// [`ProxyErrorKind::CircuitOpen`] until the cooldown elapses.
    Open,
    /// One probe call is allowed through; success closes the circuit,
    /// failure re-opens it immediately.
    HalfOpen,
}

struct BreakerInner {
    threshold: u32,
    cooldown_ms: u64,
    consecutive_failures: u32,
    state: CircuitState,
    opened_at_ms: u64,
}

/// A per-proxy circuit breaker driven entirely by the simulated device
/// clock: callers pass `now_ms` in, so state transitions replay
/// deterministically.
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    epoch: Arc<AtomicU64>,
}

impl CircuitBreaker {
    /// Creates a closed breaker that opens after `threshold`
    /// consecutive failures and probes again `cooldown_ms` later.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Self {
        Self {
            inner: Mutex::new(BreakerInner {
                threshold: threshold.max(1),
                cooldown_ms,
                consecutive_failures: 0,
                state: CircuitState::Closed,
                opened_at_ms: 0,
            }),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current state (transition to half-open only happens inside
    /// [`CircuitBreaker::admit`]).
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// The breaker's transition epoch: a monotone counter bumped on
    /// every state change (and only on actual changes — a success while
    /// already closed leaves it untouched). Caches keyed off this epoch
    /// discard entries filled under a previous circuit state.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A shared handle on the transition epoch, for observers (the
    /// read-through cache layer) that outlive their borrow of the
    /// breaker.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Re-tunes threshold/cooldown at run time (the property plane).
    pub fn configure(&self, threshold: u32, cooldown_ms: u64) {
        let mut inner = self.inner.lock();
        inner.threshold = threshold.max(1);
        inner.cooldown_ms = cooldown_ms;
    }

    /// Asks whether a call may proceed at simulated time `now_ms`.
    /// While open and cooling down this returns `false`; once the
    /// cooldown has elapsed the breaker moves to half-open and admits
    /// one probe.
    pub fn admit(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed | CircuitState::HalfOpen => true,
            CircuitState::Open => {
                if now_ms >= inner.opened_at_ms.saturating_add(inner.cooldown_ms) {
                    inner.state = CircuitState::HalfOpen;
                    self.epoch.fetch_add(1, Ordering::AcqRel);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: the breaker closes and the failure
    /// count resets.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        if inner.state != CircuitState::Closed {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        inner.state = CircuitState::Closed;
        inner.consecutive_failures = 0;
    }

    /// Records a failed (transient) call at simulated time `now_ms`.
    /// Returns `true` when this failure opened (or re-opened) the
    /// circuit.
    pub fn record_failure(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::HalfOpen => {
                inner.state = CircuitState::Open;
                inner.opened_at_ms = now_ms;
                self.epoch.fetch_add(1, Ordering::AcqRel);
                true
            }
            CircuitState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= inner.threshold {
                    inner.state = CircuitState::Open;
                    inner.opened_at_ms = now_ms;
                    self.epoch.fetch_add(1, Ordering::AcqRel);
                    true
                } else {
                    false
                }
            }
            CircuitState::Open => false,
        }
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Shared resilience counters, updated lock-free by the
        /// decorators and snapshotted by observability code.
        ///
        /// Each field is a telemetry [`Counter`] handle. A standalone
        /// block ([`ResilienceMetrics::shared`]) counts privately; a
        /// registry-backed block ([`ResilienceMetrics::on_registry`])
        /// publishes the same counters as `resilience_<name>_total`
        /// series, so exporters see them alongside every other metric.
        #[derive(Debug, Default)]
        pub struct ResilienceMetrics {
            $($(#[$doc])* $name: Counter,)*
        }

        /// A point-in-time copy of [`ResilienceMetrics`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct ResilienceSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl ResilienceMetrics {
            /// Copies every counter at once.
            pub fn snapshot(&self) -> ResilienceSnapshot {
                ResilienceSnapshot {
                    $($name: self.$name.value(),)*
                }
            }

            /// A counter block whose handles live in `registry` under
            /// `resilience_<name>_total`, making the resilience layer's
            /// activity visible to every exporter reading the registry.
            pub fn on_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
                Arc::new(Self {
                    $($name: registry.counter(
                        concat!("resilience_", stringify!($name), "_total"),
                        &Labels::empty(),
                    ),)*
                })
            }
        }
    };
}

counters! {
    /// Calls entering a resilient decorator.
    calls,
    /// Attempts issued against the wrapped proxy (>= calls).
    attempts,
    /// Backoff-then-retry cycles taken.
    retries,
    /// Calls that ultimately succeeded.
    successes,
    /// Transient attempt failures observed.
    transient_failures,
    /// Fatal (non-retryable) failures returned immediately.
    fatal_failures,
    /// Calls rejected fast by an open circuit.
    circuit_rejections,
    /// Times a failure opened (or re-opened) the circuit.
    circuit_opens,
    /// Location calls answered from the last known fix.
    fallback_last_known,
    /// Location calls answered from the configured default position.
    fallback_default,
    /// Calls abandoned because the retry deadline ran out.
    deadline_exhausted,
}

impl ResilienceMetrics {
    /// A fresh, shareable counter block (not registry-backed; use
    /// [`ResilienceMetrics::on_registry`] to publish through a
    /// [`MetricsRegistry`]).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn bump(&self, counter: &Counter) {
        counter.inc();
    }
}

impl fmt::Display for ResilienceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} attempts={} retries={} successes={} transient={} fatal={} \
             circuit_rejections={} circuit_opens={} fallback_last_known={} \
             fallback_default={} deadline_exhausted={}",
            self.calls,
            self.attempts,
            self.retries,
            self.successes,
            self.transient_failures,
            self.fatal_failures,
            self.circuit_rejections,
            self.circuit_opens,
            self.fallback_last_known,
            self.fallback_default,
            self.deadline_exhausted,
        )
    }
}

fn int_of(value: &PropertyValue) -> Option<i64> {
    if let Some(i) = value.as_int() {
        return Some(i);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn float_of(value: &PropertyValue) -> Option<f64> {
    if let Some(i) = value.as_int() {
        return Some(i as f64);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn bad_value(key: &str, value: &PropertyValue) -> ProxyError {
    ProxyError::new(
        ProxyErrorKind::BadPropertyValue,
        format!("resilience property '{key}' cannot take value {value:?}"),
    )
}

/// The retry/breaker engine shared by all four decorators.
struct Engine {
    device: Device,
    policy: Mutex<ResiliencePolicy>,
    breaker: CircuitBreaker,
    metrics: Arc<ResilienceMetrics>,
    /// Per-call salt source so two calls with the same policy seed
    /// still jitter differently (while replaying identically run-over-run).
    seq: AtomicU64,
}

/// How a resilient call ultimately failed — drives the Location
/// fallback chain.
enum FailureMode {
    /// Transient exhaustion, deadline, or open circuit: worth a fallback.
    Degraded(ProxyError),
    /// Deterministic failure: propagate untouched, no fallback.
    Fatal(ProxyError),
}

impl FailureMode {
    fn into_error(self) -> ProxyError {
        match self {
            FailureMode::Degraded(e) | FailureMode::Fatal(e) => e,
        }
    }
}

impl Engine {
    fn new(device: Device, policy: ResiliencePolicy, metrics: Arc<ResilienceMetrics>) -> Self {
        let breaker = CircuitBreaker::new(policy.circuit_threshold, policy.circuit_cooldown_ms);
        Self {
            device,
            policy: Mutex::new(policy),
            breaker,
            metrics,
            seq: AtomicU64::new(0),
        }
    }

    fn policy(&self) -> ResiliencePolicy {
        self.policy.lock().clone()
    }

    /// Runs `call` under the retry policy and circuit breaker,
    /// advancing the simulated clock for each backoff. When an ambient
    /// trace is active, the whole execution is recorded as one
    /// resilience-plane span whose events mark every attempt, retry and
    /// circuit transition.
    fn execute<T>(
        &self,
        operation: &str,
        call: &dyn Fn() -> Result<T, ProxyError>,
    ) -> Result<T, FailureMode> {
        // `is_active` first: when no trace is open (telemetry off, or
        // an unspanned call path) the name `format!` is skipped
        // entirely, keeping the resilience layer allocation-free.
        let mut span = if ambient::is_active() {
            ambient::child(
                format!("resilience:{operation}"),
                Plane::Resilience,
                self.device.now_ms(),
            )
        } else {
            None
        };
        let result = self.execute_inner(operation, call, span.as_mut());
        if let Some(mut s) = span.take() {
            if let Err(failure) = &result {
                let e = match failure {
                    FailureMode::Degraded(e) | FailureMode::Fatal(e) => e,
                };
                s.attr("error", crate::telemetry::kind_name(e.kind()));
            }
            s.end(self.device.now_ms());
        }
        result
    }

    fn execute_inner<T>(
        &self,
        operation: &str,
        call: &dyn Fn() -> Result<T, ProxyError>,
        mut span: Option<&mut ActiveSpan>,
    ) -> Result<T, FailureMode> {
        let policy = self.policy();
        self.metrics.bump(&self.metrics.calls);
        if !self.breaker.admit(self.device.now_ms()) {
            self.metrics.bump(&self.metrics.circuit_rejections);
            if let Some(s) = span.as_deref_mut() {
                s.event("circuit_rejected", self.device.now_ms());
            }
            return Err(FailureMode::Degraded(ProxyError::new(
                ProxyErrorKind::CircuitOpen,
                format!(
                    "circuit open for {operation}; call rejected without reaching the platform"
                ),
            )));
        }
        let salt = self.seq.fetch_add(1, Ordering::Relaxed);
        // The retry budget is the policy deadline, tightened by any
        // ambient cancellation context the overload layer (or the
        // caller) opened above us — the deadline decrements across
        // retry → circuit → fallback hops instead of resetting.
        let mut deadline = self.device.now_ms().saturating_add(policy.deadline_ms);
        if let Some(ambient_deadline) = crate::overload::current_deadline() {
            deadline = deadline.min(ambient_deadline.expires_at_ms());
        }
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            self.metrics.bump(&self.metrics.attempts);
            if let Some(s) = span.as_deref_mut() {
                s.event("attempt", self.device.now_ms());
            }
            match call() {
                Ok(value) => {
                    self.breaker.record_success();
                    self.metrics.bump(&self.metrics.successes);
                    return Ok(value);
                }
                Err(e) if is_transient(e.kind()) => {
                    self.metrics.bump(&self.metrics.transient_failures);
                    if self.breaker.record_failure(self.device.now_ms()) {
                        self.metrics.bump(&self.metrics.circuit_opens);
                        if let Some(s) = span.as_deref_mut() {
                            s.event("circuit_open", self.device.now_ms());
                        }
                    }
                    if attempt >= policy.max_attempts {
                        return Err(FailureMode::Degraded(e));
                    }
                    let backoff = policy.backoff_for(attempt, salt);
                    if self.device.now_ms().saturating_add(backoff) > deadline {
                        self.metrics.bump(&self.metrics.deadline_exhausted);
                        if let Some(s) = span.as_deref_mut() {
                            s.event("deadline_exhausted", self.device.now_ms());
                            // Cause attribution: without it a trace
                            // shows a bare DeadlineExceeded with no hint
                            // of which failure ate the budget.
                            s.attr("deadline.cause", crate::telemetry::kind_name(e.kind()));
                            if let Some(class) = e.platform_exception() {
                                s.attr("deadline.platform_exception", class.to_owned());
                            }
                            s.attr("deadline.attempts", format!("{attempt}"));
                        }
                        let mut err = ProxyError::new(
                            ProxyErrorKind::DeadlineExceeded,
                            format!(
                                "retry deadline ({} ms) exhausted after {attempt} attempt(s) \
                                 of {operation}; last error: {}",
                                policy.deadline_ms,
                                e.message()
                            ),
                        );
                        if let Some(class) = e.platform_exception() {
                            err = err.with_platform(class);
                        }
                        return Err(FailureMode::Degraded(err));
                    }
                    self.metrics.bump(&self.metrics.retries);
                    if let Some(s) = span.as_deref_mut() {
                        s.event("retry", self.device.now_ms());
                    }
                    self.device.advance_ms(backoff);
                }
                Err(e) if e.kind().is_load_shed() => {
                    // The overload layer beneath us shed this call.
                    // Retrying here would pile more load on a stack
                    // that just asked us to back off — but the failure
                    // is load, not correctness, so the fallback chain
                    // may still serve a degraded answer.
                    self.metrics.bump(&self.metrics.fatal_failures);
                    if let Some(s) = span.as_deref_mut() {
                        s.event("overload_shed", self.device.now_ms());
                    }
                    return Err(FailureMode::Degraded(e));
                }
                Err(e) => {
                    self.metrics.bump(&self.metrics.fatal_failures);
                    return Err(FailureMode::Fatal(e));
                }
            }
        }
    }

    /// Intercepts the resilience property keys; returns `None` for keys
    /// that belong to the wrapped proxy.
    fn try_set_policy_property(
        &self,
        key: &str,
        value: &PropertyValue,
    ) -> Option<Result<(), ProxyError>> {
        let mut policy = self.policy.lock();
        let result = match key {
            "retry.max_attempts" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.max_attempts = n as u32;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "retry.backoff_ms" => match int_of(value) {
                Some(n) if n >= 0 => {
                    policy.backoff_base_ms = n as u64;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "retry.deadline_ms" => match int_of(value) {
                Some(n) if n >= 0 => {
                    policy.deadline_ms = n as u64;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "retry.jitter_seed" => match int_of(value) {
                Some(n) => {
                    policy.jitter_seed = n as u64;
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            "circuit.threshold" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.circuit_threshold = n as u32;
                    self.breaker
                        .configure(policy.circuit_threshold, policy.circuit_cooldown_ms);
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "circuit.cooldown_ms" => match int_of(value) {
                Some(n) if n >= 0 => {
                    policy.circuit_cooldown_ms = n as u64;
                    self.breaker
                        .configure(policy.circuit_threshold, policy.circuit_cooldown_ms);
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "fallback.latitude" => match float_of(value) {
                Some(lat) => {
                    policy.fallback_latitude = Some(lat);
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            "fallback.longitude" => match float_of(value) {
                Some(lon) => {
                    policy.fallback_longitude = Some(lon);
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            _ => return None,
        };
        Some(result)
    }
}

macro_rules! forward_set_property {
    () => {
        fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
            match self.engine.try_set_policy_property(key, &value) {
                Some(result) => result,
                None => self.inner.set_property(key, value),
            }
        }
    };
}

/// [`LocationProxy`] decorator: retries, circuit breaking and the
/// GPS → last-known-fix → configured-default fallback chain.
pub struct ResilientLocationProxy {
    inner: Arc<dyn LocationProxy>,
    engine: Engine,
    last_fix: Mutex<Option<Location>>,
}

impl ResilientLocationProxy {
    /// Wraps `inner`, timing backoffs against `device`'s simulated
    /// clock and reporting into `metrics`.
    pub fn new(
        inner: Arc<dyn LocationProxy>,
        device: Device,
        policy: ResiliencePolicy,
        metrics: Arc<ResilienceMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: Engine::new(device, policy, metrics),
            last_fix: Mutex::new(None),
        }
    }

    /// The breaker state, for observability and tests.
    pub fn circuit_state(&self) -> CircuitState {
        self.engine.breaker.state()
    }

    /// A shared handle on the breaker's transition epoch — the cache
    /// layer snapshots this at fill time so circuit-state changes
    /// invalidate reads cached under the previous state.
    pub fn circuit_epoch_handle(&self) -> Arc<AtomicU64> {
        self.engine.breaker.epoch_handle()
    }

    /// Serves the fallback chain after a degraded failure: the last
    /// known fix (stale — its timestamp predates `now`), then the
    /// configured default position (infinite stated inaccuracy).
    fn fallback_location(&self, failure: FailureMode) -> Result<Location, ProxyError> {
        let failure = match failure {
            FailureMode::Fatal(e) => return Err(e),
            FailureMode::Degraded(e) => e,
        };
        if let Some(stale) = *self.last_fix.lock() {
            self.engine
                .metrics
                .bump(&self.engine.metrics.fallback_last_known);
            return Ok(stale);
        }
        if let Some((lat, lon)) = self.engine.policy().fallback() {
            self.engine
                .metrics
                .bump(&self.engine.metrics.fallback_default);
            return Ok(Location {
                latitude: lat,
                longitude: lon,
                altitude: 0.0,
                accuracy_m: f64::INFINITY,
                timestamp_ms: self.engine.device.now_ms(),
                speed_mps: 0.0,
                course_deg: 0.0,
            });
        }
        Err(failure)
    }
}

impl ProxyBase for ResilientLocationProxy {
    forward_set_property!();
}

impl LocationProxy for ResilientLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.engine
            .execute("addProximityAlert", &|| {
                self.inner.add_proximity_alert(
                    latitude,
                    longitude,
                    altitude,
                    radius,
                    timer_s,
                    Arc::clone(&listener),
                )
            })
            .map_err(FailureMode::into_error)
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        // Removal is a local bookkeeping operation — never retried.
        self.inner.remove_proximity_alert(listener)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        match self
            .engine
            .execute("getLocation", &|| self.inner.get_location())
        {
            Ok(fix) => {
                *self.last_fix.lock() = Some(fix);
                Ok(fix)
            }
            Err(failure) => self.fallback_location(failure),
        }
    }

    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        match self.engine.execute("getLocationWithPower", &|| {
            self.inner.get_location_with_power()
        }) {
            Ok((fix, power)) => {
                *self.last_fix.lock() = Some(fix);
                Ok((fix, power))
            }
            // Fallback fixes carry no energy reading — the ledger lives
            // behind the (failed) platform call.
            Err(failure) => self.fallback_location(failure).map(|fix| (fix, 0.0)),
        }
    }
}

/// [`SmsProxy`] decorator: retries and circuit breaking around
/// `sendTextMessage`.
pub struct ResilientSmsProxy {
    inner: Arc<dyn SmsProxy>,
    engine: Engine,
}

impl ResilientSmsProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn SmsProxy>,
        device: Device,
        policy: ResiliencePolicy,
        metrics: Arc<ResilienceMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: Engine::new(device, policy, metrics),
        }
    }

    /// The breaker state, for observability and tests.
    pub fn circuit_state(&self) -> CircuitState {
        self.engine.breaker.state()
    }
}

impl ProxyBase for ResilientSmsProxy {
    forward_set_property!();
}

impl SmsProxy for ResilientSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        self.engine
            .execute("sendTextMessage", &|| {
                self.inner
                    .send_text_message(destination, text, delivery_listener.clone())
            })
            .map_err(FailureMode::into_error)
    }
}

/// [`HttpProxy`] decorator: retries and circuit breaking around
/// `request`. HTTP error statuses are successful results and are never
/// retried; only transport failures are.
pub struct ResilientHttpProxy {
    inner: Arc<dyn HttpProxy>,
    engine: Engine,
}

impl ResilientHttpProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn HttpProxy>,
        device: Device,
        policy: ResiliencePolicy,
        metrics: Arc<ResilienceMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: Engine::new(device, policy, metrics),
        }
    }

    /// The breaker state, for observability and tests.
    pub fn circuit_state(&self) -> CircuitState {
        self.engine.breaker.state()
    }
}

impl ProxyBase for ResilientHttpProxy {
    forward_set_property!();
}

impl HttpProxy for ResilientHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        self.engine
            .execute("request", &|| self.inner.request(method, url, body))
            .map_err(FailureMode::into_error)
    }
}

/// [`CallProxy`] decorator: only `makeACall` is retried — progress
/// polling and hang-up refer to an existing call id and must not be
/// replayed.
pub struct ResilientCallProxy {
    inner: Arc<dyn CallProxy>,
    engine: Engine,
}

impl ResilientCallProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn CallProxy>,
        device: Device,
        policy: ResiliencePolicy,
        metrics: Arc<ResilienceMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: Engine::new(device, policy, metrics),
        }
    }

    /// The breaker state, for observability and tests.
    pub fn circuit_state(&self) -> CircuitState {
        self.engine.breaker.state()
    }
}

impl ProxyBase for ResilientCallProxy {
    forward_set_property!();
}

impl CallProxy for ResilientCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        self.engine
            .execute("makeACall", &|| self.inner.make_a_call(number))
            .map_err(FailureMode::into_error)
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        self.inner.call_progress(call_id)
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        self.inner.end_call(call_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::builder().msisdn("+resilience").build()
    }

    /// A location proxy that fails transiently `failures` times, then
    /// succeeds.
    struct Flaky {
        failures: AtomicU64,
        kind: ProxyErrorKind,
    }

    impl Flaky {
        fn new(failures: u64, kind: ProxyErrorKind) -> Self {
            Self {
                failures: AtomicU64::new(failures),
                kind,
            }
        }
    }

    impl ProxyBase for Flaky {
        fn set_property(&self, _key: &str, _value: PropertyValue) -> Result<(), ProxyError> {
            Ok(())
        }
    }

    impl LocationProxy for Flaky {
        fn add_proximity_alert(
            &self,
            _latitude: f64,
            _longitude: f64,
            _altitude: f64,
            _radius: f64,
            _timer_s: i64,
            _listener: SharedProximityListener,
        ) -> Result<(), ProxyError> {
            Ok(())
        }

        fn remove_proximity_alert(
            &self,
            _listener: &SharedProximityListener,
        ) -> Result<bool, ProxyError> {
            Ok(false)
        }

        fn get_location(&self) -> Result<Location, ProxyError> {
            let left = self.failures.load(Ordering::Relaxed);
            if left > 0 {
                self.failures.store(left - 1, Ordering::Relaxed);
                return Err(ProxyError::new(self.kind, "injected").with_platform("fake.Exception"));
            }
            Ok(Location {
                latitude: 1.0,
                longitude: 2.0,
                ..Location::default()
            })
        }
    }

    fn resilient(flaky: Flaky, policy: ResiliencePolicy) -> ResilientLocationProxy {
        ResilientLocationProxy::new(
            Arc::new(flaky),
            device(),
            policy,
            ResilienceMetrics::shared(),
        )
    }

    #[test]
    fn transient_classification_matches_the_paper_error_model() {
        assert!(is_transient(ProxyErrorKind::Unavailable));
        assert!(is_transient(ProxyErrorKind::Io));
        for fatal in [
            ProxyErrorKind::Security,
            ProxyErrorKind::IllegalArgument,
            ProxyErrorKind::UnsupportedOnPlatform,
            ProxyErrorKind::UnknownProperty,
            ProxyErrorKind::BadPropertyValue,
            ProxyErrorKind::MissingProperty,
            ProxyErrorKind::PolicyDenied,
            ProxyErrorKind::CircuitOpen,
            ProxyErrorKind::DeadlineExceeded,
            ProxyErrorKind::Overloaded,
        ] {
            assert!(!is_transient(fatal), "{fatal:?} must not be retried");
        }
    }

    #[test]
    fn ambient_deadline_tightens_the_retry_budget() {
        let dev = device();
        let proxy = ResilientLocationProxy::new(
            Arc::new(Flaky::new(50, ProxyErrorKind::Unavailable)),
            dev.clone(),
            ResiliencePolicy::default()
                .max_attempts(50)
                .backoff_base_ms(400)
                .deadline_ms(1_000_000),
            ResilienceMetrics::shared(),
        );
        // The policy budget is effectively unlimited, but the ambient
        // cancellation context caps the whole retry loop at 1 s.
        let deadline = crate::overload::Deadline::after(dev.now_ms(), 1_000);
        let err = crate::overload::with_deadline(deadline, || proxy.get_location().unwrap_err());
        assert_eq!(err.kind(), ProxyErrorKind::DeadlineExceeded);
        assert!(
            dev.now_ms() <= deadline.expires_at_ms(),
            "retries never burned past the ambient expiry"
        );
        assert_eq!(proxy.engine.metrics.snapshot().deadline_exhausted, 1);
    }

    #[test]
    fn overload_sheds_are_not_retried_but_are_fallback_eligible() {
        struct Shedding;
        impl ProxyBase for Shedding {
            fn set_property(&self, _key: &str, _value: PropertyValue) -> Result<(), ProxyError> {
                Ok(())
            }
        }
        impl LocationProxy for Shedding {
            fn add_proximity_alert(
                &self,
                _latitude: f64,
                _longitude: f64,
                _altitude: f64,
                _radius: f64,
                _timer_s: i64,
                _listener: SharedProximityListener,
            ) -> Result<(), ProxyError> {
                Ok(())
            }
            fn remove_proximity_alert(
                &self,
                _listener: &SharedProximityListener,
            ) -> Result<bool, ProxyError> {
                Ok(false)
            }
            fn get_location(&self) -> Result<Location, ProxyError> {
                Err(
                    ProxyError::new(ProxyErrorKind::Overloaded, "admission shed")
                        .with_retry_after(120),
                )
            }
        }
        let proxy = ResilientLocationProxy::new(
            Arc::new(Shedding),
            device(),
            ResiliencePolicy::default()
                .max_attempts(5)
                .fallback_position(28.6, 77.2),
            ResilienceMetrics::shared(),
        );
        let fix = proxy.get_location().expect("shed degrades to fallback");
        assert_eq!((fix.latitude, fix.longitude), (28.6, 77.2));
        let snap = proxy.engine.metrics.snapshot();
        assert_eq!(snap.attempts, 1, "a shed is never retried here");
        assert_eq!(snap.fallback_default, 1);
    }

    #[test]
    fn backoff_is_exponential_jittered_and_deterministic() {
        let policy = ResiliencePolicy::default()
            .backoff_base_ms(100)
            .jitter_seed(42);
        for attempt in 1..=4 {
            let exp = 100u64 << (attempt - 1);
            let delay = policy.backoff_for(attempt, 7);
            assert!(
                delay >= exp && delay < exp + (exp / 2).max(1),
                "attempt {attempt}: {delay}"
            );
            // Same seed + salt replays identically.
            assert_eq!(delay, policy.backoff_for(attempt, 7));
        }
        // Different salts de-synchronise.
        assert_ne!(policy.backoff_for(3, 1), policy.backoff_for(3, 2));
    }

    #[test]
    fn retries_transient_failures_until_success() {
        let proxy = resilient(
            Flaky::new(2, ProxyErrorKind::Unavailable),
            ResiliencePolicy::default().max_attempts(3),
        );
        let fix = proxy.get_location().expect("third attempt succeeds");
        assert_eq!(fix.latitude, 1.0);
        let snap = proxy.engine.metrics.snapshot();
        assert_eq!(snap.attempts, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.successes, 1);
    }

    #[test]
    fn fatal_failures_are_not_retried() {
        let proxy = resilient(
            Flaky::new(5, ProxyErrorKind::Security),
            ResiliencePolicy::default().max_attempts(4),
        );
        let err = proxy.get_location().unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Security);
        let snap = proxy.engine.metrics.snapshot();
        assert_eq!(snap.attempts, 1);
        assert_eq!(snap.fatal_failures, 1);
    }

    #[test]
    fn backoff_advances_the_simulated_clock_not_the_wall_clock() {
        let dev = device();
        let proxy = ResilientLocationProxy::new(
            Arc::new(Flaky::new(2, ProxyErrorKind::Io)),
            dev.clone(),
            ResiliencePolicy::default()
                .max_attempts(3)
                .backoff_base_ms(100),
            ResilienceMetrics::shared(),
        );
        let before = dev.now_ms();
        proxy.get_location().unwrap();
        let elapsed = dev.now_ms() - before;
        // Two backoffs: >= 100 + 200 exponential, < 1.5x with jitter.
        assert!((300..450).contains(&elapsed), "simulated elapsed {elapsed}");
    }

    #[test]
    fn deadline_caps_the_retry_budget_and_keeps_provenance() {
        let proxy = resilient(
            Flaky::new(50, ProxyErrorKind::Unavailable),
            ResiliencePolicy::default()
                .max_attempts(50)
                .backoff_base_ms(400)
                .deadline_ms(1_000),
        );
        let err = proxy.get_location().unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::DeadlineExceeded);
        assert_eq!(err.platform_exception(), Some("fake.Exception"));
        let snap = proxy.engine.metrics.snapshot();
        assert_eq!(snap.deadline_exhausted, 1);
        assert!(snap.attempts < 50);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let breaker = CircuitBreaker::new(3, 1_000);
        assert_eq!(breaker.state(), CircuitState::Closed);
        assert!(!breaker.record_failure(10));
        assert!(!breaker.record_failure(20));
        assert!(breaker.record_failure(30), "third failure opens");
        assert_eq!(breaker.state(), CircuitState::Open);
        assert!(!breaker.admit(500), "rejected while cooling down");
        assert!(breaker.admit(1_030), "cooldown elapsed: half-open probe");
        assert_eq!(breaker.state(), CircuitState::HalfOpen);
        breaker.record_success();
        assert_eq!(breaker.state(), CircuitState::Closed);
    }

    #[test]
    fn halfopen_probe_failure_reopens_immediately() {
        let breaker = CircuitBreaker::new(1, 1_000);
        assert!(breaker.record_failure(0));
        assert!(breaker.admit(1_000));
        assert!(breaker.record_failure(1_000), "probe failure re-opens");
        assert_eq!(breaker.state(), CircuitState::Open);
        assert!(!breaker.admit(1_500));
        assert!(breaker.admit(2_000));
    }

    #[test]
    fn open_circuit_rejects_fast_with_circuit_open_kind() {
        let proxy = resilient(
            Flaky::new(100, ProxyErrorKind::Unavailable),
            ResiliencePolicy::default()
                .max_attempts(1)
                .circuit_threshold(2)
                .circuit_cooldown_ms(60_000),
        );
        assert!(proxy.get_location().is_err());
        assert!(proxy.get_location().is_err());
        assert_eq!(proxy.circuit_state(), CircuitState::Open);
        let err = proxy.get_location().unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::CircuitOpen);
        let snap = proxy.engine.metrics.snapshot();
        assert_eq!(snap.circuit_rejections, 1);
        assert_eq!(
            snap.attempts, 2,
            "the rejected call never reached the binding"
        );
    }

    #[test]
    fn location_falls_back_to_last_known_fix_marked_stale_by_timestamp() {
        let dev = device();
        let inner = Arc::new(Flaky::new(0, ProxyErrorKind::Unavailable));
        let proxy = ResilientLocationProxy::new(
            inner.clone(),
            dev.clone(),
            ResiliencePolicy::default().max_attempts(1),
            ResilienceMetrics::shared(),
        );
        let fresh = proxy.get_location().unwrap();
        // Now the GPS goes dark for good.
        inner.failures.store(u64::MAX, Ordering::Relaxed);
        dev.advance_ms(5_000);
        let stale = proxy.get_location().unwrap();
        assert_eq!(stale.latitude, fresh.latitude);
        assert_eq!(stale.timestamp_ms, fresh.timestamp_ms);
        assert!(
            stale.timestamp_ms < dev.now_ms(),
            "staleness is visible in the timestamp"
        );
        assert_eq!(proxy.engine.metrics.snapshot().fallback_last_known, 1);
    }

    #[test]
    fn location_falls_back_to_configured_default_when_no_fix_was_ever_seen() {
        let proxy = resilient(
            Flaky::new(u64::MAX, ProxyErrorKind::Unavailable),
            ResiliencePolicy::default()
                .max_attempts(1)
                .fallback_position(28.6, 77.2),
        );
        let fix = proxy.get_location().unwrap();
        assert_eq!((fix.latitude, fix.longitude), (28.6, 77.2));
        assert!(fix.accuracy_m.is_infinite());
        assert_eq!(proxy.engine.metrics.snapshot().fallback_default, 1);
    }

    #[test]
    fn no_fallback_for_fatal_errors() {
        let proxy = resilient(
            Flaky::new(u64::MAX, ProxyErrorKind::Security),
            ResiliencePolicy::default().fallback_position(0.0, 0.0),
        );
        assert_eq!(
            proxy.get_location().unwrap_err().kind(),
            ProxyErrorKind::Security
        );
    }

    #[test]
    fn policy_is_tunable_through_the_property_plane() {
        let proxy = resilient(
            Flaky::new(4, ProxyErrorKind::Unavailable),
            ResiliencePolicy::default().max_attempts(1),
        );
        proxy
            .set_property("retry.max_attempts", PropertyValue::Int(5))
            .unwrap();
        proxy
            .set_property("retry.backoff_ms", PropertyValue::str("50"))
            .unwrap();
        proxy.get_location().expect("5 attempts now allowed");
        assert_eq!(proxy.engine.policy().max_attempts, 5);
        assert_eq!(proxy.engine.policy().backoff_base_ms, 50);
        let err = proxy
            .set_property("circuit.threshold", PropertyValue::str("zero"))
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::BadPropertyValue);
    }

    #[test]
    fn unknown_properties_are_forwarded_to_the_inner_proxy() {
        let proxy = resilient(
            Flaky::new(0, ProxyErrorKind::Io),
            ResiliencePolicy::default(),
        );
        // Flaky's set_property accepts everything — the decorator must
        // not swallow non-resilience keys.
        proxy
            .set_property("provider", PropertyValue::str("gps"))
            .unwrap();
    }
}
