//! The uniform proxy error model.
//!
//! Each platform throws its own exception set (Android's
//! `SecurityException`/`RemoteException`/…, S60's `LocationException`/…).
//! The M-Proxy model maps them onto one platform-neutral error type while
//! preserving the underlying platform exception's class name for
//! debugging — "proxy bindings can be designed to efficiently handle
//! exceptions on different platforms" (paper §5, Complexity).

use std::fmt;

use mobivine_android::AndroidException;
use mobivine_s60::S60Exception;
use mobivine_webview::{BridgeError, ErrorCode};

/// Platform-neutral error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProxyErrorKind {
    /// Permission denied (any platform's security exception).
    Security,
    /// A malformed argument or property value.
    IllegalArgument,
    /// The capability is temporarily unavailable (no GPS fix, radio
    /// off).
    Unavailable,
    /// An I/O failure (network transport, messaging radio).
    Io,
    /// The interface has no binding on the running platform (e.g. Call
    /// on S60).
    UnsupportedOnPlatform,
    /// `setProperty` with a key the binding plane does not declare.
    UnknownProperty,
    /// `setProperty` with a value outside the property's allowed set,
    /// or of the wrong type.
    BadPropertyValue,
    /// A required property (e.g. Android's `context`) was never set.
    MissingProperty,
    /// Denied by an enrichment policy module (§3.3).
    PolicyDenied,
    /// Rejected fast by an open resilience circuit breaker without
    /// reaching the platform binding.
    CircuitOpen,
    /// The resilience retry budget was exhausted before the call
    /// succeeded.
    DeadlineExceeded,
    /// Shed by the overload-protection layer (admission controller or
    /// bulkhead) before reaching the platform binding. Carries a
    /// deterministic retry hint via [`ProxyError::retry_after_ms`].
    Overloaded,
    /// A mutating call whose idempotency key is already journaled as
    /// committed. The durability layer answers from the journal without
    /// re-running the effect — an observed no-op on at-least-once
    /// re-delivery, counted (never surfaced as a failure to callers).
    AlreadyApplied,
}

impl ProxyErrorKind {
    /// Whether a retry of the same call can plausibly succeed — the
    /// transient classes of the paper's error model (`Unavailable`,
    /// `Io`). Permission, argument, and platform-support failures are
    /// permanent; resilience layers retry only when this returns true.
    pub fn is_retryable(self) -> bool {
        matches!(self, ProxyErrorKind::Unavailable | ProxyErrorKind::Io)
    }

    /// Whether this error was manufactured by the overload-protection
    /// layer shedding the call before it reached the platform binding.
    /// Shed calls carry a retry hint ([`ProxyError::retry_after`]) and
    /// must not spend resilience retry budget.
    pub fn is_load_shed(self) -> bool {
        matches!(self, ProxyErrorKind::Overloaded)
    }

    /// Whether this "error" records a duplicate-suppressed mutation —
    /// the journal already holds a committed record for the call's
    /// idempotency key, so the effect was applied exactly once by an
    /// earlier delivery. Retrying is harmless and pointless.
    pub fn is_duplicate(self) -> bool {
        matches!(self, ProxyErrorKind::AlreadyApplied)
    }
}

/// The uniform error returned by every proxy API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyError {
    kind: ProxyErrorKind,
    message: String,
    /// The originating platform exception class, when the error wraps
    /// one (`java.lang.SecurityException`, …).
    platform_exception: Option<String>,
    /// For [`ProxyErrorKind::Overloaded`]: how long the shedding layer
    /// suggests the caller waits before trying again, virtual ms.
    retry_after_ms: Option<u64>,
}

impl ProxyError {
    /// Creates an error with no platform-exception provenance.
    pub fn new(kind: ProxyErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            platform_exception: None,
            retry_after_ms: None,
        }
    }

    /// The error category.
    pub fn kind(&self) -> ProxyErrorKind {
        self.kind
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The platform exception class this error wraps, if any.
    pub fn platform_exception(&self) -> Option<&str> {
        self.platform_exception.as_deref()
    }

    /// The stable numeric error code used on the JavaScript bridge
    /// (paper §4.1: "an error code is defined for each possible
    /// exception").
    pub fn error_code(&self) -> i32 {
        match self.kind {
            ProxyErrorKind::Security => 1,
            ProxyErrorKind::IllegalArgument => 2,
            ProxyErrorKind::Unavailable => 3,
            ProxyErrorKind::Io => 4,
            ProxyErrorKind::UnsupportedOnPlatform => 5,
            ProxyErrorKind::UnknownProperty => 6,
            ProxyErrorKind::BadPropertyValue => 7,
            ProxyErrorKind::MissingProperty => 8,
            ProxyErrorKind::PolicyDenied => 9,
            ProxyErrorKind::CircuitOpen => 10,
            ProxyErrorKind::DeadlineExceeded => 11,
            ProxyErrorKind::Overloaded => 12,
            ProxyErrorKind::AlreadyApplied => 13,
        }
    }

    /// The shedding layer's retry hint, when this error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.retry_after_ms
    }

    /// The retry hint as a [`std::time::Duration`] — the typed twin of
    /// [`retry_after_ms`](Self::retry_after_ms) for callers that feed
    /// the hint into duration arithmetic.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        self.retry_after_ms.map(std::time::Duration::from_millis)
    }

    /// Attaches a retry hint (the `Retry-After` analogue of the typed
    /// error channel). Set by the overload layer on every shed.
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attaches the originating platform exception class
    /// (`java.lang.SecurityException`, …). Decorators that re-wrap an
    /// error use this to keep provenance flowing through the chain.
    pub fn with_platform(mut self, class: &str) -> Self {
        self.platform_exception = Some(class.to_owned());
        self
    }
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)?;
        if let Some(p) = &self.platform_exception {
            write!(f, " (platform exception {p})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ProxyError {}

impl From<AndroidException> for ProxyError {
    fn from(e: AndroidException) -> Self {
        let kind = match &e {
            AndroidException::Security(_) => ProxyErrorKind::Security,
            AndroidException::IllegalArgument(_) => ProxyErrorKind::IllegalArgument,
            AndroidException::Remote(_) => ProxyErrorKind::Unavailable,
            AndroidException::Io(_) => ProxyErrorKind::Io,
            AndroidException::ApiRemoved { .. } => ProxyErrorKind::UnsupportedOnPlatform,
        };
        ProxyError::new(kind, e.to_string()).with_platform(e.java_class())
    }
}

impl From<S60Exception> for ProxyError {
    fn from(e: S60Exception) -> Self {
        let kind = match &e {
            S60Exception::Security(_) => ProxyErrorKind::Security,
            S60Exception::IllegalArgument(_) | S60Exception::NullPointer(_) => {
                ProxyErrorKind::IllegalArgument
            }
            S60Exception::Location(_) => ProxyErrorKind::Unavailable,
            S60Exception::Io(_) | S60Exception::Interrupted(_) => ProxyErrorKind::Io,
        };
        ProxyError::new(kind, e.to_string()).with_platform(e.java_class())
    }
}

impl From<BridgeError> for ProxyError {
    fn from(e: BridgeError) -> Self {
        let kind = match e.code {
            ErrorCode::Security => ProxyErrorKind::Security,
            ErrorCode::IllegalArgument => ProxyErrorKind::IllegalArgument,
            ErrorCode::Remote => ProxyErrorKind::Unavailable,
            ErrorCode::Io => ProxyErrorKind::Io,
            ErrorCode::ApiRemoved => ProxyErrorKind::UnsupportedOnPlatform,
            ErrorCode::Bridge => ProxyErrorKind::IllegalArgument,
            ErrorCode::Deadline => ProxyErrorKind::DeadlineExceeded,
            ErrorCode::Overloaded => ProxyErrorKind::Overloaded,
        };
        let class = e.code.canonical_java_class();
        let err = ProxyError::new(kind, e.message);
        match class {
            Some(class) => err.with_platform(class),
            None => err,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::SdkVersion;

    #[test]
    fn android_exceptions_map_with_provenance() {
        let err: ProxyError = AndroidException::Security("no SEND_SMS".into()).into();
        assert_eq!(err.kind(), ProxyErrorKind::Security);
        assert_eq!(
            err.platform_exception(),
            Some("java.lang.SecurityException")
        );
        assert!(err.message().contains("SEND_SMS"));
    }

    #[test]
    fn s60_location_exception_is_unavailable() {
        let err: ProxyError = S60Exception::Location("no fix".into()).into();
        assert_eq!(err.kind(), ProxyErrorKind::Unavailable);
        assert_eq!(
            err.platform_exception(),
            Some("javax.microedition.location.LocationException")
        );
    }

    #[test]
    fn api_removed_maps_to_unsupported() {
        let err: ProxyError = AndroidException::ApiRemoved {
            api: "x",
            version: SdkVersion::V1_0,
        }
        .into();
        assert_eq!(err.kind(), ProxyErrorKind::UnsupportedOnPlatform);
    }

    #[test]
    fn bridge_errors_map_by_code() {
        let err: ProxyError = BridgeError::bridge("bad arg").into();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
        assert_eq!(err.platform_exception(), None);
    }

    #[test]
    fn bridge_errors_preserve_platform_provenance() {
        let err: ProxyError = BridgeError {
            code: ErrorCode::Security,
            message: "denied at the bridge".into(),
        }
        .into();
        assert_eq!(err.kind(), ProxyErrorKind::Security);
        assert_eq!(
            err.platform_exception(),
            Some("java.lang.SecurityException")
        );

        let io: ProxyError = BridgeError {
            code: ErrorCode::Io,
            message: "socket reset".into(),
        }
        .into();
        assert_eq!(io.platform_exception(), Some("java.io.IOException"));
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let kinds = [
            ProxyErrorKind::Security,
            ProxyErrorKind::IllegalArgument,
            ProxyErrorKind::Unavailable,
            ProxyErrorKind::Io,
            ProxyErrorKind::UnsupportedOnPlatform,
            ProxyErrorKind::UnknownProperty,
            ProxyErrorKind::BadPropertyValue,
            ProxyErrorKind::MissingProperty,
            ProxyErrorKind::PolicyDenied,
            ProxyErrorKind::CircuitOpen,
            ProxyErrorKind::DeadlineExceeded,
            ProxyErrorKind::Overloaded,
            ProxyErrorKind::AlreadyApplied,
        ];
        let mut codes: Vec<i32> = kinds
            .iter()
            .map(|k| ProxyError::new(*k, "x").error_code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
        assert_eq!(
            ProxyError::new(ProxyErrorKind::Security, "x").error_code(),
            1
        );
    }

    #[test]
    fn overloaded_carries_a_retry_hint() {
        let err = ProxyError::new(ProxyErrorKind::Overloaded, "shed").with_retry_after(250);
        assert_eq!(err.retry_after_ms(), Some(250));
        assert_eq!(
            err.retry_after(),
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(err.error_code(), 12);
        let plain = ProxyError::new(ProxyErrorKind::Io, "transport");
        assert_eq!(plain.retry_after_ms(), None);
        assert_eq!(plain.retry_after(), None);
    }

    #[test]
    fn kind_accessors_partition_the_error_model() {
        let retryable = [ProxyErrorKind::Unavailable, ProxyErrorKind::Io];
        let permanent = [
            ProxyErrorKind::Security,
            ProxyErrorKind::IllegalArgument,
            ProxyErrorKind::UnsupportedOnPlatform,
            ProxyErrorKind::UnknownProperty,
            ProxyErrorKind::BadPropertyValue,
            ProxyErrorKind::MissingProperty,
            ProxyErrorKind::PolicyDenied,
            ProxyErrorKind::CircuitOpen,
            ProxyErrorKind::DeadlineExceeded,
            ProxyErrorKind::Overloaded,
            ProxyErrorKind::AlreadyApplied,
        ];
        for kind in retryable {
            assert!(kind.is_retryable(), "{kind:?} retries");
            assert!(!kind.is_load_shed());
        }
        for kind in permanent {
            assert!(!kind.is_retryable(), "{kind:?} never retries");
        }
        assert!(ProxyErrorKind::Overloaded.is_load_shed());
        assert!(!ProxyErrorKind::DeadlineExceeded.is_load_shed());
        assert!(ProxyErrorKind::AlreadyApplied.is_duplicate());
        assert!(!ProxyErrorKind::Io.is_duplicate());
        assert!(!ProxyErrorKind::AlreadyApplied.is_retryable());
        assert!(!ProxyErrorKind::AlreadyApplied.is_load_shed());
    }

    #[test]
    fn bridge_deadline_and_overload_codes_map_back_to_their_kinds() {
        let deadline: ProxyError = BridgeError {
            code: ErrorCode::Deadline,
            message: "budget exhausted at the bridge".into(),
        }
        .into();
        assert_eq!(deadline.kind(), ProxyErrorKind::DeadlineExceeded);
        assert_eq!(
            deadline.platform_exception(),
            Some("java.util.concurrent.TimeoutException")
        );
        let shed: ProxyError = BridgeError {
            code: ErrorCode::Overloaded,
            message: "rejected".into(),
        }
        .into();
        assert_eq!(shed.kind(), ProxyErrorKind::Overloaded);
    }

    #[test]
    fn display_includes_provenance() {
        let err: ProxyError = S60Exception::Security("denied".into()).into();
        let s = err.to_string();
        assert!(s.contains("Security"));
        assert!(s.contains("java.lang.SecurityException"));
    }
}
