//! Android binding modules — the implementation plane for the Android
//! platform.
//!
//! Two pieces of de-fragmentation work happen here (paper §4.1):
//!
//! 1. **Platform-specific attributes as properties** — the application
//!    `context` and location `provider` arrive via `setProperty`, never
//!    through the common API.
//! 2. **Callback adaptation** — `addProximityAlert` hides Android's
//!    `Intent`/`IntentReceiver` machinery behind the common
//!    `ProximityListener`: the proxy creates the intent, registers the
//!    receiver, and invokes `proximityEvent` when alerts arrive, so "the
//!    use of Intent and IntentReceiver is hidden from the application
//!    developer".
//!
//! The module also absorbs platform evolution (§5, Maintenance): on
//! SDK 1.0 the proxy transparently switches to the `PendingIntent`
//! overload of `addProximityAlert` — applications need no change.

mod call;
mod http;
mod location;
mod pim;
mod sms;

pub use call::AndroidCallProxy;
pub use http::AndroidHttpProxy;
pub use location::AndroidLocationProxy;
pub use pim::{AndroidCalendarProxy, AndroidContactsProxy};
pub use sms::AndroidSmsProxy;
