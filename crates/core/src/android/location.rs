//! The Android Location proxy binding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_android::context::Context;
use mobivine_android::intent::{Intent, IntentFilter, IntentReceiver};
use mobivine_android::location::{Registration, KEY_PROXIMITY_ENTERING};
use mobivine_android::pending_intent::PendingIntent;

use crate::api::{LocationProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{Location, ProximityEvent, SharedProximityListener};

/// Base action string for the intents the proxy creates internally —
/// the constant from the paper's Fig. 2(a).
pub const PROXIMITY_ALERT_ACTION: &str = "com.ibm.proxies.android.intent.action.PROXIMITY_ALERT";

static NEXT_ALERT_SEQ: AtomicU64 = AtomicU64::new(0);

struct AlertRecord {
    listener: SharedProximityListener,
    registration: Registration,
    receiver_handle: mobivine_android::context::ReceiverHandle,
    action: String,
}

/// The Android binding of the uniform [`LocationProxy`]
/// (`com.ibm.proxies.android.location.LocationProxyImpl` in the
/// descriptor).
pub struct AndroidLocationProxy {
    properties: PropertyBag,
    alerts: Mutex<Vec<AlertRecord>>,
}

impl Default for AndroidLocationProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidLocationProxy {
    /// Creates an unconfigured proxy; set the `context` property before
    /// invoking any interface (Fig. 8(a):
    /// `loc.setProperty("context", this)`).
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::location()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android location binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
            alerts: Mutex::new(Vec::new()),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }

    fn provider(&self) -> String {
        self.properties
            .get_str("provider")
            .unwrap_or_else(|| "gps".to_owned())
    }

    /// Borrowed-provider variant for the per-call path: no clone of the
    /// property value, no `to_owned` of the default.
    fn with_provider<T>(&self, f: impl FnOnce(&str) -> T) -> T {
        self.properties
            .with_str("provider", |p| f(p.unwrap_or("gps")))
    }
}

/// Adapts broadcast intents to the common `ProximityListener` — the
/// `ProximityIntentReceiver` role of Fig. 2(a), but inside the proxy.
struct AdapterReceiver {
    action: String,
    listener: SharedProximityListener,
    ref_latitude: f64,
    ref_longitude: f64,
    ref_altitude: f64,
    provider: String,
}

impl IntentReceiver for AdapterReceiver {
    fn on_receive_intent(&self, ctxt: &Context, intent: &Intent) {
        if intent.action() != self.action {
            return;
        }
        let entering = intent.get_boolean_extra(KEY_PROXIMITY_ENTERING, false);
        // As in the paper's receiver: fetch the current location from
        // the LocationManager to hand to the business logic.
        let current_location = ctxt
            .location_manager()
            .get_current_location(&self.provider)
            .map(|l| android_to_common(&l))
            .unwrap_or_default();
        self.listener.proximity_event(&ProximityEvent {
            ref_latitude: self.ref_latitude,
            ref_longitude: self.ref_longitude,
            ref_altitude: self.ref_altitude,
            current_location,
            entering,
        });
    }
}

fn android_to_common(l: &mobivine_android::location::Location) -> Location {
    Location {
        latitude: l.latitude(),
        longitude: l.longitude(),
        altitude: l.altitude(),
        accuracy_m: l.accuracy() as f64,
        timestamp_ms: l.time(),
        speed_mps: l.speed() as f64,
        course_deg: l.bearing() as f64,
    }
}

impl ProxyBase for AndroidLocationProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl LocationProxy for AndroidLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        let ctx = self.context()?;
        let action = format!(
            "{PROXIMITY_ALERT_ACTION}.{}",
            NEXT_ALERT_SEQ.fetch_add(1, Ordering::SeqCst)
        );
        let provider = self.provider();
        let receiver = Arc::new(AdapterReceiver {
            action: action.clone(),
            listener: Arc::clone(&listener),
            ref_latitude: latitude,
            ref_longitude: longitude,
            ref_altitude: altitude,
            provider,
        });
        let receiver_handle = ctx.register_receiver(receiver, IntentFilter::new(&action));
        let expiration_ms = if timer_s < 0 { -1 } else { timer_s * 1000 };
        let intent = Intent::new(&action);
        let lm = ctx.location_manager();
        // Absorb the m5-rc15 → 1.0 API evolution inside the binding: the
        // proxy picks whichever overload the running SDK provides.
        let result = if ctx.version().has_intent_proximity_api() {
            lm.add_proximity_alert(latitude, longitude, radius as f32, expiration_ms, intent)
        } else {
            lm.add_proximity_alert_pending(
                latitude,
                longitude,
                radius as f32,
                expiration_ms,
                PendingIntent::get_broadcast(intent),
            )
        };
        match result {
            Ok(registration) => {
                self.alerts.lock().push(AlertRecord {
                    listener,
                    registration,
                    receiver_handle,
                    action,
                });
                Ok(())
            }
            Err(e) => {
                ctx.unregister_receiver(receiver_handle);
                Err(e.into())
            }
        }
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        let ctx = self.context()?;
        let mut alerts = self.alerts.lock();
        let before = alerts.len();
        alerts.retain(|record| {
            if Arc::ptr_eq(&record.listener, listener) {
                ctx.location_manager()
                    .remove_proximity_alert(&Intent::new(&record.action));
                record.registration.cancel();
                ctx.unregister_receiver(record.receiver_handle);
                false
            } else {
                true
            }
        });
        Ok(alerts.len() != before)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        let ctx = self.context()?;
        let location =
            self.with_provider(|provider| ctx.location_manager().get_current_location(provider))?;
        Ok(android_to_common(&location))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::movement::MovementModel;
    use mobivine_device::{Device, GeoPoint};
    use std::sync::Mutex as StdMutex;

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    fn moving_platform(version: SdkVersion) -> AndroidPlatform {
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .build();
        device.gps().set_noise_enabled(false);
        AndroidPlatform::new(device, version)
    }

    fn configured_proxy(platform: &AndroidPlatform) -> AndroidLocationProxy {
        let proxy = AndroidLocationProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        proxy
            .set_property("provider", PropertyValue::str("gps"))
            .unwrap();
        proxy
    }

    fn collect_events() -> (SharedProximityListener, Arc<StdMutex<Vec<ProximityEvent>>>) {
        let events = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(*e);
        });
        (listener, events)
    }

    #[test]
    fn get_location_requires_context_property() {
        let proxy = AndroidLocationProxy::new();
        let err = proxy.get_location().unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::MissingProperty);
    }

    #[test]
    fn uniform_proximity_semantics_on_m5() {
        let platform = moving_platform(SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2, "enter then exit");
        assert!(events[0].entering);
        assert!(!events[1].entering);
        assert_eq!(events[0].ref_latitude, HOME.latitude);
        // The callback carries a usable current location.
        assert!(events[0].current_location.timestamp_ms > 0);
    }

    #[test]
    fn same_proxy_code_works_on_sdk_1_0() {
        // The maintenance claim: identical application-side calls, the
        // proxy absorbs the PendingIntent change internally.
        let platform = moving_platform(SdkVersion::V1_0);
        let proxy = configured_proxy(&platform);
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        assert_eq!(events.lock().unwrap().len(), 2);
    }

    #[test]
    fn timer_expires_registration() {
        let platform = moving_platform(SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let (listener, events) = collect_events();
        // Region entered at ~40 s but the alert expires after 10 s.
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, 10, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn remove_by_listener_identity() {
        let platform = moving_platform(SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .unwrap();
        assert!(proxy.remove_proximity_alert(&listener).unwrap());
        assert!(!proxy.remove_proximity_alert(&listener).unwrap());
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn get_location_returns_common_type() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let loc = proxy.get_location().unwrap();
        assert!((loc.latitude - HOME.latitude).abs() < 1e-9);
        assert!(loc.accuracy_m > 0.0);
    }

    #[test]
    fn network_provider_property_respected() {
        let device = Device::builder().position(HOME).build();
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let gps_acc = proxy.get_location().unwrap().accuracy_m;
        proxy
            .set_property("provider", PropertyValue::str("network"))
            .unwrap();
        let net_acc = proxy.get_location().unwrap().accuracy_m;
        assert!(net_acc > gps_acc);
    }

    #[test]
    fn invalid_provider_value_rejected_at_set_property() {
        let platform = moving_platform(SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let err = proxy
            .set_property("provider", PropertyValue::str("wifi"))
            .unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::BadPropertyValue);
    }

    #[test]
    fn failed_registration_cleans_up_receiver() {
        let platform = moving_platform(SdkVersion::M5Rc15);
        let proxy = configured_proxy(&platform);
        let (listener, _) = collect_events();
        // Invalid radius → platform IllegalArgument; the adapter
        // receiver must not leak.
        let err = proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, -5.0, -1, listener)
            .unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::IllegalArgument);
        assert!(proxy.alerts.lock().is_empty());
    }
}
