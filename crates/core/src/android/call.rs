//! The Android Call proxy binding.

use std::sync::Arc;

use mobivine_android::context::Context;
use mobivine_device::call::{CallId, CallState};

use crate::api::{CallProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::CallProgress;

/// The Android binding of the uniform [`CallProxy`] — implemented over
/// the platform's `IPhone`-style interface (`android.telephony.IPhone`
/// in the paper).
pub struct AndroidCallProxy {
    properties: PropertyBag,
}

impl Default for AndroidCallProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidCallProxy {
    /// Creates an unconfigured proxy; set the `context` property before
    /// calling.
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::call()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android call binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }
}

impl ProxyBase for AndroidCallProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl CallProxy for AndroidCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        let ctx = self.context()?;
        let id = ctx.phone().call(number)?;
        Ok(id.value())
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        let ctx = self.context()?;
        let state = ctx
            .phone()
            .call_state(CallId::from_value(call_id))
            .ok_or_else(|| {
                ProxyError::new(
                    crate::error::ProxyErrorKind::IllegalArgument,
                    format!("unknown call id {call_id}"),
                )
            })?;
        Ok(match state {
            CallState::Dialing | CallState::Ringing => CallProgress::Connecting,
            CallState::Active | CallState::Held => CallProgress::Connected,
            CallState::Disconnected(_) => CallProgress::Ended,
        })
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        let ctx = self.context()?;
        ctx.phone().end_call(CallId::from_value(call_id))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::call::CalleeProfile;
    use mobivine_device::Device;

    fn configured() -> (AndroidPlatform, AndroidCallProxy) {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        let proxy = AndroidCallProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        (platform, proxy)
    }

    #[test]
    fn call_lifecycle_through_uniform_api() {
        let (platform, proxy) = configured();
        let id = proxy.make_a_call("+91-sup").unwrap();
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Connecting);
        platform.device().advance_ms(10_000);
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Connected);
        proxy.end_call(id).unwrap();
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Ended);
    }

    #[test]
    fn busy_callee_ends() {
        let (platform, proxy) = configured();
        platform
            .device()
            .call_switch()
            .set_callee_profile("+busy", CalleeProfile::Busy);
        let id = proxy.make_a_call("+busy").unwrap();
        platform.device().advance_ms(10_000);
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Ended);
    }

    #[test]
    fn unknown_call_id_is_illegal_argument() {
        let (_platform, proxy) = configured();
        let err = proxy.call_progress(999).unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn double_end_is_illegal_argument() {
        let (platform, proxy) = configured();
        let id = proxy.make_a_call("+1").unwrap();
        platform.device().advance_ms(10_000);
        proxy.end_call(id).unwrap();
        assert!(proxy.end_call(id).is_err());
    }

    #[test]
    fn retries_property_is_declared() {
        let (_platform, proxy) = configured();
        // The catalog declares `retries` (used by the enrichment
        // decorator); setting it must validate.
        proxy
            .set_property("retries", PropertyValue::Int(3))
            .unwrap();
    }
}
