//! The Android HTTP proxy binding.

use std::sync::Arc;

use mobivine_android::context::Context;
use mobivine_android::http::HttpUriRequest;
use mobivine_device::net::Method;

use crate::api::{HttpProxy, ProxyBase};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::{PropertyBag, PropertyValue};
use crate::types::HttpResult;

/// The Android binding of the uniform [`HttpProxy`] — over the
/// Apache-style `org.apache.http` client.
pub struct AndroidHttpProxy {
    properties: PropertyBag,
}

impl Default for AndroidHttpProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidHttpProxy {
    /// Creates an unconfigured proxy; set the `context` property before
    /// requesting.
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::http()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android http binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }
}

impl ProxyBase for AndroidHttpProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl HttpProxy for AndroidHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        let ctx = self.context()?;
        let parsed: Method = method.parse().map_err(|_| {
            ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                format!("unsupported http method '{method}'"),
            )
        })?;
        let request = match parsed {
            Method::Get | Method::Head | Method::Delete => HttpUriRequest::get(url)?,
            Method::Post | Method::Put => HttpUriRequest::post(url, body.to_vec())?,
        };
        let response = ctx.http_client().execute(&request)?;
        Ok(HttpResult {
            status: response.status,
            headers: response.headers,
            body: response.body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::net::HttpResponse;
    use mobivine_device::Device;

    fn configured() -> (AndroidPlatform, AndroidHttpProxy) {
        let device = Device::builder().build();
        device
            .network()
            .register_route("wfm.example", Method::Get, "/tasks", |_| {
                HttpResponse::ok("tasks!")
            });
        device
            .network()
            .register_route("wfm.example", Method::Post, "/log", |req| {
                HttpResponse::ok(format!("{}", req.body.len()))
            });
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let proxy = AndroidHttpProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        (platform, proxy)
    }

    #[test]
    fn get_and_post_round_trips() {
        let (_platform, proxy) = configured();
        let get = proxy
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap();
        assert!(get.is_success());
        assert_eq!(get.body_text(), "tasks!");
        let post = proxy
            .request("POST", "http://wfm.example/log", b"12345")
            .unwrap();
        assert_eq!(post.body_text(), "5");
    }

    #[test]
    fn transport_failure_is_io_error() {
        let (_platform, proxy) = configured();
        let err = proxy.request("GET", "http://ghost/", &[]).unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io);
    }

    #[test]
    fn http_error_status_is_a_result() {
        let (_platform, proxy) = configured();
        let resp = proxy
            .request("GET", "http://wfm.example/missing", &[])
            .unwrap();
        assert_eq!(resp.status, 404);
        assert!(!resp.is_success());
    }

    #[test]
    fn bad_method_and_url_are_illegal_arguments() {
        let (_platform, proxy) = configured();
        assert_eq!(
            proxy
                .request("BREW", "http://wfm.example/", &[])
                .unwrap_err()
                .kind(),
            ProxyErrorKind::IllegalArgument
        );
        assert_eq!(
            proxy.request("GET", "not-a-url", &[]).unwrap_err().kind(),
            ProxyErrorKind::IllegalArgument
        );
    }
}
