//! The Android SMS proxy binding.

use std::sync::Arc;

use mobivine_android::context::Context;
use mobivine_android::telephony::SmsResult;

use crate::api::{ProxyBase, SmsProxy};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{DeliveryListener, DeliveryOutcome};

/// The Android binding of the uniform [`SmsProxy`]
/// (`com.ibm.proxies.android.sms.SmsProxyImpl` in the descriptor).
pub struct AndroidSmsProxy {
    properties: PropertyBag,
}

impl Default for AndroidSmsProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidSmsProxy {
    /// Creates an unconfigured proxy; set the `context` property before
    /// sending.
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::sms()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android sms binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }
}

impl ProxyBase for AndroidSmsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl SmsProxy for AndroidSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        let ctx = self.context()?;
        let callback = delivery_listener.map(|listener| {
            Box::new(
                move |id: mobivine_device::sms::MessageId, result: SmsResult| {
                    let outcome = match result {
                        SmsResult::Delivered => DeliveryOutcome::Delivered,
                        SmsResult::GenericFailure => DeliveryOutcome::Failed,
                    };
                    listener.delivery_event(id.value(), outcome);
                },
            ) as mobivine_android::telephony::SmsCallback
        });
        let id = ctx
            .sms_manager()
            .send_text_message(destination, None, text, callback)?;
        Ok(id.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::permissions::PermissionSet;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;
    use std::sync::Mutex as StdMutex;

    fn configured() -> (AndroidPlatform, AndroidSmsProxy) {
        let platform = AndroidPlatform::new(
            Device::builder().msisdn("+91-me").build(),
            SdkVersion::M5Rc15,
        );
        let proxy = AndroidSmsProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        (platform, proxy)
    }

    #[test]
    fn sends_through_the_platform() {
        let (platform, proxy) = configured();
        platform.device().smsc().register_address("+91-sup");
        let id = proxy.send_text_message("+91-sup", "on site", None).unwrap();
        assert!(id > 0);
        platform.device().advance_ms(1_000);
        assert_eq!(platform.device().smsc().inbox("+91-sup")[0].body, "on site");
    }

    #[test]
    fn delivery_listener_receives_uniform_outcome() {
        let (platform, proxy) = configured();
        platform.device().smsc().register_address("+91-sup");
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        proxy
            .send_text_message(
                "+91-sup",
                "ping",
                Some(Arc::new(move |id: u64, outcome: DeliveryOutcome| {
                    sink.lock().unwrap().push((id, outcome));
                })),
            )
            .unwrap();
        platform.device().advance_ms(1_000);
        let outcomes = outcomes.lock().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1, DeliveryOutcome::Delivered);
    }

    #[test]
    fn failure_outcome_for_unknown_recipient() {
        let (platform, proxy) = configured();
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        proxy
            .send_text_message(
                "+nobody",
                "ping",
                Some(Arc::new(move |_id: u64, outcome: DeliveryOutcome| {
                    sink.lock().unwrap().push(outcome);
                })),
            )
            .unwrap();
        platform.device().advance_ms(1_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed]
        );
    }

    #[test]
    fn security_exception_becomes_uniform_error() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let proxy = AndroidSmsProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let err = proxy.send_text_message("+1", "x", None).unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::Security);
        assert_eq!(
            err.platform_exception(),
            Some("java.lang.SecurityException")
        );
    }

    #[test]
    fn missing_context_is_uniform_error() {
        let proxy = AndroidSmsProxy::new();
        let err = proxy.send_text_message("+1", "x", None).unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::MissingProperty);
    }
}
