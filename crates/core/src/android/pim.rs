//! Android PIM proxy bindings (Contacts, Calendar) — the paper's
//! future-work interfaces (§7), implemented here as extension features.

use std::sync::Arc;

use mobivine_android::context::Context;
use mobivine_android::permissions::Permission;

use crate::api::{CalendarProxy, ContactsProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{CalendarRecord, ContactRecord};

/// The Android binding of the uniform [`ContactsProxy`].
pub struct AndroidContactsProxy {
    properties: PropertyBag,
}

impl Default for AndroidContactsProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidContactsProxy {
    /// Creates an unconfigured proxy; set the `context` property first.
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::contacts()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android contacts binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }
}

impl ProxyBase for AndroidContactsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl ContactsProxy for AndroidContactsProxy {
    fn find_contacts(&self, query: &str) -> Result<Vec<ContactRecord>, ProxyError> {
        let ctx = self.context()?;
        ctx.enforce_permission(Permission::ReadContacts)?;
        Ok(ctx
            .device()
            .contacts()
            .find_by_name(query)
            .into_iter()
            .map(|c| ContactRecord {
                name: c.name,
                numbers: c.numbers,
            })
            .collect())
    }
}

/// The Android binding of the uniform [`CalendarProxy`].
pub struct AndroidCalendarProxy {
    properties: PropertyBag,
}

impl Default for AndroidCalendarProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl AndroidCalendarProxy {
    /// Creates an unconfigured proxy; set the `context` property first.
    pub fn new() -> Self {
        let binding = mobivine_proxydl::catalog::calendar()
            .binding_for(&mobivine_proxydl::PlatformId::Android)
            .expect("catalog declares an Android calendar binding")
            .clone();
        Self {
            properties: PropertyBag::new(binding),
        }
    }

    fn context(&self) -> Result<Arc<Context>, ProxyError> {
        self.properties.require_opaque::<Context>("context")
    }
}

impl ProxyBase for AndroidCalendarProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl CalendarProxy for AndroidCalendarProxy {
    fn entries_between(&self, from_ms: u64, to_ms: u64) -> Result<Vec<CalendarRecord>, ProxyError> {
        let ctx = self.context()?;
        ctx.enforce_permission(Permission::ReadCalendar)?;
        Ok(ctx
            .device()
            .calendar()
            .entries_between(from_ms, to_ms)
            .into_iter()
            .map(|e| CalendarRecord {
                title: e.title,
                start_ms: e.start_ms,
                end_ms: e.end_ms,
                location: e.location,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::permissions::PermissionSet;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;

    fn platform() -> AndroidPlatform {
        let device = Device::builder().build();
        device
            .contacts()
            .add("Region Supervisor", &["+91-100"], &[]);
        device.contacts().add("Dispatcher", &["+91-200"], &[]);
        device
            .calendar()
            .add("Site visit", 1_000, 2_000, "Depot")
            .unwrap();
        AndroidPlatform::new(device, SdkVersion::M5Rc15)
    }

    #[test]
    fn contacts_search() {
        let platform = platform();
        let proxy = AndroidContactsProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let found = proxy.find_contacts("supervisor").unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].numbers, vec!["+91-100"]);
    }

    #[test]
    fn calendar_query() {
        let platform = platform();
        let proxy = AndroidCalendarProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let entries = proxy.entries_between(0, 5_000).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].title, "Site visit");
        assert!(proxy.entries_between(3_000, 5_000).unwrap().is_empty());
    }

    #[test]
    fn pim_permissions_enforced() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let contacts = AndroidContactsProxy::new();
        contacts
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        assert_eq!(
            contacts.find_contacts("x").unwrap_err().kind(),
            crate::error::ProxyErrorKind::Security
        );
        let calendar = AndroidCalendarProxy::new();
        calendar
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        assert_eq!(
            calendar.entries_between(0, 1).unwrap_err().kind(),
            crate::error::ProxyErrorKind::Security
        );
    }
}
