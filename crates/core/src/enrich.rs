//! Proxy enrichment (paper §3.3).
//!
//! "A proxy can be enriched by adding extra functionality on top of the
//! native one": unit conversion for location output, retry coordination
//! for calls, and security/policy modules providing "a layer of trust,
//! authentication and access control". Enrichments are decorators over
//! the uniform traits, so they compose with any platform binding.

use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;

use crate::api::{CallProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{AngleUnit, CallProgress, DeliveryListener, Location, SharedProximityListener};

/// Location enrichment: output in configurable angle units.
pub struct UnitLocationProxy {
    inner: Arc<dyn LocationProxy>,
    unit: AngleUnit,
}

impl UnitLocationProxy {
    /// Wraps `inner`, emitting coordinates in `unit` from
    /// [`UnitLocationProxy::get_coordinates`].
    pub fn new(inner: Arc<dyn LocationProxy>, unit: AngleUnit) -> Self {
        Self { inner, unit }
    }

    /// The enriched accessor: `(latitude, longitude)` in the configured
    /// unit.
    ///
    /// # Errors
    ///
    /// Propagates the underlying proxy's errors.
    pub fn get_coordinates(&self) -> Result<(f64, f64), ProxyError> {
        let location = self.inner.get_location()?;
        Ok(location.in_unit(self.unit))
    }
}

impl ProxyBase for UnitLocationProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.inner.set_property(key, value)
    }
}

impl LocationProxy for UnitLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.inner
            .add_proximity_alert(latitude, longitude, altitude, radius, timer_s, listener)
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        self.inner.remove_proximity_alert(listener)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        self.inner.get_location()
    }
}

/// Call enrichment: "proxy for invoking 'Call' can provide the utility
/// for coordinating the number of retries in case the callee is
/// unreachable" (§3.3).
pub struct RetryingCallProxy {
    inner: Arc<dyn CallProxy>,
    device: Device,
    max_retries: u32,
    /// How long to wait (virtual ms) for a call to settle per attempt.
    settle_ms: u64,
}

impl RetryingCallProxy {
    /// Wraps `inner`; redials up to `max_retries` additional times when
    /// a call ends without connecting. The decorator drives the
    /// device's virtual clock while waiting for each attempt to settle
    /// (it is a *coordinator*, not a pass-through).
    pub fn new(inner: Arc<dyn CallProxy>, device: Device, max_retries: u32) -> Self {
        Self {
            inner,
            device,
            max_retries,
            settle_ms: 45_000,
        }
    }

    /// Overrides the per-attempt settle window.
    pub fn with_settle_ms(mut self, settle_ms: u64) -> Self {
        self.settle_ms = settle_ms;
        self
    }

    /// Dials with retry coordination. Returns
    /// `(call_id, attempts_used, connected)` for the final attempt.
    ///
    /// # Errors
    ///
    /// Propagates the underlying proxy's errors from any attempt.
    pub fn call_with_retries(&self, number: &str) -> Result<(u64, u32, bool), ProxyError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let id = self.inner.make_a_call(number)?;
            // Wait for the attempt to settle (connect or end).
            let deadline = self.device.now_ms() + self.settle_ms;
            loop {
                match self.inner.call_progress(id)? {
                    CallProgress::Connected => return Ok((id, attempts, true)),
                    CallProgress::Ended => break,
                    CallProgress::Connecting => {
                        if self.device.now_ms() >= deadline {
                            let _ = self.inner.end_call(id);
                            break;
                        }
                        self.device.advance_ms(500);
                    }
                }
            }
            if attempts > self.max_retries {
                return Ok((id, attempts, false));
            }
        }
    }
}

impl ProxyBase for RetryingCallProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.inner.set_property(key, value)
    }
}

impl CallProxy for RetryingCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        let (id, _attempts, _connected) = self.call_with_retries(number)?;
        Ok(id)
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        self.inner.call_progress(call_id)
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        self.inner.end_call(call_id)
    }
}

/// A simple access-control policy for the security enrichment.
#[derive(Debug, Default)]
pub struct AccessPolicy {
    denied_interfaces: Mutex<Vec<String>>,
    audit: Mutex<Vec<String>>,
}

impl AccessPolicy {
    /// An allow-everything policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Denies every invocation of `interface` (e.g. `"sms"`).
    pub fn deny(&self, interface: &str) {
        self.denied_interfaces.lock().push(interface.to_owned());
    }

    /// Checks and records an invocation.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyErrorKind::PolicyDenied`] when the interface is
    /// denied.
    pub fn check(&self, interface: &str, operation: &str) -> Result<(), ProxyError> {
        self.audit.lock().push(format!("{interface}.{operation}"));
        if self.denied_interfaces.lock().iter().any(|d| d == interface) {
            return Err(ProxyError::new(
                ProxyErrorKind::PolicyDenied,
                format!("policy denies access to {interface}"),
            ));
        }
        Ok(())
    }

    /// The audit trail of attempted invocations.
    pub fn audit_log(&self) -> Vec<String> {
        self.audit.lock().clone()
    }
}

/// Security/policy enrichment over an SMS proxy.
pub struct PolicySmsProxy {
    inner: Arc<dyn SmsProxy>,
    policy: Arc<AccessPolicy>,
}

impl PolicySmsProxy {
    /// Gates `inner` behind `policy`.
    pub fn new(inner: Arc<dyn SmsProxy>, policy: Arc<AccessPolicy>) -> Self {
        Self { inner, policy }
    }
}

impl ProxyBase for PolicySmsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.inner.set_property(key, value)
    }
}

impl SmsProxy for PolicySmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        self.policy.check("sms", "sendTextMessage")?;
        self.inner
            .send_text_message(destination, text, delivery_listener)
    }
}

/// Security/policy enrichment over a Location proxy.
pub struct PolicyLocationProxy {
    inner: Arc<dyn LocationProxy>,
    policy: Arc<AccessPolicy>,
}

impl PolicyLocationProxy {
    /// Gates `inner` behind `policy`.
    pub fn new(inner: Arc<dyn LocationProxy>, policy: Arc<AccessPolicy>) -> Self {
        Self { inner, policy }
    }
}

impl ProxyBase for PolicyLocationProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.inner.set_property(key, value)
    }
}

impl LocationProxy for PolicyLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.policy.check("location", "addProximityAlert")?;
        self.inner
            .add_proximity_alert(latitude, longitude, altitude, radius, timer_s, listener)
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        self.policy.check("location", "removeProximityAlert")?;
        self.inner.remove_proximity_alert(listener)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        self.policy.check("location", "getLocation")?;
        self.inner.get_location()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::android::{AndroidCallProxy, AndroidLocationProxy, AndroidSmsProxy};
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::call::CalleeProfile;
    use mobivine_device::{Device, GeoPoint};

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    fn android(device: Device) -> AndroidPlatform {
        AndroidPlatform::new(device, SdkVersion::M5Rc15)
    }

    fn location_proxy(platform: &AndroidPlatform) -> Arc<dyn LocationProxy> {
        let proxy = AndroidLocationProxy::new();
        proxy
            .set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        Arc::new(proxy)
    }

    #[test]
    fn unit_enrichment_converts_to_radians() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let platform = android(device);
        let enriched = UnitLocationProxy::new(location_proxy(&platform), AngleUnit::Radians);
        let (lat, lon) = enriched.get_coordinates().unwrap();
        assert!((lat - HOME.latitude.to_radians()).abs() < 1e-9);
        assert!((lon - HOME.longitude.to_radians()).abs() < 1e-9);
        // The trait surface is unchanged.
        let raw = enriched.get_location().unwrap();
        assert!((raw.latitude - HOME.latitude).abs() < 1e-9);
    }

    #[test]
    fn retry_enrichment_redials_unreachable_callee() {
        let device = Device::builder().build();
        device
            .call_switch()
            .set_callee_profile("+flaky", CalleeProfile::Unreachable);
        let platform = android(device.clone());
        let base = AndroidCallProxy::new();
        base.set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let retrying = RetryingCallProxy::new(Arc::new(base), device, 2).with_settle_ms(5_000);
        let (_id, attempts, connected) = retrying.call_with_retries("+flaky").unwrap();
        assert_eq!(attempts, 3, "initial attempt plus two retries");
        assert!(!connected);
    }

    #[test]
    fn retry_enrichment_succeeds_first_time_for_reachable_callee() {
        let device = Device::builder().build();
        let platform = android(device.clone());
        let base = AndroidCallProxy::new();
        base.set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let retrying = RetryingCallProxy::new(Arc::new(base), device, 3).with_settle_ms(10_000);
        let (_id, attempts, connected) = retrying.call_with_retries("+fine").unwrap();
        assert_eq!(attempts, 1);
        assert!(connected);
    }

    #[test]
    fn policy_enrichment_denies_and_audits() {
        let device = Device::builder().msisdn("+me").build();
        device.smsc().register_address("+sup");
        let platform = android(device);
        let base = AndroidSmsProxy::new();
        base.set_property("context", PropertyValue::opaque(platform.new_context()))
            .unwrap();
        let policy = Arc::new(AccessPolicy::new());
        let gated = PolicySmsProxy::new(Arc::new(base), Arc::clone(&policy));
        gated.send_text_message("+sup", "ok", None).unwrap();
        policy.deny("sms");
        let err = gated
            .send_text_message("+sup", "blocked", None)
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::PolicyDenied);
        assert_eq!(
            policy.audit_log(),
            vec!["sms.sendTextMessage", "sms.sendTextMessage"]
        );
    }

    #[test]
    fn policy_enrichment_gates_location() {
        let device = Device::builder().position(HOME).build();
        let platform = android(device);
        let policy = Arc::new(AccessPolicy::new());
        policy.deny("location");
        let gated = PolicyLocationProxy::new(location_proxy(&platform), policy);
        assert_eq!(
            gated.get_location().unwrap_err().kind(),
            ProxyErrorKind::PolicyDenied
        );
    }
}
