//! Overload protection for the M-Proxy call path: deadlines, bulkheads
//! and adaptive load shedding.
//!
//! PR 1's resilience layer defends a *single* call against a flaky
//! binding. This module defends the *stack* against too many calls at
//! once — the ROADMAP's "heavy traffic from millions of users". Three
//! cooperating mechanisms, all driven by the simulated device clock so
//! every run replays bit-identically:
//!
//! * a [`Deadline`] — a cancellation context carried down the call path
//!   (retry → circuit → fallback → binding) through an ambient
//!   per-thread scope ([`with_deadline`]) and across the WebView
//!   JavaScript bridge as a marshalled remaining-budget value. A call
//!   that enters the overload layer with an exhausted budget fails fast
//!   with [`ProxyErrorKind::DeadlineExceeded`] before touching the
//!   binding plane;
//! * a per-proxy [`Bulkhead`] — a semaphore-style concurrency cap with
//!   a bounded wait queue, so one slow capability cannot absorb every
//!   caller thread;
//! * an [`AdmissionController`] — deterministic AIMD on observed call
//!   sojourn time versus a per-proxy target. When calls run hot the
//!   admitted fraction decays multiplicatively; when they run within
//!   target it recovers additively. Rejected calls get a typed
//!   [`ProxyErrorKind::Overloaded`] error carrying `retry_after_ms`,
//!   which the resilience layer treats as non-retryable-here but
//!   fallback-eligible.
//!
//! The Location and HTTP decorators add **graceful degradation tiers**:
//! instead of surfacing every shed, they answer from the last cached
//! fix (coarsened under deep shed pressure) or synthesize an accepted-
//! but-unenriched HTTP response for droppable paths.
//!
//! Knobs are reachable through the ordinary property plane
//! (`bulkhead.max_concurrency`, `shed.target_ms`, …) exactly like the
//! `retry.*` family.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::{ambient, ActiveSpan, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};

use crate::api::{CallProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{CallProgress, DeliveryListener, HttpResult, Location, SharedProximityListener};

/// splitmix64 — the same deterministic mixer the resilience layer uses
/// for jitter, here stepping the admission controller's coin-flip
/// stream. Private copy by design: the two layers' streams must never
/// couple through a shared state cell.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

/// A cancellation context on the simulated clock.
///
/// Carries both its origin (`start_ms`) and its expiry, so layers can
/// compute not just "how much budget is left" but "how long has this
/// call been in flight" — the sojourn time the admission controller
/// observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deadline {
    start_ms: u64,
    expires_at_ms: u64,
}

impl Deadline {
    /// A deadline opened at `now_ms` with `budget_ms` of simulated time.
    pub fn after(now_ms: u64, budget_ms: u64) -> Self {
        Self {
            start_ms: now_ms,
            expires_at_ms: now_ms.saturating_add(budget_ms),
        }
    }

    /// When this deadline was opened.
    pub fn start_ms(&self) -> u64 {
        self.start_ms
    }

    /// The absolute simulated time at which the budget runs out.
    pub fn expires_at_ms(&self) -> u64 {
        self.expires_at_ms
    }

    /// Budget left at `now_ms` (zero once expired).
    pub fn remaining_ms(&self, now_ms: u64) -> u64 {
        self.expires_at_ms.saturating_sub(now_ms)
    }

    /// Whether the budget is gone at `now_ms`.
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms >= self.expires_at_ms
    }

    /// Simulated time this call has already been in flight at `now_ms`
    /// — the queueing + service delay the admission controller feeds
    /// its AIMD loop.
    pub fn sojourn_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.start_ms)
    }

    /// The tighter of two deadlines: keeps the earlier origin (the
    /// outermost caller started the clock) and the earlier expiry.
    #[must_use]
    pub fn tightened_by(&self, other: Deadline) -> Deadline {
        Deadline {
            start_ms: self.start_ms.min(other.start_ms),
            expires_at_ms: self.expires_at_ms.min(other.expires_at_ms),
        }
    }
}

thread_local! {
    /// The ambient deadline stack, mirroring the telemetry ambient span
    /// stack: the innermost `with_deadline` scope is what
    /// [`current_deadline`] sees.
    static DEADLINES: RefCell<Vec<Deadline>> = const { RefCell::new(Vec::new()) };
}

/// Guard popping the ambient deadline on drop (panic-safe).
struct DeadlineScope;

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        DEADLINES.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `deadline` as the ambient cancellation context for the
/// current thread. Scopes nest: an inner scope sees its own deadline,
/// and the outer one is restored when the scope ends — even on panic.
pub fn with_deadline<T>(deadline: Deadline, f: impl FnOnce() -> T) -> T {
    DEADLINES.with(|stack| stack.borrow_mut().push(deadline));
    let _scope = DeadlineScope;
    f()
}

/// The innermost ambient deadline on the current thread, if any scope
/// is open.
pub fn current_deadline() -> Option<Deadline> {
    DEADLINES.with(|stack| stack.borrow().last().copied())
}

// ---------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------

/// Tunable knobs for the overload decorators.
///
/// Every field is also settable at run time through the property plane;
/// the property keys are listed on each builder method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Concurrent calls admitted past the bulkhead
    /// (`bulkhead.max_concurrency`).
    pub max_concurrency: u32,
    /// Callers allowed to wait for a bulkhead slot
    /// (`bulkhead.queue_depth`).
    pub queue_depth: u32,
    /// Simulated wait per queue turn (`bulkhead.queue_wait_ms`).
    pub queue_wait_ms: u64,
    /// Whether the admission controller sheds at all (`shed.enabled`).
    pub shed_enabled: bool,
    /// Sojourn target the AIMD loop steers toward (`shed.target_ms`).
    pub target_ms: u64,
    /// Seed of the deterministic admission coin-flip stream
    /// (`shed.seed`).
    pub shed_seed: u64,
    /// Budget given to calls that arrive without an ambient deadline
    /// (`deadline.default_ms`).
    pub deadline_default_ms: u64,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            max_concurrency: 32,
            queue_depth: 16,
            queue_wait_ms: 25,
            shed_enabled: true,
            target_ms: 256,
            shed_seed: 0x0BAD_CAFE,
            deadline_default_ms: 10_000,
        }
    }
}

impl OverloadPolicy {
    /// Sets the bulkhead concurrency cap (property
    /// `bulkhead.max_concurrency`).
    #[must_use]
    pub fn max_concurrency(mut self, slots: u32) -> Self {
        self.max_concurrency = slots.max(1);
        self
    }

    /// Sets the bulkhead wait-queue depth (property
    /// `bulkhead.queue_depth`).
    #[must_use]
    pub fn queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the simulated wait per queue turn (property
    /// `bulkhead.queue_wait_ms`).
    #[must_use]
    pub fn queue_wait_ms(mut self, ms: u64) -> Self {
        self.queue_wait_ms = ms.max(1);
        self
    }

    /// Turns the admission controller on or off (property
    /// `shed.enabled`).
    #[must_use]
    pub fn shed_enabled(mut self, enabled: bool) -> Self {
        self.shed_enabled = enabled;
        self
    }

    /// Sets the sojourn target (property `shed.target_ms`).
    #[must_use]
    pub fn target_ms(mut self, ms: u64) -> Self {
        self.target_ms = ms.max(1);
        self
    }

    /// Sets the admission coin-flip seed (property `shed.seed`).
    #[must_use]
    pub fn shed_seed(mut self, seed: u64) -> Self {
        self.shed_seed = seed;
        self
    }

    /// Sets the default per-call budget (property `deadline.default_ms`).
    #[must_use]
    pub fn deadline_default_ms(mut self, ms: u64) -> Self {
        self.deadline_default_ms = ms.max(1);
        self
    }
}

// ---------------------------------------------------------------------
// Bulkhead
// ---------------------------------------------------------------------

/// A semaphore-style per-proxy concurrency cap.
///
/// Callers that find every slot taken wait in a bounded queue — each
/// turn advances the *simulated* clock by the configured wait — and are
/// rejected with [`ProxyErrorKind::Overloaded`] once the queue is
/// exhausted too.
pub struct Bulkhead {
    cap: Mutex<u32>,
    in_flight: Arc<Mutex<u32>>,
}

impl Bulkhead {
    /// A bulkhead with `cap` concurrent slots.
    pub fn new(cap: u32) -> Self {
        Self {
            cap: Mutex::new(cap.max(1)),
            in_flight: Arc::new(Mutex::new(0)),
        }
    }

    /// Re-tunes the cap at run time (the property plane). Does not evict
    /// calls already in flight.
    pub fn configure(&self, cap: u32) {
        *self.cap.lock() = cap.max(1);
    }

    /// The configured concurrency cap.
    pub fn cap(&self) -> u32 {
        *self.cap.lock()
    }

    /// Calls currently holding a slot.
    pub fn in_flight(&self) -> u32 {
        *self.in_flight.lock()
    }

    /// Takes a slot immediately if one is free.
    pub fn try_acquire(&self) -> Option<BulkheadPermit> {
        let cap = *self.cap.lock();
        let mut in_flight = self.in_flight.lock();
        if *in_flight < cap {
            *in_flight += 1;
            Some(BulkheadPermit {
                in_flight: Arc::clone(&self.in_flight),
            })
        } else {
            None
        }
    }
}

/// RAII slot handle: the slot frees when the permit drops, even on
/// panic or early return.
pub struct BulkheadPermit {
    in_flight: Arc<Mutex<u32>>,
}

impl Drop for BulkheadPermit {
    fn drop(&mut self) {
        let mut in_flight = self.in_flight.lock();
        *in_flight = in_flight.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------
// Admission controller
// ---------------------------------------------------------------------

/// Fixed-point denominator of the admitted fraction (1024 = admit all).
const ADMIT_SCALE: u64 = 1024;
/// Additive recovery per in-target observation.
const ADMIT_INCREASE: u64 = 16;
/// Floor the multiplicative decrease never drops below, so recovery is
/// always possible once pressure lifts.
const ADMIT_FLOOR: u64 = 64;

/// How hard the stack is currently degrading, derived from the admitted
/// fraction. Decorators use this to choose what to serve under
/// pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeTier {
    /// Normal service: admitted fraction ≥ ⅔.
    Full,
    /// Moderate pressure (⅓ ≤ fraction < ⅔): serve cached answers.
    Reduced,
    /// Heavy pressure (fraction < ⅓): serve cached *and* coarsened.
    Minimal,
}

struct AdmissionState {
    /// Admitted fraction numerator over [`ADMIT_SCALE`].
    rate: u64,
    /// splitmix64 stream state for the admission coin flips.
    rng: u64,
}

/// A deterministic AIMD admission controller.
///
/// Observes each completed call's sojourn time against the policy
/// target: in-target observations recover the admitted fraction
/// additively (+16/1024), over-target observations decay it
/// multiplicatively (×7/8, floored at 64/1024). Admission draws a
/// seeded splitmix64 coin, so the shed pattern replays bit-identically
/// for a given seed and call order.
pub struct AdmissionController {
    state: Mutex<AdmissionState>,
}

impl AdmissionController {
    /// A fully open controller flipping coins from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: Mutex::new(AdmissionState {
                rate: ADMIT_SCALE,
                rng: seed,
            }),
        }
    }

    /// Reseeds the coin-flip stream and reopens the gate (property
    /// `shed.seed`).
    pub fn reseed(&self, seed: u64) {
        let mut state = self.state.lock();
        state.rng = seed;
        state.rate = ADMIT_SCALE;
    }

    /// The admitted fraction numerator (0..=1024).
    pub fn rate(&self) -> u64 {
        self.state.lock().rate
    }

    /// Draws the next admission coin. Deterministic per seed and call
    /// sequence.
    pub fn admit(&self) -> bool {
        let mut state = self.state.lock();
        if state.rate >= ADMIT_SCALE {
            // Fully open: no coin is drawn, so an unloaded proxy's
            // stream position is independent of traffic volume.
            return true;
        }
        let draw = splitmix64(&mut state.rng) % ADMIT_SCALE;
        draw < state.rate
    }

    /// Feeds one completed call's sojourn time into the AIMD loop.
    pub fn observe(&self, sojourn_ms: u64, target_ms: u64) {
        let mut state = self.state.lock();
        if sojourn_ms <= target_ms {
            state.rate = (state.rate + ADMIT_INCREASE).min(ADMIT_SCALE);
        } else {
            state.rate = (state.rate * 7 / 8).max(ADMIT_FLOOR);
        }
    }

    /// The degradation tier the current admitted fraction implies.
    pub fn tier(&self) -> DegradeTier {
        let rate = self.state.lock().rate;
        if rate * 3 >= 2 * ADMIT_SCALE {
            DegradeTier::Full
        } else if rate * 3 >= ADMIT_SCALE {
            DegradeTier::Reduced
        } else {
            DegradeTier::Minimal
        }
    }

    /// The deterministic retry hint attached to shed errors: the more
    /// closed the gate, the longer the suggested wait (up to the
    /// sojourn target).
    pub fn retry_after_ms(&self, target_ms: u64) -> u64 {
        let rate = self.state.lock().rate;
        ((ADMIT_SCALE - rate.min(ADMIT_SCALE)) * target_ms / ADMIT_SCALE).max(1)
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

macro_rules! overload_counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Shared overload counters, updated by the decorators and
        /// snapshotted by observability code.
        ///
        /// A standalone block ([`OverloadMetrics::shared`]) counts
        /// privately; a registry-backed block
        /// ([`OverloadMetrics::on_registry`]) publishes the same
        /// counters as `overload_<name>_total` series.
        #[derive(Debug, Default)]
        pub struct OverloadMetrics {
            $($(#[$doc])* $name: Counter,)*
        }

        /// A point-in-time copy of [`OverloadMetrics`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct OverloadSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl OverloadMetrics {
            /// Copies every counter at once.
            pub fn snapshot(&self) -> OverloadSnapshot {
                OverloadSnapshot {
                    $($name: self.$name.value(),)*
                }
            }

            /// A counter block whose handles live in `registry` under
            /// `overload_<name>_total`.
            pub fn on_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
                Arc::new(Self {
                    $($name: registry.counter(
                        concat!("overload_", stringify!($name), "_total"),
                        &Labels::empty(),
                    ),)*
                })
            }
        }
    };
}

overload_counters! {
    /// Calls the admission controller let through.
    admitted,
    /// Calls shed by the admission controller.
    shed,
    /// Calls rejected after exhausting the bulkhead wait queue.
    bulkhead_rejections,
    /// Queue turns spent waiting for a bulkhead slot.
    bulkhead_waits,
    /// Calls failed fast because their deadline budget was already gone.
    deadline_fail_fast,
    /// Sheds absorbed by a degradation tier (cached/coarse answer).
    degraded,
}

impl OverloadMetrics {
    /// A fresh, shareable counter block (not registry-backed).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn bump(&self, counter: &Counter) {
        counter.inc();
    }

    /// Credits one degraded (cached/coarse) answer. Public so fleet
    /// reporting can fold degradation served outside the engine.
    pub fn note_degraded(&self) {
        self.degraded.inc();
    }
}

impl fmt::Display for OverloadSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted={} shed={} bulkhead_rejections={} bulkhead_waits={} \
             deadline_fail_fast={} degraded={}",
            self.admitted,
            self.shed,
            self.bulkhead_rejections,
            self.bulkhead_waits,
            self.deadline_fail_fast,
            self.degraded,
        )
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

fn int_of(value: &PropertyValue) -> Option<i64> {
    if let Some(i) = value.as_int() {
        return Some(i);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn bool_of(value: &PropertyValue) -> Option<bool> {
    if let Some(b) = value.as_bool() {
        return Some(b);
    }
    if let Some(i) = value.as_int() {
        return Some(i != 0);
    }
    value.as_str().and_then(|s| s.parse().ok())
}

fn bad_value(key: &str, value: &PropertyValue) -> ProxyError {
    ProxyError::new(
        ProxyErrorKind::BadPropertyValue,
        format!("overload property '{key}' cannot take value {value:?}"),
    )
}

/// The deadline/bulkhead/shedding engine shared by the four overload
/// decorators. Sits *outside* the resilience layer, so a shed call
/// never spends retry budget.
pub struct OverloadEngine {
    device: Device,
    policy: Mutex<OverloadPolicy>,
    bulkhead: Bulkhead,
    admission: AdmissionController,
    metrics: Arc<OverloadMetrics>,
}

impl OverloadEngine {
    /// Builds an engine timing waits against `device`'s simulated clock
    /// and reporting into `metrics`.
    pub fn new(device: Device, policy: OverloadPolicy, metrics: Arc<OverloadMetrics>) -> Self {
        let bulkhead = Bulkhead::new(policy.max_concurrency);
        let admission = AdmissionController::new(policy.shed_seed);
        Self {
            device,
            policy: Mutex::new(policy),
            bulkhead,
            admission,
            metrics,
        }
    }

    /// The current policy (a copy).
    pub fn policy(&self) -> OverloadPolicy {
        self.policy.lock().clone()
    }

    /// The engine's counter block.
    pub fn metrics(&self) -> &Arc<OverloadMetrics> {
        &self.metrics
    }

    /// The current degradation tier.
    pub fn tier(&self) -> DegradeTier {
        self.admission.tier()
    }

    /// The bulkhead, for observability and tests.
    pub fn bulkhead(&self) -> &Bulkhead {
        &self.bulkhead
    }

    /// The admission controller, for observability and tests.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The deadline this call runs under: the ambient one when a scope
    /// is open (tightened against the default budget's expiry never —
    /// the ambient caller knows best), else a fresh default-budget
    /// deadline opened now.
    fn resolve_deadline(&self, policy: &OverloadPolicy) -> Deadline {
        current_deadline()
            .unwrap_or_else(|| Deadline::after(self.device.now_ms(), policy.deadline_default_ms))
    }

    /// Runs `call` under deadline fail-fast, admission control and the
    /// bulkhead, recording every decision as a span event when a trace
    /// is ambient and as an `overload_*` counter always.
    pub fn execute<T>(
        &self,
        operation: &str,
        call: &dyn Fn() -> Result<T, ProxyError>,
    ) -> Result<T, ProxyError> {
        let mut span = if ambient::is_active() {
            ambient::child(
                format!("overload:{operation}"),
                Plane::Resilience,
                self.device.now_ms(),
            )
        } else {
            None
        };
        let result = self.execute_inner(operation, call, span.as_mut());
        if let Some(mut s) = span.take() {
            if let Err(e) = &result {
                s.attr("error", crate::telemetry::kind_name(e.kind()));
            }
            s.end(self.device.now_ms());
        }
        result
    }

    fn execute_inner<T>(
        &self,
        operation: &str,
        call: &dyn Fn() -> Result<T, ProxyError>,
        mut span: Option<&mut ActiveSpan>,
    ) -> Result<T, ProxyError> {
        let policy = self.policy();
        let deadline = self.resolve_deadline(&policy);

        // 1. Deadline fail-fast: a call whose budget is already gone
        //    must not touch the binding plane at all.
        let now = self.device.now_ms();
        if deadline.is_expired(now) {
            self.metrics.bump(&self.metrics.deadline_fail_fast);
            if let Some(s) = span.as_deref_mut() {
                s.event("deadline_fail_fast", now);
                s.attr("deadline.cause", "budget exhausted before admission");
            }
            return Err(ProxyError::new(
                ProxyErrorKind::DeadlineExceeded,
                format!(
                    "deadline expired {} ms ago; {operation} rejected before reaching \
                     the binding plane",
                    now.saturating_sub(deadline.expires_at_ms())
                ),
            ));
        }

        // 2. Admission: a deterministic coin weighted by the AIMD gate.
        if policy.shed_enabled && !self.admission.admit() {
            self.metrics.bump(&self.metrics.shed);
            let retry_after = self.admission.retry_after_ms(policy.target_ms);
            if let Some(s) = span.as_deref_mut() {
                s.event("shed", now);
                s.attr("shed.decision", "rejected");
            }
            return Err(ProxyError::new(
                ProxyErrorKind::Overloaded,
                format!(
                    "admission controller shed {operation} (admitted fraction {}/{})",
                    self.admission.rate(),
                    ADMIT_SCALE
                ),
            )
            .with_retry_after(retry_after));
        }
        self.metrics.bump(&self.metrics.admitted);
        if let Some(s) = span.as_deref_mut() {
            s.event("admitted", now);
        }

        // 3. Bulkhead: take a slot, waiting bounded simulated turns.
        let permit = self.acquire_slot(&policy, &deadline, span)?;

        // 4. Run the call with the deadline ambient for the layers
        //    below (retry loop, bindings, the JS bridge).
        let result = with_deadline(deadline, call);
        drop(permit);

        // 5. Feed the AIMD loop with the call's sojourn — how long the
        //    caller has been in flight since the deadline opened, which
        //    under batch arrival includes upstream queueing delay.
        let done = self.device.now_ms();
        self.admission
            .observe(deadline.sojourn_ms(done), policy.target_ms);
        result
    }

    fn acquire_slot(
        &self,
        policy: &OverloadPolicy,
        deadline: &Deadline,
        mut span: Option<&mut ActiveSpan>,
    ) -> Result<BulkheadPermit, ProxyError> {
        let mut waits: u32 = 0;
        loop {
            if let Some(permit) = self.bulkhead.try_acquire() {
                return Ok(permit);
            }
            if waits >= policy.queue_depth {
                self.metrics.bump(&self.metrics.bulkhead_rejections);
                if let Some(s) = span.as_deref_mut() {
                    s.event("bulkhead_rejected", self.device.now_ms());
                }
                return Err(ProxyError::new(
                    ProxyErrorKind::Overloaded,
                    format!(
                        "bulkhead full ({} slots) and wait queue exhausted after {waits} turn(s)",
                        self.bulkhead.cap()
                    ),
                )
                .with_retry_after(policy.queue_wait_ms.max(1)));
            }
            let now = self.device.now_ms();
            if deadline.remaining_ms(now) < policy.queue_wait_ms {
                self.metrics.bump(&self.metrics.deadline_fail_fast);
                if let Some(s) = span.as_deref_mut() {
                    s.event("deadline_fail_fast", now);
                    s.attr(
                        "deadline.cause",
                        "budget too small to queue for a bulkhead slot",
                    );
                }
                return Err(ProxyError::new(
                    ProxyErrorKind::DeadlineExceeded,
                    format!(
                        "deadline budget ({} ms left) cannot cover a {} ms bulkhead queue turn",
                        deadline.remaining_ms(now),
                        policy.queue_wait_ms
                    ),
                ));
            }
            waits += 1;
            self.metrics.bump(&self.metrics.bulkhead_waits);
            if let Some(s) = span.as_deref_mut() {
                s.event("bulkhead_wait", now);
            }
            self.device.advance_ms(policy.queue_wait_ms);
        }
    }

    /// Intercepts the overload property keys; returns `None` for keys
    /// that belong to the wrapped proxy.
    pub fn try_set_policy_property(
        &self,
        key: &str,
        value: &PropertyValue,
    ) -> Option<Result<(), ProxyError>> {
        let mut policy = self.policy.lock();
        let result = match key {
            "bulkhead.max_concurrency" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.max_concurrency = n as u32;
                    self.bulkhead.configure(policy.max_concurrency);
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "bulkhead.queue_depth" => match int_of(value) {
                Some(n) if n >= 0 => {
                    policy.queue_depth = n as u32;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "bulkhead.queue_wait_ms" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.queue_wait_ms = n as u64;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "shed.enabled" => match bool_of(value) {
                Some(enabled) => {
                    policy.shed_enabled = enabled;
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            "shed.target_ms" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.target_ms = n as u64;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            "shed.seed" => match int_of(value) {
                Some(n) => {
                    policy.shed_seed = n as u64;
                    self.admission.reseed(policy.shed_seed);
                    Ok(())
                }
                None => Err(bad_value(key, value)),
            },
            "deadline.default_ms" => match int_of(value) {
                Some(n) if n >= 1 => {
                    policy.deadline_default_ms = n as u64;
                    Ok(())
                }
                _ => Err(bad_value(key, value)),
            },
            _ => return None,
        };
        Some(result)
    }
}

macro_rules! forward_set_property {
    () => {
        fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
            match self.engine.try_set_policy_property(key, &value) {
                Some(result) => result,
                None => self.inner.set_property(key, value),
            }
        }
    };
}

// ---------------------------------------------------------------------
// Decorators
// ---------------------------------------------------------------------

/// [`LocationProxy`] decorator: deadline fail-fast, admission control,
/// bulkhead — plus graceful degradation. A shed `getLocation` is
/// answered from the last cached fix ([`DegradeTier::Reduced`]) or from
/// the cached fix with its accuracy coarsened to at least 500 m
/// ([`DegradeTier::Minimal`]), instead of surfacing the error.
pub struct OverloadLocationProxy {
    inner: Arc<dyn LocationProxy>,
    engine: OverloadEngine,
    last_fix: Mutex<Option<Location>>,
}

/// Stated inaccuracy of a coarsened (Minimal-tier) degraded fix.
const COARSE_ACCURACY_M: f64 = 500.0;

impl OverloadLocationProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn LocationProxy>,
        device: Device,
        policy: OverloadPolicy,
        metrics: Arc<OverloadMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: OverloadEngine::new(device, policy, metrics),
            last_fix: Mutex::new(None),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &OverloadEngine {
        &self.engine
    }

    /// Absorbs a shed into a degraded answer when a cached fix exists:
    /// Reduced serves it as-is, Minimal coarsens the stated accuracy.
    fn degrade(&self, shed: ProxyError) -> Result<Location, ProxyError> {
        if !shed.kind().is_load_shed() {
            return Err(shed);
        }
        let cached = *self.last_fix.lock();
        match cached {
            Some(mut fix) => {
                if self.engine.tier() == DegradeTier::Minimal {
                    fix.accuracy_m = fix.accuracy_m.max(COARSE_ACCURACY_M);
                }
                self.engine.metrics.note_degraded();
                Ok(fix)
            }
            None => Err(shed),
        }
    }
}

impl ProxyBase for OverloadLocationProxy {
    forward_set_property!();
}

impl LocationProxy for OverloadLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.engine.execute("addProximityAlert", &|| {
            self.inner.add_proximity_alert(
                latitude,
                longitude,
                altitude,
                radius,
                timer_s,
                Arc::clone(&listener),
            )
        })
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        // Local bookkeeping — never gated.
        self.inner.remove_proximity_alert(listener)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        match self
            .engine
            .execute("getLocation", &|| self.inner.get_location())
        {
            Ok(fix) => {
                *self.last_fix.lock() = Some(fix);
                Ok(fix)
            }
            Err(e) => self.degrade(e),
        }
    }

    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        match self.engine.execute("getLocationWithPower", &|| {
            self.inner.get_location_with_power()
        }) {
            Ok((fix, power)) => {
                *self.last_fix.lock() = Some(fix);
                Ok((fix, power))
            }
            // Degraded multi-reads serve the cached fix with a zero
            // power figure — the ledger cannot be read without crossing.
            Err(e) => self.degrade(e).map(|fix| (fix, 0.0)),
        }
    }
}

/// [`SmsProxy`] decorator: deadline fail-fast, admission control and
/// bulkhead around `sendTextMessage`. No degradation tier — a message
/// is either sent or it is not.
pub struct OverloadSmsProxy {
    inner: Arc<dyn SmsProxy>,
    engine: OverloadEngine,
}

impl OverloadSmsProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn SmsProxy>,
        device: Device,
        policy: OverloadPolicy,
        metrics: Arc<OverloadMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: OverloadEngine::new(device, policy, metrics),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &OverloadEngine {
        &self.engine
    }
}

impl ProxyBase for OverloadSmsProxy {
    forward_set_property!();
}

impl SmsProxy for OverloadSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        self.engine.execute("sendTextMessage", &|| {
            self.inner
                .send_text_message(destination, text, delivery_listener.clone())
        })
    }
}

/// Synthetic status of a degraded (enrichment-dropped) HTTP answer.
const DEGRADED_HTTP_STATUS: u16 = 202;

/// [`HttpProxy`] decorator: deadline fail-fast, admission control and
/// bulkhead around `request` — plus enrichment dropping. Requests whose
/// URL contains the configured droppable fragment
/// (`shed.droppable_path`) are, when shed, answered with a synthetic
/// `202 Accepted` carrying an `X-Mobivine-Degraded` header instead of
/// an error: the enrichment is dropped, the caller proceeds.
pub struct OverloadHttpProxy {
    inner: Arc<dyn HttpProxy>,
    engine: OverloadEngine,
    droppable_path: Mutex<Option<String>>,
}

impl OverloadHttpProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn HttpProxy>,
        device: Device,
        policy: OverloadPolicy,
        metrics: Arc<OverloadMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: OverloadEngine::new(device, policy, metrics),
            droppable_path: Mutex::new(None),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &OverloadEngine {
        &self.engine
    }

    /// Absorbs a shed into a synthetic degraded response when the URL
    /// is droppable enrichment.
    fn degrade(&self, url: &str, shed: ProxyError) -> Result<HttpResult, ProxyError> {
        if !shed.kind().is_load_shed() {
            return Err(shed);
        }
        let droppable = self.droppable_path.lock();
        match droppable.as_deref() {
            Some(fragment) if url.contains(fragment) => {
                self.engine.metrics.note_degraded();
                Ok(HttpResult {
                    status: DEGRADED_HTTP_STATUS,
                    headers: vec![("X-Mobivine-Degraded".to_owned(), "shed".to_owned())],
                    body: Vec::new(),
                })
            }
            _ => Err(shed),
        }
    }
}

impl ProxyBase for OverloadHttpProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        if key == "shed.droppable_path" {
            return match value.as_str() {
                Some(fragment) => {
                    *self.droppable_path.lock() = if fragment.is_empty() {
                        None
                    } else {
                        Some(fragment.to_owned())
                    };
                    Ok(())
                }
                None => Err(bad_value(key, &value)),
            };
        }
        match self.engine.try_set_policy_property(key, &value) {
            Some(result) => result,
            None => self.inner.set_property(key, value),
        }
    }
}

impl HttpProxy for OverloadHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        match self
            .engine
            .execute("request", &|| self.inner.request(method, url, body))
        {
            Ok(result) => Ok(result),
            Err(e) => self.degrade(url, e),
        }
    }
}

/// [`CallProxy`] decorator: only `makeACall` is gated — progress
/// polling and hang-up refer to an existing call and must always go
/// through (hanging up is how load *drains*).
pub struct OverloadCallProxy {
    inner: Arc<dyn CallProxy>,
    engine: OverloadEngine,
}

impl OverloadCallProxy {
    /// Wraps `inner` under `policy`.
    pub fn new(
        inner: Arc<dyn CallProxy>,
        device: Device,
        policy: OverloadPolicy,
        metrics: Arc<OverloadMetrics>,
    ) -> Self {
        Self {
            inner,
            engine: OverloadEngine::new(device, policy, metrics),
        }
    }

    /// The engine, for observability and tests.
    pub fn engine(&self) -> &OverloadEngine {
        &self.engine
    }
}

impl ProxyBase for OverloadCallProxy {
    forward_set_property!();
}

impl CallProxy for OverloadCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        self.engine
            .execute("makeACall", &|| self.inner.make_a_call(number))
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        self.inner.call_progress(call_id)
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        self.inner.end_call(call_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn device() -> Device {
        Device::builder().msisdn("+overload").build()
    }

    /// A location proxy that advances the simulated clock by a fixed
    /// service time per call.
    struct Slow {
        device: Device,
        service_ms: u64,
        calls: AtomicU64,
    }

    impl Slow {
        fn new(device: Device, service_ms: u64) -> Self {
            Self {
                device,
                service_ms,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl ProxyBase for Slow {
        fn set_property(&self, _key: &str, _value: PropertyValue) -> Result<(), ProxyError> {
            Ok(())
        }
    }

    impl LocationProxy for Slow {
        fn add_proximity_alert(
            &self,
            _latitude: f64,
            _longitude: f64,
            _altitude: f64,
            _radius: f64,
            _timer_s: i64,
            _listener: SharedProximityListener,
        ) -> Result<(), ProxyError> {
            Ok(())
        }

        fn remove_proximity_alert(
            &self,
            _listener: &SharedProximityListener,
        ) -> Result<bool, ProxyError> {
            Ok(false)
        }

        fn get_location(&self) -> Result<Location, ProxyError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.device.advance_ms(self.service_ms);
            Ok(Location {
                latitude: 12.0,
                longitude: 34.0,
                accuracy_m: 5.0,
                timestamp_ms: self.device.now_ms(),
                ..Location::default()
            })
        }
    }

    fn overloaded(
        device: &Device,
        service_ms: u64,
        policy: OverloadPolicy,
    ) -> OverloadLocationProxy {
        OverloadLocationProxy::new(
            Arc::new(Slow::new(device.clone(), service_ms)),
            device.clone(),
            policy,
            OverloadMetrics::shared(),
        )
    }

    // ---- Deadline ----------------------------------------------------

    #[test]
    fn deadline_arithmetic_is_saturating_and_origin_preserving() {
        let d = Deadline::after(1_000, 500);
        assert_eq!(d.start_ms(), 1_000);
        assert_eq!(d.expires_at_ms(), 1_500);
        assert_eq!(d.remaining_ms(1_200), 300);
        assert_eq!(d.remaining_ms(2_000), 0);
        assert!(d.is_expired(1_500));
        assert!(!d.is_expired(1_499));
        assert_eq!(d.sojourn_ms(1_400), 400);
        assert_eq!(d.sojourn_ms(900), 0);
        let tight = d.tightened_by(Deadline::after(1_100, 100));
        assert_eq!(tight.start_ms(), 1_000, "earlier origin wins");
        assert_eq!(tight.expires_at_ms(), 1_200, "earlier expiry wins");
        let huge = Deadline::after(u64::MAX - 1, u64::MAX);
        assert_eq!(huge.expires_at_ms(), u64::MAX);
    }

    #[test]
    fn ambient_deadline_scopes_nest_and_unwind() {
        assert_eq!(current_deadline(), None);
        let outer = Deadline::after(0, 1_000);
        let inner = Deadline::after(100, 200);
        with_deadline(outer, || {
            assert_eq!(current_deadline(), Some(outer));
            with_deadline(inner, || {
                assert_eq!(current_deadline(), Some(inner));
            });
            assert_eq!(current_deadline(), Some(outer));
        });
        assert_eq!(current_deadline(), None);
    }

    #[test]
    fn ambient_deadline_unwinds_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_deadline(Deadline::after(0, 10), || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(current_deadline(), None, "scope popped despite panic");
    }

    // ---- Bulkhead ----------------------------------------------------

    #[test]
    fn bulkhead_caps_concurrency_and_frees_on_drop() {
        let bulkhead = Bulkhead::new(2);
        let a = bulkhead.try_acquire().expect("slot 1");
        let _b = bulkhead.try_acquire().expect("slot 2");
        assert_eq!(bulkhead.in_flight(), 2);
        assert!(bulkhead.try_acquire().is_none(), "cap reached");
        drop(a);
        assert_eq!(bulkhead.in_flight(), 1);
        assert!(bulkhead.try_acquire().is_some(), "slot recycled");
    }

    #[test]
    fn bulkhead_queue_exhaustion_is_a_typed_overloaded_error() {
        let dev = device();
        let proxy = overloaded(
            &dev,
            0,
            OverloadPolicy::default()
                .max_concurrency(1)
                .queue_depth(3)
                .queue_wait_ms(10)
                .shed_enabled(false),
        );
        // Hold the only slot so every call must queue.
        let _slot = proxy.engine.bulkhead().try_acquire().unwrap();
        let before = dev.now_ms();
        let err = proxy.get_location().unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Overloaded);
        assert_eq!(err.retry_after_ms(), Some(10));
        assert_eq!(
            dev.now_ms() - before,
            30,
            "three simulated queue turns were waited"
        );
        let snap = proxy.engine.metrics().snapshot();
        assert_eq!(snap.bulkhead_waits, 3);
        assert_eq!(snap.bulkhead_rejections, 1);
    }

    #[test]
    fn queued_caller_fails_fast_when_budget_cannot_cover_a_turn() {
        let dev = device();
        let proxy = overloaded(
            &dev,
            0,
            OverloadPolicy::default()
                .max_concurrency(1)
                .queue_depth(100)
                .queue_wait_ms(50)
                .shed_enabled(false),
        );
        let _slot = proxy.engine.bulkhead().try_acquire().unwrap();
        let err = with_deadline(Deadline::after(dev.now_ms(), 30), || {
            proxy.get_location().unwrap_err()
        });
        assert_eq!(err.kind(), ProxyErrorKind::DeadlineExceeded);
        assert_eq!(proxy.engine.metrics().snapshot().deadline_fail_fast, 1);
    }

    // ---- Admission controller ----------------------------------------

    #[test]
    fn aimd_decays_multiplicatively_and_recovers_additively() {
        let admission = AdmissionController::new(1);
        assert_eq!(admission.rate(), ADMIT_SCALE);
        admission.observe(1_000, 100);
        assert_eq!(admission.rate(), ADMIT_SCALE * 7 / 8);
        admission.observe(1_000, 100);
        assert_eq!(admission.rate(), ADMIT_SCALE * 7 / 8 * 7 / 8);
        let decayed = admission.rate();
        admission.observe(50, 100);
        assert_eq!(admission.rate(), decayed + ADMIT_INCREASE);
        // Recovery saturates at fully open.
        for _ in 0..200 {
            admission.observe(50, 100);
        }
        assert_eq!(admission.rate(), ADMIT_SCALE);
    }

    #[test]
    fn aimd_never_leaves_its_bounds_and_converges_under_any_signal() {
        // Deterministic mirror of the proptest invariant: whatever
        // sequence of observations arrives, the rate stays in
        // [ADMIT_FLOOR, ADMIT_SCALE] — no oscillation divergence.
        let admission = AdmissionController::new(9);
        let mut signal = 42u64;
        for _ in 0..10_000 {
            let sojourn = splitmix64(&mut signal) % 600;
            admission.observe(sojourn, 256);
            let rate = admission.rate();
            assert!((ADMIT_FLOOR..=ADMIT_SCALE).contains(&rate), "rate {rate}");
        }
        // Pure overload pins the floor; pure health pins fully open.
        for _ in 0..100 {
            admission.observe(10_000, 256);
        }
        assert_eq!(admission.rate(), ADMIT_FLOOR);
        for _ in 0..200 {
            admission.observe(1, 256);
        }
        assert_eq!(admission.rate(), ADMIT_SCALE);
    }

    #[test]
    fn shed_decisions_replay_identically_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let admission = AdmissionController::new(seed);
            // Close the gate partway so coins are actually drawn.
            for _ in 0..10 {
                admission.observe(1_000, 100);
            }
            (0..64).map(|_| admission.admit()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same shed pattern");
        assert_ne!(run(7), run(8), "different seed, different pattern");
    }

    #[test]
    fn fully_open_gate_draws_no_coins() {
        let admission = AdmissionController::new(3);
        for _ in 0..100 {
            assert!(admission.admit());
        }
        // The stream has not advanced: closing the gate now yields the
        // same pattern as a fresh controller closed the same way.
        admission.observe(1_000, 100);
        let fresh = AdmissionController::new(3);
        fresh.observe(1_000, 100);
        let a: Vec<bool> = (0..32).map(|_| admission.admit()).collect();
        let b: Vec<bool> = (0..32).map(|_| fresh.admit()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn degrade_tiers_track_the_admitted_fraction() {
        let admission = AdmissionController::new(1);
        assert_eq!(admission.tier(), DegradeTier::Full);
        while admission.rate() * 3 >= 2 * ADMIT_SCALE {
            admission.observe(1_000, 100);
        }
        assert_eq!(admission.tier(), DegradeTier::Reduced);
        while admission.rate() * 3 >= ADMIT_SCALE {
            admission.observe(1_000, 100);
        }
        assert_eq!(admission.tier(), DegradeTier::Minimal);
    }

    #[test]
    fn retry_hint_grows_as_the_gate_closes() {
        let admission = AdmissionController::new(1);
        assert_eq!(admission.retry_after_ms(256), 1, "open gate: minimal hint");
        for _ in 0..30 {
            admission.observe(1_000, 256);
        }
        let hint = admission.retry_after_ms(256);
        assert!(hint > 200, "closed gate suggests a real wait, got {hint}");
        assert!(hint <= 256);
    }

    // ---- Engine ------------------------------------------------------

    #[test]
    fn expired_ambient_deadline_fails_fast_before_the_binding() {
        let dev = device();
        let inner = Arc::new(Slow::new(dev.clone(), 5));
        let proxy = OverloadLocationProxy::new(
            inner.clone(),
            dev.clone(),
            OverloadPolicy::default(),
            OverloadMetrics::shared(),
        );
        let stale = Deadline::after(dev.now_ms(), 100);
        dev.advance_ms(200);
        let err = with_deadline(stale, || proxy.get_location().unwrap_err());
        assert_eq!(err.kind(), ProxyErrorKind::DeadlineExceeded);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 0, "binding untouched");
        assert_eq!(proxy.engine.metrics().snapshot().deadline_fail_fast, 1);
    }

    #[test]
    fn calls_without_an_ambient_scope_get_the_default_budget() {
        let dev = device();
        let proxy = overloaded(&dev, 5, OverloadPolicy::default());
        assert!(proxy.get_location().is_ok());
        let snap = proxy.engine.metrics().snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.deadline_fail_fast, 0);
    }

    #[test]
    fn slow_calls_close_the_gate_and_sheds_carry_retry_hints() {
        let dev = device();
        let proxy = overloaded(
            &dev,
            1_000,
            OverloadPolicy::default().target_ms(100).shed_seed(5),
        );
        let mut sheds = 0u32;
        let mut hints_present = true;
        for _ in 0..200 {
            match proxy.get_location() {
                Err(e) if e.kind() == ProxyErrorKind::Overloaded => {
                    sheds += 1;
                    hints_present &= e.retry_after_ms().is_some();
                }
                _ => {}
            }
        }
        // No cached fix would exist only if the very first call shed,
        // which cannot happen from a fully open gate — so sheds here
        // were absorbed by degradation unless the cache was empty.
        let snap = proxy.engine.metrics().snapshot();
        assert!(snap.shed > 0, "1000 ms calls vs 100 ms target must shed");
        assert!(proxy.engine.admission().rate() < ADMIT_SCALE);
        assert!(hints_present);
        assert_eq!(sheds, 0, "location sheds degrade to the cached fix");
        assert_eq!(snap.degraded, snap.shed);
    }

    #[test]
    fn degraded_location_is_coarsened_at_the_minimal_tier() {
        let dev = device();
        let proxy = overloaded(
            &dev,
            1_000,
            OverloadPolicy::default().target_ms(50).shed_seed(11),
        );
        // Drive the gate to the floor.
        let mut saw_coarse = false;
        for _ in 0..300 {
            if let Ok(fix) = proxy.get_location() {
                if fix.accuracy_m >= COARSE_ACCURACY_M {
                    saw_coarse = true;
                }
            }
        }
        assert_eq!(proxy.engine.tier(), DegradeTier::Minimal);
        assert!(saw_coarse, "minimal tier coarsens the cached fix");
    }

    #[test]
    fn shed_disabled_admits_everything() {
        let dev = device();
        let proxy = overloaded(
            &dev,
            1_000,
            OverloadPolicy::default().target_ms(10).shed_enabled(false),
        );
        for _ in 0..50 {
            proxy.get_location().unwrap();
        }
        let snap = proxy.engine.metrics().snapshot();
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.admitted, 50);
    }

    #[test]
    fn policy_is_tunable_through_the_property_plane() {
        let dev = device();
        let proxy = overloaded(&dev, 0, OverloadPolicy::default());
        proxy
            .set_property("bulkhead.max_concurrency", PropertyValue::Int(3))
            .unwrap();
        assert_eq!(proxy.engine.bulkhead().cap(), 3);
        proxy
            .set_property("shed.enabled", PropertyValue::Bool(false))
            .unwrap();
        assert!(!proxy.engine.policy().shed_enabled);
        proxy
            .set_property("shed.target_ms", PropertyValue::str("512"))
            .unwrap();
        assert_eq!(proxy.engine.policy().target_ms, 512);
        proxy
            .set_property("deadline.default_ms", PropertyValue::Int(2_000))
            .unwrap();
        assert_eq!(proxy.engine.policy().deadline_default_ms, 2_000);
        let err = proxy
            .set_property("bulkhead.max_concurrency", PropertyValue::Int(0))
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::BadPropertyValue);
        // Non-overload keys flow to the wrapped proxy.
        proxy
            .set_property("provider", PropertyValue::str("gps"))
            .unwrap();
    }

    #[test]
    fn reseeding_reopens_the_gate_deterministically() {
        let dev = device();
        let proxy = overloaded(&dev, 0, OverloadPolicy::default());
        for _ in 0..20 {
            proxy.engine.admission().observe(1_000, 100);
        }
        assert!(proxy.engine.admission().rate() < ADMIT_SCALE);
        proxy
            .set_property("shed.seed", PropertyValue::Int(99))
            .unwrap();
        assert_eq!(proxy.engine.admission().rate(), ADMIT_SCALE);
    }

    // ---- HTTP degradation --------------------------------------------

    struct OkHttp {
        device: Device,
        service_ms: u64,
    }

    impl ProxyBase for OkHttp {
        fn set_property(&self, _key: &str, _value: PropertyValue) -> Result<(), ProxyError> {
            Ok(())
        }
    }

    impl HttpProxy for OkHttp {
        fn request(
            &self,
            _method: &str,
            _url: &str,
            _body: &[u8],
        ) -> Result<HttpResult, ProxyError> {
            self.device.advance_ms(self.service_ms);
            Ok(HttpResult {
                status: 200,
                headers: Vec::new(),
                body: b"enriched".to_vec(),
            })
        }
    }

    #[test]
    fn shed_droppable_http_requests_degrade_to_synthetic_accepted() {
        let dev = device();
        let proxy = OverloadHttpProxy::new(
            Arc::new(OkHttp {
                device: dev.clone(),
                service_ms: 1_000,
            }),
            dev.clone(),
            OverloadPolicy::default().target_ms(50).shed_seed(4),
            OverloadMetrics::shared(),
        );
        proxy
            .set_property("shed.droppable_path", PropertyValue::str("/enrich"))
            .unwrap();
        let mut degraded = 0u32;
        let mut hard_sheds = 0u32;
        for i in 0..200 {
            let url = if i % 2 == 0 {
                "http://svc/enrich/profile"
            } else {
                "http://svc/checkout"
            };
            match proxy.request("GET", url, b"") {
                Ok(r) if r.status == DEGRADED_HTTP_STATUS => {
                    assert!(url.contains("/enrich"));
                    assert_eq!(
                        r.headers[0],
                        ("X-Mobivine-Degraded".to_owned(), "shed".to_owned())
                    );
                    degraded += 1;
                }
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ProxyErrorKind::Overloaded);
                    assert!(!url.contains("/enrich"), "droppable paths never error");
                    hard_sheds += 1;
                }
            }
        }
        assert!(degraded > 0, "droppable enrichment was dropped");
        assert!(hard_sheds > 0, "non-droppable paths surface the shed");
        assert_eq!(
            proxy.engine.metrics().snapshot().degraded,
            u64::from(degraded)
        );
    }
}
