//! S60 PIM proxy bindings (Contacts, Calendar) — extension features for
//! the paper's future-work interfaces (§7).

use mobivine_s60::permissions::ApiPermission;
use mobivine_s60::S60Platform;

use crate::api::{CalendarProxy, ContactsProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{CalendarRecord, ContactRecord};

/// The S60 binding of the uniform [`ContactsProxy`].
pub struct S60ContactsProxy {
    platform: S60Platform,
    properties: PropertyBag,
}

impl S60ContactsProxy {
    /// Creates a proxy bound to `platform`.
    pub fn new(platform: S60Platform) -> Self {
        let binding = mobivine_proxydl::catalog::contacts()
            .binding_for(&mobivine_proxydl::PlatformId::NokiaS60)
            .expect("catalog declares an S60 contacts binding")
            .clone();
        Self {
            platform,
            properties: PropertyBag::new(binding),
        }
    }
}

impl ProxyBase for S60ContactsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl ContactsProxy for S60ContactsProxy {
    fn find_contacts(&self, query: &str) -> Result<Vec<ContactRecord>, ProxyError> {
        self.platform.enforce(ApiPermission::ContactsRead)?;
        Ok(self
            .platform
            .device()
            .contacts()
            .find_by_name(query)
            .into_iter()
            .map(|c| ContactRecord {
                name: c.name,
                numbers: c.numbers,
            })
            .collect())
    }
}

/// The S60 binding of the uniform [`CalendarProxy`].
pub struct S60CalendarProxy {
    platform: S60Platform,
    properties: PropertyBag,
}

impl S60CalendarProxy {
    /// Creates a proxy bound to `platform`.
    pub fn new(platform: S60Platform) -> Self {
        let binding = mobivine_proxydl::catalog::calendar()
            .binding_for(&mobivine_proxydl::PlatformId::NokiaS60)
            .expect("catalog declares an S60 calendar binding")
            .clone();
        Self {
            platform,
            properties: PropertyBag::new(binding),
        }
    }
}

impl ProxyBase for S60CalendarProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl CalendarProxy for S60CalendarProxy {
    fn entries_between(&self, from_ms: u64, to_ms: u64) -> Result<Vec<CalendarRecord>, ProxyError> {
        self.platform.enforce(ApiPermission::CalendarRead)?;
        Ok(self
            .platform
            .device()
            .calendar()
            .entries_between(from_ms, to_ms)
            .into_iter()
            .map(|e| CalendarRecord {
                title: e.title,
                start_ms: e.start_ms,
                end_ms: e.end_ms,
                location: e.location,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::Device;
    use mobivine_s60::permissions::{Disposition, PermissionPolicy};

    fn platform() -> S60Platform {
        let device = Device::builder().build();
        device
            .contacts()
            .add("Region Supervisor", &["+91-100"], &[]);
        device.calendar().add("Shift", 10, 20, "Depot").unwrap();
        S60Platform::new(device)
    }

    #[test]
    fn contacts_and_calendar_uniform_results() {
        let p = platform();
        let contacts = S60ContactsProxy::new(p.clone());
        assert_eq!(contacts.find_contacts("super").unwrap().len(), 1);
        let calendar = S60CalendarProxy::new(p);
        assert_eq!(calendar.entries_between(0, 100).unwrap()[0].title, "Shift");
    }

    #[test]
    fn denied_policy_is_security_error() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::ContactsRead, Disposition::Denied);
        policy.set(ApiPermission::CalendarRead, Disposition::Denied);
        let p = S60Platform::with_policy(Device::builder().build(), policy);
        assert_eq!(
            S60ContactsProxy::new(p.clone())
                .find_contacts("x")
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::Security
        );
        assert_eq!(
            S60CalendarProxy::new(p)
                .entries_between(0, 1)
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::Security
        );
    }
}
