//! The S60 SMS proxy binding.
//!
//! Absorbs the JSR-120 ceremony — `Connector.open("sms://…")`, message
//! object creation, address/payload setters — behind the uniform
//! one-call `sendTextMessage`.

use std::sync::Arc;

use mobivine_s60::messaging::{MessageConnection, MessageType};
use mobivine_s60::S60Platform;

use crate::api::{ProxyBase, SmsProxy};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{DeliveryListener, DeliveryOutcome};

/// The S60 binding of the uniform [`SmsProxy`]
/// (`com.ibm.S60.sms.SmsProxy` in the descriptor).
pub struct S60SmsProxy {
    platform: S60Platform,
    properties: PropertyBag,
}

impl S60SmsProxy {
    /// Creates a proxy bound to `platform`.
    pub fn new(platform: S60Platform) -> Self {
        let binding = mobivine_proxydl::catalog::sms()
            .binding_for(&mobivine_proxydl::PlatformId::NokiaS60)
            .expect("catalog declares an S60 sms binding")
            .clone();
        Self {
            platform,
            properties: PropertyBag::new(binding),
        }
    }
}

impl ProxyBase for S60SmsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl SmsProxy for S60SmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        if destination.is_empty() {
            return Err(ProxyError::new(
                crate::error::ProxyErrorKind::IllegalArgument,
                "destination address is empty",
            ));
        }
        if text.is_empty() {
            return Err(ProxyError::new(
                crate::error::ProxyErrorKind::IllegalArgument,
                "message body is empty",
            ));
        }
        let url = format!("sms://{destination}");
        let connection = MessageConnection::open_client(&self.platform, &url)?;
        let mut message = connection.new_message(MessageType::Text);
        message.set_payload_text(text);
        let id = match delivery_listener {
            Some(listener) => connection.send_with_status(&message, move |id, delivered| {
                let outcome = if delivered {
                    DeliveryOutcome::Delivered
                } else {
                    DeliveryOutcome::Failed
                };
                listener.delivery_event(id.value(), outcome);
            })?,
            None => connection.send_with_status(&message, |_, _| {})?,
        };
        Ok(id.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::Device;
    use mobivine_s60::permissions::{ApiPermission, Disposition, PermissionPolicy};
    use std::sync::Mutex as StdMutex;

    fn platform() -> S60Platform {
        S60Platform::new(Device::builder().msisdn("+91-agent").build())
    }

    #[test]
    fn one_call_send_reaches_recipient() {
        let platform = platform();
        platform.device().smsc().register_address("+91-sup");
        let proxy = S60SmsProxy::new(platform.clone());
        let id = proxy.send_text_message("+91-sup", "done", None).unwrap();
        assert!(id > 0);
        platform.device().advance_ms(1_000);
        let inbox = platform.device().smsc().inbox("+91-sup");
        assert_eq!(inbox[0].body, "done");
        assert_eq!(inbox[0].from, "+91-agent");
    }

    #[test]
    fn delivery_listener_uniform_with_android() {
        let platform = platform();
        platform.device().smsc().register_address("+91-sup");
        let proxy = S60SmsProxy::new(platform.clone());
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        proxy
            .send_text_message(
                "+91-sup",
                "ping",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        platform.device().advance_ms(1_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Delivered]
        );
    }

    #[test]
    fn failure_outcome_for_unknown_recipient() {
        let platform = platform();
        let proxy = S60SmsProxy::new(platform.clone());
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        proxy
            .send_text_message(
                "+ghost",
                "ping",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        platform.device().advance_ms(1_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Failed]
        );
    }

    #[test]
    fn argument_validation_is_uniform() {
        let proxy = S60SmsProxy::new(platform());
        assert_eq!(
            proxy.send_text_message("", "x", None).unwrap_err().kind(),
            crate::error::ProxyErrorKind::IllegalArgument
        );
        assert_eq!(
            proxy.send_text_message("+1", "", None).unwrap_err().kind(),
            crate::error::ProxyErrorKind::IllegalArgument
        );
    }

    #[test]
    fn denied_permission_is_uniform_security_error() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::SmsSend, Disposition::Denied);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        let proxy = S60SmsProxy::new(platform);
        let err = proxy.send_text_message("+1", "x", None).unwrap_err();
        assert_eq!(err.kind(), crate::error::ProxyErrorKind::Security);
        assert_eq!(
            err.platform_exception(),
            Some("java.lang.SecurityException")
        );
    }
}
