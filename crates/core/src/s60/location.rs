//! The S60 Location proxy binding.
//!
//! Emulates the uniform repeated-enter/exit-with-lifetime proximity
//! semantics over JSR-179's single-shot API. The state machine matches
//! the hand-written code of the paper's Fig. 2(b):
//!
//! ```text
//!        ┌────────────────────────────────────────────────┐
//!        ▼                                                │
//!   [watching entry]  --native proximityEvent-->  [watching exit]
//!   (single-shot native           │                (native location
//!    proximity listener)          │                 listener polling)
//!                                 ▼                        │
//!                       deliver entering=true    distance > radius:
//!                                                deliver entering=false,
//!                                                re-register native
//!                                                proximity listener ──┘
//! ```
//!
//! A timer event tears the whole structure down when the registration
//! lifetime elapses (JSR-179 itself has no expiration parameter).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_s60::location::{
    Coordinates, Criteria, LocationListener as S60LocationListener, LocationProvider,
    ProximityListener as S60ProximityListener, NO_REQUIREMENT,
};
use mobivine_s60::S60Platform;

use mobivine_device::power::PowerLevel;

use crate::api::{LocationProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{Location, ProximityEvent, SharedProximityListener};

/// The S60 binding of the uniform [`LocationProxy`]
/// (`com.ibm.S60.location.LocationProxy` in the descriptor).
pub struct S60LocationProxy {
    platform: S60Platform,
    properties: PropertyBag,
    alerts: Mutex<Vec<AlertEntry>>,
    /// Provider memoized for the current criteria. JSR-179 applications
    /// hold one `LocationProvider` per criteria set; re-deriving it per
    /// call would also put a `Device` clone and an `Arc` on the traced
    /// hot path. Invalidated by `setProperty`, since criteria derive
    /// from the property bag.
    provider_cache: Mutex<Option<Arc<LocationProvider>>>,
}

struct AlertEntry {
    listener: SharedProximityListener,
    shared: Arc<AlertShared>,
}

struct AlertShared {
    active: AtomicBool,
    platform: S60Platform,
    provider: Arc<LocationProvider>,
    listener: SharedProximityListener,
    target: Coordinates,
    ref_altitude: f64,
    radius_m: f64,
    current_native: Mutex<Option<Arc<dyn S60ProximityListener>>>,
}

impl S60LocationProxy {
    /// Creates a proxy bound to `platform`. Platform-specific criteria
    /// (accuracy, response time, power) arrive via `setProperty`.
    pub fn new(platform: S60Platform) -> Self {
        let binding = mobivine_proxydl::catalog::location()
            .binding_for(&mobivine_proxydl::PlatformId::NokiaS60)
            .expect("catalog declares an S60 location binding")
            .clone();
        Self {
            platform,
            properties: PropertyBag::new(binding),
            alerts: Mutex::new(Vec::new()),
            provider_cache: Mutex::new(None),
        }
    }

    fn criteria(&self) -> Criteria {
        let mut criteria = Criteria::new();
        if let Some(v) = self.properties.get_int("verticalAccuracy") {
            criteria.set_vertical_accuracy(v as i32);
        }
        if let Some(t) = self.properties.get_int("preferredResponseTime") {
            criteria.set_preferred_response_time(t as i32);
        }
        if let Some(p) = self
            .properties
            .with_str("powerConsumption", |s| s.and_then(PowerLevel::parse))
        {
            criteria.set_preferred_power_consumption(p);
        }
        criteria
    }

    fn provider(&self) -> Result<Arc<LocationProvider>, ProxyError> {
        let mut cache = self.provider_cache.lock();
        if let Some(provider) = cache.as_ref() {
            return Ok(Arc::clone(provider));
        }
        let provider = Arc::new(LocationProvider::get_instance(
            &self.platform,
            self.criteria(),
        )?);
        *cache = Some(Arc::clone(&provider));
        Ok(provider)
    }
}

fn s60_to_common(l: &mobivine_s60::location::Location) -> Location {
    let c = l.qualified_coordinates();
    Location {
        latitude: c.latitude(),
        longitude: c.longitude(),
        altitude: c.altitude() as f64,
        accuracy_m: l.horizontal_accuracy() as f64,
        timestamp_ms: l.timestamp_ms(),
        speed_mps: l.speed() as f64,
        course_deg: l.course() as f64,
    }
}

/// Registers a fresh single-shot native proximity listener for the next
/// entry event.
fn watch_entry(shared: &Arc<AlertShared>) {
    if !shared.active.load(Ordering::SeqCst) {
        return;
    }
    let adapter: Arc<dyn S60ProximityListener> = Arc::new(EnterAdapter {
        shared: Arc::clone(shared),
    });
    *shared.current_native.lock() = Some(Arc::clone(&adapter));
    // Registration errors at this stage (e.g. GPS went out of service
    // mid-flight) silently end monitoring, mirroring JSR-179's
    // monitoringStateChanged(false) behaviour.
    if LocationProvider::add_proximity_listener(
        &shared.platform,
        adapter,
        shared.target,
        shared.radius_m as f32,
    )
    .is_err()
    {
        shared.active.store(false, Ordering::SeqCst);
    }
}

struct EnterAdapter {
    shared: Arc<AlertShared>,
}

impl S60ProximityListener for EnterAdapter {
    fn proximity_event(
        &self,
        _coordinates: &Coordinates,
        location: &mobivine_s60::location::Location,
    ) {
        let shared = &self.shared;
        if !shared.active.load(Ordering::SeqCst) {
            return;
        }
        shared.listener.proximity_event(&ProximityEvent {
            ref_latitude: shared.target.latitude(),
            ref_longitude: shared.target.longitude(),
            ref_altitude: shared.ref_altitude,
            current_location: s60_to_common(location),
            entering: true,
        });
        // Now watch for the exit boundary with a location listener —
        // the Fig. 2(b) pattern, hidden inside the proxy.
        shared.provider.set_location_listener(
            Some(Arc::new(ExitWatcher {
                shared: Arc::clone(shared),
            })),
            NO_REQUIREMENT,
            NO_REQUIREMENT,
            NO_REQUIREMENT,
        );
    }

    fn monitoring_state_changed(&self, is_monitoring: bool) {
        if !is_monitoring {
            self.shared.active.store(false, Ordering::SeqCst);
        }
    }
}

struct ExitWatcher {
    shared: Arc<AlertShared>,
}

impl S60LocationListener for ExitWatcher {
    fn location_updated(
        &self,
        _provider: &LocationProvider,
        location: &mobivine_s60::location::Location,
    ) {
        let shared = &self.shared;
        if !shared.active.load(Ordering::SeqCst) {
            shared.provider.set_location_listener(
                None,
                NO_REQUIREMENT,
                NO_REQUIREMENT,
                NO_REQUIREMENT,
            );
            return;
        }
        if !location.is_valid() {
            return; // provider temporarily unavailable; keep watching
        }
        let here = location.qualified_coordinates();
        let distance = here.distance(&shared.target) as f64;
        if distance > shared.radius_m {
            shared.listener.proximity_event(&ProximityEvent {
                ref_latitude: shared.target.latitude(),
                ref_longitude: shared.target.longitude(),
                ref_altitude: shared.ref_altitude,
                current_location: s60_to_common(location),
                entering: false,
            });
            shared.provider.set_location_listener(
                None,
                NO_REQUIREMENT,
                NO_REQUIREMENT,
                NO_REQUIREMENT,
            );
            // Arm the next entry cycle.
            watch_entry(shared);
        }
    }
}

fn teardown(shared: &Arc<AlertShared>) {
    shared.active.store(false, Ordering::SeqCst);
    shared
        .provider
        .set_location_listener(None, NO_REQUIREMENT, NO_REQUIREMENT, NO_REQUIREMENT);
    if let Some(native) = shared.current_native.lock().take() {
        LocationProvider::remove_proximity_listener(&shared.platform, &native);
    }
}

impl ProxyBase for S60LocationProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)?;
        // Criteria may have changed; the next call re-derives the
        // provider (matching a fresh getInstance with the new criteria).
        *self.provider_cache.lock() = None;
        Ok(())
    }
}

impl LocationProxy for S60LocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        let provider = self.provider()?;
        let shared = Arc::new(AlertShared {
            active: AtomicBool::new(true),
            platform: self.platform.clone(),
            provider,
            listener: Arc::clone(&listener),
            target: Coordinates::new(latitude, longitude, altitude as f32),
            ref_altitude: altitude,
            radius_m: radius,
            current_native: Mutex::new(None),
        });
        // Validate arguments through the native API up front so errors
        // surface synchronously (as on Android).
        if radius <= 0.0 || radius.is_nan() {
            return Err(ProxyError::new(
                crate::error::ProxyErrorKind::IllegalArgument,
                "proximity radius must be positive",
            ));
        }
        watch_entry(&shared);
        if !shared.active.load(Ordering::SeqCst) {
            return Err(ProxyError::new(
                crate::error::ProxyErrorKind::Unavailable,
                "proximity monitoring unavailable",
            ));
        }
        if timer_s >= 0 {
            let device = self.platform.device().clone();
            let expire_at = device.now_ms() + (timer_s as u64) * 1000;
            let shared_for_timer = Arc::clone(&shared);
            device
                .events()
                .schedule_at(expire_at, "s60-proxy-alert-expiry", move |_| {
                    teardown(&shared_for_timer);
                });
        }
        self.alerts.lock().push(AlertEntry { listener, shared });
        Ok(())
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        let mut alerts = self.alerts.lock();
        let before = alerts.len();
        alerts.retain(|entry| {
            if Arc::ptr_eq(&entry.listener, listener) {
                teardown(&entry.shared);
                false
            } else {
                true
            }
        });
        Ok(alerts.len() != before)
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        let provider = self.provider()?;
        let timeout = self
            .properties
            .get_int("preferredResponseTime")
            .unwrap_or(-1) as i32;
        let location = provider.get_location(timeout)?;
        Ok(s60_to_common(&location))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::movement::MovementModel;
    use mobivine_device::{Device, GeoPoint};
    use std::sync::Mutex as StdMutex;

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    fn moving_platform() -> S60Platform {
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .build();
        device.gps().set_noise_enabled(false);
        S60Platform::new(device)
    }

    fn looping_platform() -> S60Platform {
        let start = HOME.destination(270.0, 300.0);
        let far = HOME.destination(90.0, 300.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::waypoint_loop(vec![start, far], 20.0))
            .build();
        device.gps().set_noise_enabled(false);
        S60Platform::new(device)
    }

    fn collect_events() -> (SharedProximityListener, Arc<StdMutex<Vec<bool>>>) {
        let events = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(e.entering);
        });
        (listener, events)
    }

    #[test]
    fn uniform_enter_exit_semantics_emulated() {
        let platform = moving_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        // Single pass through the region: despite the native API being
        // single-shot and exit-free, the proxy delivers enter AND exit.
        assert_eq!(events.lock().unwrap().as_slice(), &[true, false]);
    }

    #[test]
    fn repeated_alerts_on_reentry() {
        let platform = looping_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(240_000);
        let events = events.lock().unwrap();
        assert!(
            events.len() >= 4,
            "expected repeated enter/exit cycles, got {events:?}"
        );
        for pair in events.windows(2) {
            assert_ne!(pair[0], pair[1], "events must alternate: {events:?}");
        }
        assert!(events[0], "first event is an enter");
    }

    #[test]
    fn timer_expires_the_registration() {
        let platform = moving_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, 10, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn timer_spanning_entry_cuts_off_exit() {
        let platform = moving_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        // Entry at ~40 s, exit at ~60 s; expire at 50 s → enter only.
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, 50, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        assert_eq!(events.lock().unwrap().as_slice(), &[true]);
    }

    #[test]
    fn remove_by_listener_identity() {
        let platform = moving_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .unwrap();
        assert!(proxy.remove_proximity_alert(&listener).unwrap());
        assert!(!proxy.remove_proximity_alert(&listener).unwrap());
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn get_location_returns_common_type() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let proxy = S60LocationProxy::new(S60Platform::new(device));
        let loc = proxy.get_location().unwrap();
        assert!((loc.latitude - HOME.latitude).abs() < 1e-9);
    }

    #[test]
    fn power_consumption_property_flows_into_criteria() {
        let device = Device::builder().position(HOME).build();
        let proxy = S60LocationProxy::new(S60Platform::new(device));
        let default_acc = proxy.get_location().unwrap().accuracy_m;
        proxy
            .set_property("powerConsumption", PropertyValue::str("Low"))
            .unwrap();
        let low_acc = proxy.get_location().unwrap().accuracy_m;
        assert!(low_acc > default_acc, "low power coarsens accuracy");
    }

    #[test]
    fn bad_power_value_rejected() {
        let proxy = S60LocationProxy::new(S60Platform::new(Device::builder().build()));
        assert_eq!(
            proxy
                .set_property("powerConsumption", PropertyValue::str("Turbo"))
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::BadPropertyValue
        );
    }

    #[test]
    fn invalid_radius_is_synchronous_error() {
        let proxy = S60LocationProxy::new(moving_platform());
        let (listener, _) = collect_events();
        assert_eq!(
            proxy
                .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 0.0, -1, listener)
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::IllegalArgument
        );
    }

    #[test]
    fn gps_outage_mid_flight_stops_monitoring_quietly() {
        let platform = moving_platform();
        let proxy = S60LocationProxy::new(platform.clone());
        let (listener, events) = collect_events();
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(5_000);
        platform
            .device()
            .gps()
            .set_availability(mobivine_device::gps::GpsAvailability::OutOfService);
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }
}
