//! The S60 HTTP proxy binding.
//!
//! Absorbs the `javax.microedition.io` connection lifecycle (open,
//! configure, lazy transmit, stream reads) behind the uniform one-call
//! `request`.

use mobivine_s60::io::Connector;
use mobivine_s60::S60Platform;

use crate::api::{HttpProxy, ProxyBase};
use crate::error::ProxyError;
use crate::property::{PropertyBag, PropertyValue};
use crate::types::HttpResult;

/// The S60 binding of the uniform [`HttpProxy`]
/// (`com.ibm.S60.http.HttpProxy` in the descriptor).
pub struct S60HttpProxy {
    platform: S60Platform,
    properties: PropertyBag,
}

impl S60HttpProxy {
    /// Creates a proxy bound to `platform`.
    pub fn new(platform: S60Platform) -> Self {
        let binding = mobivine_proxydl::catalog::http()
            .binding_for(&mobivine_proxydl::PlatformId::NokiaS60)
            .expect("catalog declares an S60 http binding")
            .clone();
        Self {
            platform,
            properties: PropertyBag::new(binding),
        }
    }
}

impl ProxyBase for S60HttpProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.properties.set(key, value)
    }
}

impl HttpProxy for S60HttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        let mut connection = Connector::open_http(&self.platform, url)?;
        connection.set_request_method(method)?;
        if !body.is_empty() {
            connection.write_body(body)?;
        }
        let status = connection.response_code()?;
        let body_text = connection.read_fully()?;
        Ok(HttpResult {
            status,
            headers: Vec::new(),
            body: body_text.into_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::net::{HttpResponse, Method};
    use mobivine_device::Device;
    use mobivine_s60::permissions::{ApiPermission, Disposition, PermissionPolicy};

    fn platform() -> S60Platform {
        let device = Device::builder().build();
        device
            .network()
            .register_route("wfm.example", Method::Get, "/tasks", |_| {
                HttpResponse::ok("task list")
            });
        device
            .network()
            .register_route("wfm.example", Method::Post, "/log", |req| {
                HttpResponse::ok(format!("{}", req.body.len()))
            });
        S60Platform::new(device)
    }

    #[test]
    fn get_and_post_uniform_results() {
        let proxy = S60HttpProxy::new(platform());
        let get = proxy
            .request("GET", "http://wfm.example/tasks", &[])
            .unwrap();
        assert!(get.is_success());
        assert_eq!(get.body_text(), "task list");
        let post = proxy
            .request("POST", "http://wfm.example/log", b"abcd")
            .unwrap();
        assert_eq!(post.body_text(), "4");
    }

    #[test]
    fn transport_failure_is_io() {
        let proxy = S60HttpProxy::new(platform());
        assert_eq!(
            proxy
                .request("GET", "http://ghost/", &[])
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::Io
        );
    }

    #[test]
    fn status_errors_are_results() {
        let proxy = S60HttpProxy::new(platform());
        let resp = proxy
            .request("GET", "http://wfm.example/none", &[])
            .unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn denied_policy_is_uniform_security_error() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::HttpConnect, Disposition::Denied);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        let proxy = S60HttpProxy::new(platform);
        assert_eq!(
            proxy
                .request("GET", "http://wfm.example/", &[])
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::Security
        );
    }

    #[test]
    fn bad_inputs_are_illegal_arguments() {
        let proxy = S60HttpProxy::new(platform());
        assert_eq!(
            proxy.request("GET", "ftp://x/", &[]).unwrap_err().kind(),
            crate::error::ProxyErrorKind::IllegalArgument
        );
        assert_eq!(
            proxy
                .request("BREW", "http://wfm.example/", &[])
                .unwrap_err()
                .kind(),
            crate::error::ProxyErrorKind::IllegalArgument
        );
    }
}
