//! Nokia S60 binding modules — the implementation plane for S60/J2ME.
//!
//! The heaviest de-fragmentation in the system lives here: JSR-179
//! proximity monitoring is **single-shot** (one `proximityEvent` on
//! entering, then the listener is removed; no exit events, no
//! expiration), while the uniform [`crate::api::LocationProxy`] promises
//! Android-style **repeated enter/exit alerts with a lifetime**. The
//! S60 location binding emulates the richer semantics with exactly the
//! machinery the paper's Fig. 2(b) shows application developers writing
//! by hand — a location listener watching for the exit boundary, prompt
//! re-registration of the proximity listener for the next entry, and a
//! timeout guard — except the proxy hides all of it.
//!
//! There is **no Call binding**: "Call proxy could not be created in
//! this case because the core functionality was not exposed on the S60
//! platform" (§4.1). The registry surfaces this as
//! [`crate::error::ProxyErrorKind::UnsupportedOnPlatform`].

mod http;
mod location;
mod pim;
mod sms;

pub use http::S60HttpProxy;
pub use location::S60LocationProxy;
pub use pim::{S60CalendarProxy, S60ContactsProxy};
pub use sms::S60SmsProxy;
