//! JavaScript-side proxies (Fig. 6, steps 2 and 3).
//!
//! Each `WebView*Proxy` is the JavaScript proxy object of the paper:
//! constructed over the wrapper handle (`swi`) obtained from the page,
//! it exposes the uniform proxy traits. Asynchronous callbacks are wired
//! through the Notification Table — the proxy receives a notification id
//! from the wrapper, spins up a polling [`NotifHandler`], and dispatches
//! each retrieved notification to the registered callback.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::ambient;
use mobivine_telemetry::TraceparentBuf;
use mobivine_webview::bridge::BridgeError;
use mobivine_webview::notification::{NotifHandler, NotificationId, NotificationTable};
use mobivine_webview::webview::JsInterfaceHandle;
use mobivine_webview::wire::{BatchReplies, NodeId, WireBuf, WireValue};
use mobivine_webview::{JsValue, WebView};

use crate::api::{CallProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::{PropertyBag, PropertyValue};
use crate::types::{
    CallProgress, DeliveryListener, DeliveryOutcome, HttpResult, Location, SharedProximityListener,
};
use crate::webview::wrappers::{interface_names, location_from_wire, proximity_event_from_js};

/// The JavaScript-local property that flips the location proxy's
/// multi-read between one batched crossing and two wire calls. It never
/// crosses the bridge — the JavaScript plane owns the batching policy.
pub const BATCH_PROPERTY: &str = "bridge.batch";

fn property_value_to_js_string(value: &PropertyValue) -> Result<String, ProxyError> {
    match value {
        PropertyValue::Str(s) => Ok(s.clone()),
        PropertyValue::Int(i) => Ok(i.to_string()),
        PropertyValue::Bool(b) => Ok(b.to_string()),
        PropertyValue::Opaque(_) => Err(ProxyError::new(
            ProxyErrorKind::BadPropertyValue,
            "opaque platform objects cannot cross the JavaScript bridge",
        )),
    }
}

fn wrapper_handle(webview: &WebView, name: &str) -> Result<JsInterfaceHandle, ProxyError> {
    webview.js_interface(name).ok_or_else(|| {
        ProxyError::new(
            ProxyErrorKind::Unavailable,
            format!("wrapper {name} is not injected — call install_wrappers first"),
        )
    })
}

/// Shared plumbing for the JS proxies: the wrapper handle plus the
/// page's notification infrastructure.
struct JsProxyCore {
    handle: JsInterfaceHandle,
    table: Arc<NotificationTable>,
    device: Device,
    properties: PropertyBag,
}

impl JsProxyCore {
    fn new(
        webview: &WebView,
        name: &str,
        binding: mobivine_proxydl::PlatformBinding,
    ) -> Result<Self, ProxyError> {
        Ok(Self {
            handle: wrapper_handle(webview, name)?,
            table: Arc::clone(webview.notifications()),
            device: webview.context().device().clone(),
            properties: PropertyBag::new(binding),
        })
    }

    /// Crosses the bridge with the full marshalled call context: the
    /// ambient trace context rendered as a `traceparent` string (so the
    /// Java-side wrapper can parent its Bridge-plane span off the
    /// JavaScript caller's span) plus the ambient deadline's remaining
    /// budget in virtual milliseconds (the ambient stack itself cannot
    /// cross the marshalling boundary, so the budget is re-opened as a
    /// native-side scope by the wrapper).
    fn invoke(&self, method: &str, args: &[JsValue]) -> Result<JsValue, BridgeError> {
        let (traceparent, deadline_budget_ms) = self.marshalled_context();
        self.handle.invoke_with_context(
            method,
            args,
            traceparent.as_ref().map(TraceparentBuf::as_str),
            deadline_budget_ms,
        )
    }

    /// The two marshallable pieces of ambient call context: the trace
    /// context rendered into a fixed stack buffer (no heap) and the
    /// deadline's remaining budget as a plain integer.
    fn marshalled_context(&self) -> (Option<TraceparentBuf>, Option<u64>) {
        let traceparent = ambient::current().as_ref().map(TraceparentBuf::render);
        let deadline_budget_ms = crate::overload::current_deadline()
            .map(|deadline| deadline.remaining_ms(self.device.now_ms()));
        (traceparent, deadline_budget_ms)
    }

    /// Crosses the bridge through the zero-copy wire path with the same
    /// marshalled context as [`JsProxyCore::invoke`].
    fn invoke_wire<T>(
        &self,
        method: &str,
        encode: impl FnOnce(&mut WireBuf) -> NodeId,
        decode: impl FnOnce(WireValue<'_>) -> Result<T, BridgeError>,
    ) -> Result<T, BridgeError> {
        let (traceparent, deadline_budget_ms) = self.marshalled_context();
        self.handle.invoke_wire(
            method,
            traceparent.as_ref().map(TraceparentBuf::as_str),
            deadline_budget_ms,
            encode,
            decode,
        )
    }

    /// One crossing carrying several queued wrapper calls, with the
    /// same marshalled context as [`JsProxyCore::invoke`].
    fn invoke_batch<T>(
        &self,
        encode: impl FnOnce(&mut WireBuf),
        decode: impl FnOnce(BatchReplies<'_>) -> Result<T, BridgeError>,
    ) -> Result<T, BridgeError> {
        let (traceparent, deadline_budget_ms) = self.marshalled_context();
        self.handle.invoke_batch(
            traceparent.as_ref().map(TraceparentBuf::as_str),
            deadline_budget_ms,
            encode,
            decode,
        )
    }

    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        // Validate locally against the WebView binding plane, then
        // forward over the bridge (the wrapper re-validates against the
        // Android plane where applicable).
        self.properties.set(key, value.clone())?;
        let rendered = property_value_to_js_string(&value)?;
        // Properties the Android side does not declare (e.g.
        // pollInterval) stay JavaScript-local.
        let _ = self.invoke("setProperty", &[JsValue::str(key), JsValue::Str(rendered)]);
        Ok(())
    }

    fn poll_interval_ms(&self) -> u64 {
        self.properties
            .get_int("pollInterval")
            .map(|v| v.max(1) as u64)
            .unwrap_or(200)
    }

    fn start_handler<F>(&self, notif_id: NotificationId, callback: F) -> Arc<NotifHandler>
    where
        F: Fn(JsValue) + Send + Sync + 'static,
    {
        let handler = Arc::new(
            NotifHandler::new(self.device.clone(), Arc::clone(&self.table), notif_id)
                .with_interval_ms(self.poll_interval_ms()),
        );
        handler.start_polling(callback);
        handler
    }
}

/// Bookkeeping for one registered alert: the raw notification id, its
/// polling handler, and the listener (kept alive for identity-based
/// removal).
type AlertRegistration = (u64, Arc<NotifHandler>, SharedProximityListener);

/// The JavaScript `LocationProxyImpl` (paper Fig. 9).
pub struct WebViewLocationProxy {
    core: JsProxyCore,
    registrations: Mutex<HashMap<usize, AlertRegistration>>,
    /// Whether multi-reads cross the bridge as one batched crossing
    /// (toggled through the JavaScript-local [`BATCH_PROPERTY`]).
    batched: AtomicBool,
}

impl WebViewLocationProxy {
    /// Constructs the JS proxy over an installed `LocationWrapper`.
    ///
    /// # Errors
    ///
    /// Returns `Unavailable` if [`crate::webview::install_wrappers`] has
    /// not run on this page.
    pub fn new(webview: &WebView) -> Result<Self, ProxyError> {
        let binding = mobivine_proxydl::catalog::location()
            .binding_for(&mobivine_proxydl::PlatformId::AndroidWebView)
            .expect("catalog declares a WebView location binding")
            .clone();
        Ok(Self {
            core: JsProxyCore::new(webview, interface_names::LOCATION, binding)?,
            registrations: Mutex::new(HashMap::new()),
            batched: AtomicBool::new(false),
        })
    }
}

impl ProxyBase for WebViewLocationProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        // The batch toggle is a JavaScript-plane policy knob, not a
        // platform property: intercept it before catalog validation so
        // it never crosses the bridge.
        if key == BATCH_PROPERTY {
            let on = match &value {
                PropertyValue::Bool(b) => *b,
                PropertyValue::Str(s) if s == "true" => true,
                PropertyValue::Str(s) if s == "false" => false,
                _ => {
                    return Err(ProxyError::new(
                        ProxyErrorKind::BadPropertyValue,
                        format!("{BATCH_PROPERTY} takes a boolean"),
                    ))
                }
            };
            self.batched.store(on, Ordering::Relaxed);
            return Ok(());
        }
        self.core.set_property(key, value)
    }
}

impl LocationProxy for WebViewLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        let out = self.core.invoke(
            "addProximityAlert",
            &[
                latitude.into(),
                longitude.into(),
                altitude.into(),
                radius.into(),
                (timer_s as f64).into(),
            ],
        )?;
        let raw = out.as_number().ok_or_else(|| {
            ProxyError::new(ProxyErrorKind::Unavailable, "wrapper returned no alert id")
        })? as u64;
        let notif_id = NotificationId::from_raw(raw).ok_or_else(|| {
            ProxyError::new(ProxyErrorKind::Unavailable, "wrapper returned bad alert id")
        })?;
        let js_listener = Arc::clone(&listener);
        let handler = self.core.start_handler(notif_id, move |value| {
            js_listener.proximity_event(&proximity_event_from_js(&value));
        });
        let key = Arc::as_ptr(&listener) as *const () as usize;
        self.registrations
            .lock()
            .insert(key, (raw, handler, listener));
        Ok(())
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        let key = Arc::as_ptr(listener) as *const () as usize;
        let entry = self.registrations.lock().remove(&key);
        match entry {
            Some((raw, handler, _listener)) => {
                handler.stop_polling();
                let removed = self
                    .core
                    .invoke("removeProximityAlert", &[JsValue::Number(raw as f64)])?;
                if let Some(id) = NotificationId::from_raw(raw) {
                    self.core.table.close(id);
                }
                Ok(removed.as_bool().unwrap_or(false))
            }
            None => Ok(false),
        }
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        let location = self
            .core
            .invoke_wire("getLocation", WireBuf::empty_args, |reply| {
                Ok(location_from_wire(reply))
            })?;
        Ok(location)
    }

    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        if self.batched.load(Ordering::Relaxed) {
            // One crossing carrying both reads; per-entry errors are
            // surfaced as the whole multi-read's failure.
            let out = self.core.invoke_batch(
                |buf| {
                    let args = buf.empty_args();
                    buf.push_frame("getLocation", args);
                    let args = buf.empty_args();
                    buf.push_frame("getPowerDrawn", args);
                },
                |replies| {
                    let entry = |i: usize| match replies.get(i) {
                        Some(Ok(value)) => Ok(value),
                        Some(Err((code, message))) => Err(BridgeError {
                            code,
                            message: message.to_owned(),
                        }),
                        None => Err(BridgeError::bridge("batch reply missing")),
                    };
                    let location = location_from_wire(entry(0)?);
                    let power = entry(1)?.as_number().unwrap_or(0.0);
                    Ok((location, power))
                },
            )?;
            Ok(out)
        } else {
            let location = self
                .core
                .invoke_wire("getLocation", WireBuf::empty_args, |reply| {
                    Ok(location_from_wire(reply))
                })?;
            let power = self
                .core
                .invoke_wire("getPowerDrawn", WireBuf::empty_args, |reply| {
                    Ok(reply.as_number().unwrap_or(0.0))
                })?;
            Ok((location, power))
        }
    }
}

/// The JavaScript `SmsProxy` of Fig. 6.
pub struct WebViewSmsProxy {
    core: JsProxyCore,
    handlers: Mutex<Vec<Arc<NotifHandler>>>,
}

impl WebViewSmsProxy {
    /// Constructs the JS proxy over an installed `SmsWrapper`.
    ///
    /// # Errors
    ///
    /// Returns `Unavailable` if wrappers are not installed.
    pub fn new(webview: &WebView) -> Result<Self, ProxyError> {
        let binding = mobivine_proxydl::catalog::sms()
            .binding_for(&mobivine_proxydl::PlatformId::AndroidWebView)
            .expect("catalog declares a WebView sms binding")
            .clone();
        Ok(Self {
            core: JsProxyCore::new(webview, interface_names::SMS, binding)?,
            handlers: Mutex::new(Vec::new()),
        })
    }
}

impl ProxyBase for WebViewSmsProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.core.set_property(key, value)
    }
}

impl SmsProxy for WebViewSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        // Prune handlers whose one-shot report already arrived.
        self.handlers.lock().retain(|h| h.is_polling());
        let want_report = delivery_listener.is_some();
        let out = self.core.invoke(
            "sendTextMessage",
            &[
                JsValue::str(destination),
                JsValue::str(text),
                JsValue::Bool(want_report),
            ],
        )?;
        let message_id = out
            .get_ref("messageId")
            .and_then(JsValue::as_number)
            .unwrap_or(0.0) as u64;
        let notif_raw = out.get_ref("notifId").and_then(JsValue::as_number);
        if let (Some(listener), Some(raw)) = (delivery_listener, notif_raw) {
            if let Some(notif_id) = NotificationId::from_raw(raw as u64) {
                let table = Arc::clone(&self.core.table);
                // The delivery report arrives exactly once; the handler
                // stops itself (via the weak back-reference) so one-shot
                // reports do not leave poll events behind.
                let self_stop: Arc<Mutex<Option<std::sync::Weak<NotifHandler>>>> =
                    Arc::new(Mutex::new(None));
                let self_stop_in_callback = Arc::clone(&self_stop);
                let handler = self.core.start_handler(notif_id, move |value| {
                    let id = value
                        .get_ref("messageId")
                        .and_then(JsValue::as_number)
                        .unwrap_or(0.0) as u64;
                    let delivered = value
                        .get_ref("delivered")
                        .and_then(JsValue::as_bool)
                        .unwrap_or(false);
                    let outcome = if delivered {
                        DeliveryOutcome::Delivered
                    } else {
                        DeliveryOutcome::Failed
                    };
                    listener.delivery_event(id, outcome);
                    table.close(notif_id);
                    if let Some(handler) = self_stop_in_callback
                        .lock()
                        .as_ref()
                        .and_then(std::sync::Weak::upgrade)
                    {
                        handler.stop_polling();
                    }
                });
                *self_stop.lock() = Some(Arc::downgrade(&handler));
                self.handlers.lock().push(handler);
            }
        }
        Ok(message_id)
    }
}

/// The JavaScript `CallProxyImpl`.
pub struct WebViewCallProxy {
    core: JsProxyCore,
}

impl WebViewCallProxy {
    /// Constructs the JS proxy over an installed `CallWrapper`.
    ///
    /// # Errors
    ///
    /// Returns `Unavailable` if wrappers are not installed.
    pub fn new(webview: &WebView) -> Result<Self, ProxyError> {
        let binding = mobivine_proxydl::catalog::call()
            .binding_for(&mobivine_proxydl::PlatformId::AndroidWebView)
            .expect("catalog declares a WebView call binding")
            .clone();
        Ok(Self {
            core: JsProxyCore::new(webview, interface_names::CALL, binding)?,
        })
    }
}

impl ProxyBase for WebViewCallProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.core.set_property(key, value)
    }
}

impl CallProxy for WebViewCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        let out = self.core.invoke("makeACall", &[JsValue::str(number)])?;
        Ok(out.as_number().unwrap_or(0.0) as u64)
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        let out = self
            .core
            .invoke("callProgress", &[JsValue::Number(call_id as f64)])?;
        match out.as_str() {
            Some("connecting") => Ok(CallProgress::Connecting),
            Some("connected") => Ok(CallProgress::Connected),
            Some("ended") => Ok(CallProgress::Ended),
            other => Err(ProxyError::new(
                ProxyErrorKind::Unavailable,
                format!("wrapper returned unknown progress {other:?}"),
            )),
        }
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        self.core
            .invoke("endCall", &[JsValue::Number(call_id as f64)])?;
        Ok(())
    }
}

/// The JavaScript `HttpProxyImpl`.
pub struct WebViewHttpProxy {
    core: JsProxyCore,
}

impl WebViewHttpProxy {
    /// Constructs the JS proxy over an installed `HttpWrapper`.
    ///
    /// # Errors
    ///
    /// Returns `Unavailable` if wrappers are not installed.
    pub fn new(webview: &WebView) -> Result<Self, ProxyError> {
        let binding = mobivine_proxydl::catalog::http()
            .binding_for(&mobivine_proxydl::PlatformId::AndroidWebView)
            .expect("catalog declares a WebView http binding")
            .clone();
        Ok(Self {
            core: JsProxyCore::new(webview, interface_names::HTTP, binding)?,
        })
    }
}

impl ProxyBase for WebViewHttpProxy {
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
        self.core.set_property(key, value)
    }
}

impl HttpProxy for WebViewHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        let body_text = String::from_utf8_lossy(body).into_owned();
        let out = self.core.invoke(
            "request",
            &[
                JsValue::str(method),
                JsValue::str(url),
                JsValue::Str(body_text),
            ],
        )?;
        Ok(HttpResult {
            status: out
                .get_ref("status")
                .and_then(JsValue::as_number)
                .unwrap_or(0.0) as u16,
            headers: Vec::new(),
            body: out
                .get_ref("body")
                .and_then(JsValue::as_str)
                .unwrap_or("")
                .as_bytes()
                .to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProximityEvent;
    use crate::webview::install_wrappers;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::movement::MovementModel;
    use mobivine_device::net::{HttpResponse, Method};
    use mobivine_device::{Device, GeoPoint};
    use std::sync::Mutex as StdMutex;

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    fn page(device: Device) -> (AndroidPlatform, WebView) {
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let webview = WebView::new(platform.new_context());
        install_wrappers(&webview);
        (platform, webview)
    }

    fn moving_device() -> Device {
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .msisdn("+91-me")
            .build();
        device.gps().set_noise_enabled(false);
        device
    }

    #[test]
    fn proximity_alerts_flow_through_notification_polling() {
        let (platform, webview) = page(moving_device());
        let proxy = WebViewLocationProxy::new(&webview).unwrap();
        let events = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(e.entering);
        });
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        platform.device().advance_ms(120_000);
        assert_eq!(events.lock().unwrap().as_slice(), &[true, false]);
    }

    #[test]
    fn remove_proximity_alert_stops_polling() {
        let (platform, webview) = page(moving_device());
        let proxy = WebViewLocationProxy::new(&webview).unwrap();
        let events = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(e.entering);
        });
        proxy
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .unwrap();
        assert!(proxy.remove_proximity_alert(&listener).unwrap());
        assert!(!proxy.remove_proximity_alert(&listener).unwrap());
        platform.device().advance_ms(120_000);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn get_location_via_bridge() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let (_platform, webview) = page(device);
        let proxy = WebViewLocationProxy::new(&webview).unwrap();
        let loc = proxy.get_location().unwrap();
        assert!((loc.latitude - HOME.latitude).abs() < 1e-9);
    }

    #[test]
    fn sms_delivery_report_via_polling() {
        let device = Device::builder().msisdn("+91-me").build();
        device.smsc().register_address("+91-sup");
        let (platform, webview) = page(device);
        let proxy = WebViewSmsProxy::new(&webview).unwrap();
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        let id = proxy
            .send_text_message(
                "+91-sup",
                "hello",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        assert!(id > 0);
        platform.device().advance_ms(2_000);
        assert_eq!(
            outcomes.lock().unwrap().as_slice(),
            &[DeliveryOutcome::Delivered]
        );
    }

    #[test]
    fn sms_report_handler_stops_after_the_one_shot_report() {
        let device = Device::builder().msisdn("+91-me").build();
        device.smsc().register_address("+91-sup");
        let (platform, webview) = page(device);
        let proxy = WebViewSmsProxy::new(&webview).unwrap();
        let outcomes = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        proxy
            .send_text_message(
                "+91-sup",
                "once",
                Some(Arc::new(move |_id: u64, o: DeliveryOutcome| {
                    sink.lock().unwrap().push(o);
                })),
            )
            .unwrap();
        platform.device().advance_ms(2_000);
        assert_eq!(outcomes.lock().unwrap().len(), 1);
        // The polling handler stopped itself after the report, so the
        // event queue drains completely.
        platform.device().advance_ms(2_000);
        assert_eq!(platform.device().events().pending(), 0);
        // Subsequent sends prune the finished handler.
        proxy.send_text_message("+91-sup", "again", None).unwrap();
        assert!(proxy.handlers.lock().is_empty());
    }

    #[test]
    fn sms_without_listener_skips_polling() {
        let device = Device::builder().msisdn("+91-me").build();
        device.smsc().register_address("+91-sup");
        let (platform, webview) = page(device);
        let proxy = WebViewSmsProxy::new(&webview).unwrap();
        proxy.send_text_message("+91-sup", "quiet", None).unwrap();
        platform.device().advance_ms(2_000);
        assert!(proxy.handlers.lock().is_empty());
    }

    #[test]
    fn call_proxy_via_bridge() {
        let (platform, webview) = page(Device::builder().build());
        let proxy = WebViewCallProxy::new(&webview).unwrap();
        let id = proxy.make_a_call("+91-sup").unwrap();
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Connecting);
        platform.device().advance_ms(10_000);
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Connected);
        proxy.end_call(id).unwrap();
        assert_eq!(proxy.call_progress(id).unwrap(), CallProgress::Ended);
    }

    #[test]
    fn http_proxy_via_bridge() {
        let device = Device::builder().build();
        device
            .network()
            .register_route("wfm.example", Method::Get, "/ping", |_| {
                HttpResponse::ok("pong")
            });
        let (_platform, webview) = page(device);
        let proxy = WebViewHttpProxy::new(&webview).unwrap();
        let out = proxy
            .request("GET", "http://wfm.example/ping", &[])
            .unwrap();
        assert!(out.is_success());
        assert_eq!(out.body_text(), "pong");
    }

    #[test]
    fn errors_cross_back_as_uniform_proxy_errors() {
        let (_platform, webview) = page(Device::builder().build());
        let proxy = WebViewHttpProxy::new(&webview).unwrap();
        let err = proxy.request("GET", "http://ghost/", &[]).unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::Io);
    }

    #[test]
    fn missing_wrappers_detected() {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        let bare = WebView::new(platform.new_context());
        assert!(WebViewLocationProxy::new(&bare).is_err());
    }

    #[test]
    fn opaque_property_rejected_on_webview() {
        let (_platform, webview) = page(Device::builder().build());
        let proxy = WebViewLocationProxy::new(&webview).unwrap();
        let err = proxy
            .set_property("provider", PropertyValue::opaque(1u8))
            .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::BadPropertyValue);
    }

    #[test]
    fn poll_interval_property_honoured() {
        let (platform, webview) = page(moving_device());
        let proxy = WebViewLocationProxy::new(&webview).unwrap();
        proxy
            .set_property("pollInterval", PropertyValue::Int(5_000))
            .unwrap();
        let events = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
            sink.lock().unwrap().push(e.entering);
        });
        proxy
            .add_proximity_alert(HOME.latitude, HOME.longitude, 0.0, 100.0, -1, listener)
            .unwrap();
        // Entry happens ~40 s in; with 5 s polling the event still
        // arrives, just coarser.
        platform.device().advance_ms(120_000);
        assert_eq!(events.lock().unwrap().len(), 2);
    }
}
