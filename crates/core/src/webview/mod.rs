//! Android WebView binding modules — the implementation plane for
//! JavaScript applications.
//!
//! Follows the paper's three-step procedure (§4.1, Fig. 6):
//!
//! 1. **JavaScript proxy objects** — Java "Wrapper" classes
//!    ([`wrappers`]) connect the JavaScript proxies to the native
//!    platform; they are injected through `addJavaScriptInterface` and a
//!    wrapper factory ([`wrappers::install_wrappers`]).
//! 2. **JavaScript proxy interfaces** — [`proxies`] implement the
//!    uniform proxy traits by invoking the wrapper handle (`swi` in the
//!    figure); native exceptions cross the bridge as **error codes**.
//! 3. **Callback support** — asynchronous notifications (proximity
//!    alerts, delivery reports) are stored in the WebView's Notification
//!    Table keyed by the id returned from the originating invocation and
//!    retrieved by each proxy's polling `notifHandler`.

pub mod proxies;
pub mod wrappers;

pub use proxies::{
    WebViewCallProxy, WebViewHttpProxy, WebViewLocationProxy, WebViewSmsProxy, BATCH_PROPERTY,
};
pub use wrappers::install_wrappers;
