//! Java "Wrapper" classes for the WebView bridge (Fig. 6, step 1).
//!
//! Each wrapper adapts one Android proxy to the
//! [`JavaScriptInterface`] calling convention: dynamically-typed
//! arguments in, dynamically-typed results out, exceptions as error
//! codes, and asynchronous callbacks redirected into the WebView's
//! [`NotificationTable`] (JavaScript cannot receive Java callbacks
//! directly — paper footnote 8).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;
use mobivine_telemetry::span::{ambient, Plane, SpanName};
use mobivine_telemetry::TraceContext;
use mobivine_webview::bridge::{args, BridgeError, ErrorCode, JavaScriptInterface};
use mobivine_webview::notification::{NotificationId, NotificationTable};
use mobivine_webview::wire::{NodeId, WireBuf, WireValue};
use mobivine_webview::{JsValue, WebView};

use crate::android::{AndroidCallProxy, AndroidHttpProxy, AndroidLocationProxy, AndroidSmsProxy};
use crate::api::{CallProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{DeliveryOutcome, Location, ProximityEvent, SharedProximityListener};

/// Interface names the wrappers are injected under.
pub mod interface_names {
    /// The location wrapper's JavaScript global.
    pub const LOCATION: &str = "LocationWrapper";
    /// The SMS wrapper's JavaScript global.
    pub const SMS: &str = "SmsWrapper";
    /// The call wrapper's JavaScript global.
    pub const CALL: &str = "CallWrapper";
    /// The HTTP wrapper's JavaScript global.
    pub const HTTP: &str = "HttpWrapper";
}

/// Maps a uniform proxy error onto the bridge's error-code channel.
fn to_bridge(e: ProxyError) -> BridgeError {
    let code = match e.kind() {
        ProxyErrorKind::Security | ProxyErrorKind::PolicyDenied => ErrorCode::Security,
        ProxyErrorKind::IllegalArgument
        | ProxyErrorKind::UnknownProperty
        | ProxyErrorKind::BadPropertyValue
        | ProxyErrorKind::MissingProperty => ErrorCode::IllegalArgument,
        // AlreadyApplied never reaches applications (the journal layer
        // converts it back into the memoized success before the bridge
        // sees it); should one ever leak, Remote is the honest
        // retry-safe mapping — the original effect committed remotely.
        ProxyErrorKind::Unavailable
        | ProxyErrorKind::CircuitOpen
        | ProxyErrorKind::AlreadyApplied => ErrorCode::Remote,
        ProxyErrorKind::Io => ErrorCode::Io,
        ProxyErrorKind::DeadlineExceeded => ErrorCode::Deadline,
        ProxyErrorKind::Overloaded => ErrorCode::Overloaded,
        ProxyErrorKind::UnsupportedOnPlatform => ErrorCode::ApiRemoved,
    };
    BridgeError {
        code,
        message: e.message().to_owned(),
    }
}

/// Renders the common [`Location`] as the JavaScript object shape the
/// WebView proxies expose.
pub fn location_to_js(location: &Location) -> JsValue {
    JsValue::object([
        ("latitude", location.latitude.into()),
        ("longitude", location.longitude.into()),
        ("altitude", location.altitude.into()),
        ("accuracy", location.accuracy_m.into()),
        ("time", location.timestamp_ms.into()),
        ("speed", location.speed_mps.into()),
        ("bearing", location.course_deg.into()),
    ])
}

/// Parses the JavaScript object shape back into the common
/// [`Location`].
pub fn location_from_js(value: &JsValue) -> Location {
    let num = |key| {
        value
            .get_ref(key)
            .and_then(JsValue::as_number)
            .unwrap_or(0.0)
    };
    Location {
        latitude: num("latitude"),
        longitude: num("longitude"),
        altitude: num("altitude"),
        accuracy_m: num("accuracy"),
        timestamp_ms: num("time") as u64,
        speed_mps: num("speed"),
        course_deg: num("bearing"),
    }
}

/// Encodes a [`Location`] directly into a reply arena — the wire-path
/// counterpart of [`location_to_js`], same key set, no owned tree.
pub fn write_location(buf: &mut WireBuf, location: &Location) -> NodeId {
    let mark = buf.begin();
    let node = buf.push_number(location.latitude);
    buf.stage_entry("latitude", node);
    let node = buf.push_number(location.longitude);
    buf.stage_entry("longitude", node);
    let node = buf.push_number(location.altitude);
    buf.stage_entry("altitude", node);
    let node = buf.push_number(location.accuracy_m);
    buf.stage_entry("accuracy", node);
    let node = buf.push_number(location.timestamp_ms as f64);
    buf.stage_entry("time", node);
    let node = buf.push_number(location.speed_mps);
    buf.stage_entry("speed", node);
    let node = buf.push_number(location.course_deg);
    buf.stage_entry("bearing", node);
    buf.end_object(mark)
}

/// Decodes the wire object shape back into the common [`Location`] —
/// the borrowed-view counterpart of [`location_from_js`].
pub fn location_from_wire(value: WireValue<'_>) -> Location {
    let num = |key| value.get(key).and_then(|v| v.as_number()).unwrap_or(0.0);
    Location {
        latitude: num("latitude"),
        longitude: num("longitude"),
        altitude: num("altitude"),
        accuracy_m: num("accuracy"),
        timestamp_ms: num("time") as u64,
        speed_mps: num("speed"),
        course_deg: num("bearing"),
    }
}

/// Renders a proximity event as a notification object.
pub fn proximity_event_to_js(event: &ProximityEvent) -> JsValue {
    JsValue::object([
        ("refLatitude", event.ref_latitude.into()),
        ("refLongitude", event.ref_longitude.into()),
        ("refAltitude", event.ref_altitude.into()),
        ("entering", event.entering.into()),
        ("currentLocation", location_to_js(&event.current_location)),
    ])
}

/// Parses a notification object back into a proximity event.
pub fn proximity_event_from_js(value: &JsValue) -> ProximityEvent {
    let num = |key| {
        value
            .get_ref(key)
            .and_then(JsValue::as_number)
            .unwrap_or(0.0)
    };
    ProximityEvent {
        ref_latitude: num("refLatitude"),
        ref_longitude: num("refLongitude"),
        ref_altitude: num("refAltitude"),
        entering: value
            .get_ref("entering")
            .and_then(JsValue::as_bool)
            .unwrap_or(false),
        current_location: value
            .get_ref("currentLocation")
            .map(location_from_js)
            .unwrap_or_default(),
    }
}

/// The Bridge-plane span name for a wrapper invocation. Every method a
/// shipped wrapper exposes resolves to a static name (cloning a
/// [`SpanName::Static`] never allocates — the warmed hot path depends
/// on this); unknown combinations fall back to an owned rendering.
fn bridge_span_name(wrapper: &str, method: &str) -> SpanName {
    let known: Option<&'static str> = match (wrapper, method) {
        ("LocationWrapper", "getLocation") => Some("bridge:LocationWrapper.getLocation"),
        ("LocationWrapper", "getPowerDrawn") => Some("bridge:LocationWrapper.getPowerDrawn"),
        ("LocationWrapper", "addProximityAlert") => {
            Some("bridge:LocationWrapper.addProximityAlert")
        }
        ("LocationWrapper", "removeProximityAlert") => {
            Some("bridge:LocationWrapper.removeProximityAlert")
        }
        ("LocationWrapper", "setProperty") => Some("bridge:LocationWrapper.setProperty"),
        ("SmsWrapper", "sendTextMessage") => Some("bridge:SmsWrapper.sendTextMessage"),
        ("SmsWrapper", "setProperty") => Some("bridge:SmsWrapper.setProperty"),
        ("CallWrapper", "makeACall") => Some("bridge:CallWrapper.makeACall"),
        ("CallWrapper", "callProgress") => Some("bridge:CallWrapper.callProgress"),
        ("CallWrapper", "endCall") => Some("bridge:CallWrapper.endCall"),
        ("CallWrapper", "setProperty") => Some("bridge:CallWrapper.setProperty"),
        ("HttpWrapper", "request") => Some("bridge:HttpWrapper.request"),
        ("HttpWrapper", "setProperty") => Some("bridge:HttpWrapper.setProperty"),
        _ => None,
    };
    match known {
        Some(name) => SpanName::from(name),
        None => SpanName::from(format!("bridge:{wrapper}.{method}")),
    }
}

/// The static rendering of an error code for span attributes — matches
/// the code's `Debug` form without formatting on the hot path.
fn error_code_name(code: ErrorCode) -> &'static str {
    match code {
        ErrorCode::Security => "Security",
        ErrorCode::IllegalArgument => "IllegalArgument",
        ErrorCode::Remote => "Remote",
        ErrorCode::Io => "Io",
        ErrorCode::ApiRemoved => "ApiRemoved",
        ErrorCode::Bridge => "Bridge",
        ErrorCode::Deadline => "Deadline",
        ErrorCode::Overloaded => "Overloaded",
    }
}

/// Opens a Bridge-plane span for one wrapper invocation whose parent is
/// the context carried over the bridge as a `traceparent` string (the
/// ambient stack does not cross the marshalling boundary in a real
/// WebView, so the wire string is the only legitimate parent source).
/// Records nothing when no context crossed or no tracer is ambient.
/// Generic over the result payload so the wire path traces without
/// owned [`JsValue`] trees.
fn bridge_traced<T, F>(
    device: &Device,
    wrapper: &str,
    method: &str,
    traceparent: Option<&str>,
    call: F,
) -> Result<T, BridgeError>
where
    F: FnOnce() -> Result<T, BridgeError>,
{
    let parent = traceparent.and_then(TraceContext::parse_traceparent);
    let mut span = parent.and_then(|ctx| {
        ambient::child_of(
            ctx,
            bridge_span_name(wrapper, method),
            Plane::Bridge,
            device.now_ms(),
        )
    });
    let out = call();
    if let Err(e) = &out {
        if let Some(s) = span.as_mut() {
            s.attr("error", error_code_name(e.code));
        }
    }
    if let Some(s) = span {
        s.end(device.now_ms());
    }
    out
}

/// Applies the deadline budget marshalled over the bridge: the ambient
/// deadline stack does not cross the JavaScript↔Java boundary in a real
/// WebView, so the wire value is the only legitimate source. A budget
/// that is already zero fails fast with [`ErrorCode::Deadline`] before
/// the wrapper touches the Android proxy; a positive budget re-opens a
/// native-side cancellation scope for the layers below.
fn with_bridge_deadline<T, F>(
    device: &Device,
    wrapper: &str,
    method: &str,
    deadline_budget_ms: Option<u64>,
    call: F,
) -> Result<T, BridgeError>
where
    F: FnOnce() -> Result<T, BridgeError>,
{
    match deadline_budget_ms {
        Some(0) => Err(BridgeError {
            code: ErrorCode::Deadline,
            message: format!(
                "{wrapper}.{method}: deadline budget exhausted at the bridge; \
                 call rejected before the native proxy"
            ),
        }),
        Some(budget) => {
            let deadline = crate::overload::Deadline::after(device.now_ms(), budget);
            crate::overload::with_deadline(deadline, call)
        }
        None => call(),
    }
}

/// The `LocationWrapper` Java class.
pub struct LocationWrapper {
    proxy: AndroidLocationProxy,
    table: Arc<NotificationTable>,
    device: Device,
    registrations: Mutex<HashMap<u64, SharedProximityListener>>,
}

impl LocationWrapper {
    fn new(proxy: AndroidLocationProxy, table: Arc<NotificationTable>, device: Device) -> Self {
        Self {
            proxy,
            table,
            device,
            registrations: Mutex::new(HashMap::new()),
        }
    }
}

impl JavaScriptInterface for LocationWrapper {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "setProperty" => {
                let key = args::string(call_args, 0)?;
                let value = args::string(call_args, 1)?;
                self.proxy
                    .set_property(key, PropertyValue::str(value))
                    .map_err(to_bridge)?;
                Ok(JsValue::Undefined)
            }
            "getLocation" => {
                let location = self.proxy.get_location().map_err(to_bridge)?;
                Ok(location_to_js(&location))
            }
            // Reads the GPS line of the device power ledger — paired
            // with `getLocation` in the proxy plane's multi-read batch.
            "getPowerDrawn" => Ok(JsValue::Number(self.device.power().component_total("gps"))),
            "addProximityAlert" => {
                let latitude = args::number(call_args, 0)?;
                let longitude = args::number(call_args, 1)?;
                let altitude = args::number(call_args, 2)?;
                let radius = args::number(call_args, 3)?;
                let timer = args::number(call_args, 4)? as i64;
                // Allocate the notification-table row whose id is
                // returned to the JavaScript side for polling.
                let notif_id = self.table.allocate();
                let table = Arc::clone(&self.table);
                let listener: SharedProximityListener = Arc::new(move |e: &ProximityEvent| {
                    table.post(notif_id, proximity_event_to_js(e));
                });
                self.proxy
                    .add_proximity_alert(
                        latitude,
                        longitude,
                        altitude,
                        radius,
                        timer,
                        Arc::clone(&listener),
                    )
                    .map_err(to_bridge)?;
                self.registrations
                    .lock()
                    .insert(notif_id_raw(notif_id), listener);
                Ok(JsValue::Number(notif_id_raw(notif_id) as f64))
            }
            "removeProximityAlert" => {
                let raw = args::number(call_args, 0)? as u64;
                let listener = self.registrations.lock().remove(&raw);
                match listener {
                    Some(listener) => {
                        let removed = self
                            .proxy
                            .remove_proximity_alert(&listener)
                            .map_err(to_bridge)?;
                        Ok(JsValue::Bool(removed))
                    }
                    None => Ok(JsValue::Bool(false)),
                }
            }
            other => Err(BridgeError::bridge(format!(
                "LocationWrapper has no method {other}"
            ))),
        }
    }

    fn call_traced(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        bridge_traced(&self.device, "LocationWrapper", method, traceparent, || {
            self.call(method, call_args)
        })
    }

    fn call_with_context(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        with_bridge_deadline(
            &self.device,
            "LocationWrapper",
            method,
            deadline_budget_ms,
            || self.call_traced(method, call_args, traceparent),
        )
    }

    // The zero-copy path for the hot read methods: the location is
    // encoded straight into the caller's reply arena, so a warmed call
    // crosses the bridge without owned `JsValue` trees. Cold methods
    // fall back to the owned-value chain.
    fn call_wire(
        &self,
        method: &str,
        call_args: WireValue<'_>,
        reply: &mut WireBuf,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<NodeId, BridgeError> {
        match method {
            "getLocation" => with_bridge_deadline(
                &self.device,
                "LocationWrapper",
                method,
                deadline_budget_ms,
                || {
                    bridge_traced(&self.device, "LocationWrapper", method, traceparent, || {
                        let location = self.proxy.get_location().map_err(to_bridge)?;
                        Ok(write_location(reply, &location))
                    })
                },
            ),
            "getPowerDrawn" => with_bridge_deadline(
                &self.device,
                "LocationWrapper",
                method,
                deadline_budget_ms,
                || {
                    bridge_traced(&self.device, "LocationWrapper", method, traceparent, || {
                        Ok(reply.push_number(self.device.power().component_total("gps")))
                    })
                },
            ),
            _ => mobivine_webview::bridge::call_wire_via_values(
                self,
                method,
                call_args,
                reply,
                traceparent,
                deadline_budget_ms,
            ),
        }
    }
}

fn notif_id_raw(id: NotificationId) -> u64 {
    id.raw()
}

/// The `SmsWrapper` Java class (the worked example of Fig. 6).
pub struct SmsWrapper {
    proxy: AndroidSmsProxy,
    table: Arc<NotificationTable>,
    device: Device,
}

impl SmsWrapper {
    fn new(proxy: AndroidSmsProxy, table: Arc<NotificationTable>, device: Device) -> Self {
        Self {
            proxy,
            table,
            device,
        }
    }

    /// The shared send path behind both calling conventions: arguments
    /// arrive borrowed, the optional delivery report is wired into the
    /// notification table, and `(messageId, notifId)` comes back as
    /// plain values for the caller to encode.
    fn send(
        &self,
        destination: &str,
        text: &str,
        want_report: bool,
    ) -> Result<(u64, Option<u64>), BridgeError> {
        let (notif_raw, listener) = if want_report {
            let notif_id = self.table.allocate();
            let table = Arc::clone(&self.table);
            let listener: Arc<dyn crate::types::DeliveryListener> =
                Arc::new(move |id: u64, outcome: DeliveryOutcome| {
                    table.post(
                        notif_id,
                        JsValue::object([
                            ("messageId", id.into()),
                            ("delivered", (outcome == DeliveryOutcome::Delivered).into()),
                        ]),
                    );
                });
            (Some(notif_id_raw(notif_id)), Some(listener))
        } else {
            (None, None)
        };
        let message_id = self
            .proxy
            .send_text_message(destination, text, listener)
            .map_err(to_bridge)?;
        Ok((message_id, notif_raw))
    }
}

impl JavaScriptInterface for SmsWrapper {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "setProperty" => {
                let key = args::string(call_args, 0)?;
                let value = args::string(call_args, 1)?;
                self.proxy
                    .set_property(key, PropertyValue::str(value))
                    .map_err(to_bridge)?;
                Ok(JsValue::Undefined)
            }
            // `sendTextMsg` in Fig. 6: all parameters except the
            // callback cross the bridge; a Callback object posts the
            // delivery notification under the returned id.
            "sendTextMessage" => {
                let destination = args::string(call_args, 0)?;
                let text = args::string(call_args, 1)?;
                let want_report = args::bool_or(call_args, 2, false);
                let (message_id, notif_raw) = self.send(destination, text, want_report)?;
                Ok(JsValue::object([
                    ("messageId", message_id.into()),
                    (
                        "notifId",
                        notif_raw.map(JsValue::from).unwrap_or(JsValue::Null),
                    ),
                ]))
            }
            other => Err(BridgeError::bridge(format!(
                "SmsWrapper has no method {other}"
            ))),
        }
    }

    fn call_traced(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        bridge_traced(&self.device, "SmsWrapper", method, traceparent, || {
            self.call(method, call_args)
        })
    }

    fn call_with_context(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        with_bridge_deadline(
            &self.device,
            "SmsWrapper",
            method,
            deadline_budget_ms,
            || self.call_traced(method, call_args, traceparent),
        )
    }

    // The zero-copy path for the hot send method: destination and text
    // are read as borrowed views out of the call arena and the result
    // object is encoded straight into the reply arena.
    fn call_wire(
        &self,
        method: &str,
        call_args: WireValue<'_>,
        reply: &mut WireBuf,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<NodeId, BridgeError> {
        match method {
            "sendTextMessage" => with_bridge_deadline(
                &self.device,
                "SmsWrapper",
                method,
                deadline_budget_ms,
                || {
                    bridge_traced(&self.device, "SmsWrapper", method, traceparent, || {
                        let destination = call_args
                            .item(0)
                            .and_then(|v| v.as_str())
                            .ok_or_else(|| BridgeError::bridge("argument 0 must be a string"))?;
                        let text = call_args
                            .item(1)
                            .and_then(|v| v.as_str())
                            .ok_or_else(|| BridgeError::bridge("argument 1 must be a string"))?;
                        let want_report =
                            call_args.item(2).and_then(|v| v.as_bool()).unwrap_or(false);
                        let (message_id, notif_raw) = self.send(destination, text, want_report)?;
                        let mark = reply.begin();
                        let node = reply.push_number(message_id as f64);
                        reply.stage_entry("messageId", node);
                        let node = match notif_raw {
                            Some(raw) => reply.push_number(raw as f64),
                            None => reply.push_null(),
                        };
                        reply.stage_entry("notifId", node);
                        Ok(reply.end_object(mark))
                    })
                },
            ),
            _ => mobivine_webview::bridge::call_wire_via_values(
                self,
                method,
                call_args,
                reply,
                traceparent,
                deadline_budget_ms,
            ),
        }
    }
}

/// The `CallWrapper` Java class.
pub struct CallWrapper {
    proxy: AndroidCallProxy,
    device: Device,
}

impl JavaScriptInterface for CallWrapper {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "setProperty" => {
                let key = args::string(call_args, 0)?;
                let value = args::string(call_args, 1)?;
                self.proxy
                    .set_property(key, PropertyValue::str(value))
                    .map_err(to_bridge)?;
                Ok(JsValue::Undefined)
            }
            "makeACall" => {
                let number = args::string(call_args, 0)?;
                let id = self.proxy.make_a_call(number).map_err(to_bridge)?;
                Ok(JsValue::Number(id as f64))
            }
            "callProgress" => {
                let id = args::number(call_args, 0)? as u64;
                let progress = self.proxy.call_progress(id).map_err(to_bridge)?;
                Ok(JsValue::str(match progress {
                    crate::types::CallProgress::Connecting => "connecting",
                    crate::types::CallProgress::Connected => "connected",
                    crate::types::CallProgress::Ended => "ended",
                }))
            }
            "endCall" => {
                let id = args::number(call_args, 0)? as u64;
                self.proxy.end_call(id).map_err(to_bridge)?;
                Ok(JsValue::Undefined)
            }
            other => Err(BridgeError::bridge(format!(
                "CallWrapper has no method {other}"
            ))),
        }
    }

    fn call_traced(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        bridge_traced(&self.device, "CallWrapper", method, traceparent, || {
            self.call(method, call_args)
        })
    }

    fn call_with_context(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        with_bridge_deadline(
            &self.device,
            "CallWrapper",
            method,
            deadline_budget_ms,
            || self.call_traced(method, call_args, traceparent),
        )
    }
}

/// The `HttpWrapper` Java class.
pub struct HttpWrapper {
    proxy: AndroidHttpProxy,
    device: Device,
}

impl JavaScriptInterface for HttpWrapper {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "setProperty" => {
                let key = args::string(call_args, 0)?;
                let value = args::string(call_args, 1)?;
                self.proxy
                    .set_property(key, PropertyValue::str(value))
                    .map_err(to_bridge)?;
                Ok(JsValue::Undefined)
            }
            "request" => {
                let http_method = args::string(call_args, 0)?;
                let url = args::string(call_args, 1)?;
                let body = args::string(call_args, 2).unwrap_or("");
                let result = self
                    .proxy
                    .request(http_method, url, body.as_bytes())
                    .map_err(to_bridge)?;
                Ok(JsValue::object([
                    ("status", JsValue::Number(result.status as f64)),
                    ("body", JsValue::Str(result.body_text())),
                ]))
            }
            other => Err(BridgeError::bridge(format!(
                "HttpWrapper has no method {other}"
            ))),
        }
    }

    fn call_traced(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        bridge_traced(&self.device, "HttpWrapper", method, traceparent, || {
            self.call(method, call_args)
        })
    }

    fn call_with_context(
        &self,
        method: &str,
        call_args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        with_bridge_deadline(
            &self.device,
            "HttpWrapper",
            method,
            deadline_budget_ms,
            || self.call_traced(method, call_args, traceparent),
        )
    }
}

/// The wrapper factory (`SmsWrapperFactory` generalized): constructs
/// every wrapper over Android proxies bound to the WebView's context and
/// injects them with `addJavaScriptInterface`. Idempotent per WebView —
/// re-installation replaces the wrappers.
pub fn install_wrappers(webview: &WebView) {
    let ctx = webview.context().clone();
    let device = ctx.device().clone();
    let table = Arc::clone(webview.notifications());

    let location_proxy = AndroidLocationProxy::new();
    location_proxy
        .set_property("context", PropertyValue::opaque(ctx.clone()))
        .expect("catalog declares the context property");
    webview.add_javascript_interface(
        Arc::new(LocationWrapper::new(
            location_proxy,
            Arc::clone(&table),
            device.clone(),
        )),
        interface_names::LOCATION,
    );

    let sms_proxy = AndroidSmsProxy::new();
    sms_proxy
        .set_property("context", PropertyValue::opaque(ctx.clone()))
        .expect("catalog declares the context property");
    webview.add_javascript_interface(
        Arc::new(SmsWrapper::new(sms_proxy, table, device.clone())),
        interface_names::SMS,
    );

    let call_proxy = AndroidCallProxy::new();
    call_proxy
        .set_property("context", PropertyValue::opaque(ctx.clone()))
        .expect("catalog declares the context property");
    webview.add_javascript_interface(
        Arc::new(CallWrapper {
            proxy: call_proxy,
            device: device.clone(),
        }),
        interface_names::CALL,
    );

    let http_proxy = AndroidHttpProxy::new();
    http_proxy
        .set_property("context", PropertyValue::opaque(ctx))
        .expect("catalog declares the context property");
    webview.add_javascript_interface(
        Arc::new(HttpWrapper {
            proxy: http_proxy,
            device,
        }),
        interface_names::HTTP,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;

    fn webview() -> (AndroidPlatform, WebView) {
        let platform = AndroidPlatform::new(
            Device::builder().msisdn("+91-me").build(),
            SdkVersion::M5Rc15,
        );
        let webview = WebView::new(platform.new_context());
        install_wrappers(&webview);
        (platform, webview)
    }

    #[test]
    fn factory_installs_all_wrappers() {
        let (_platform, webview) = webview();
        assert_eq!(
            webview.interface_names(),
            vec![
                "CallWrapper",
                "HttpWrapper",
                "LocationWrapper",
                "SmsWrapper"
            ]
        );
    }

    #[test]
    fn location_round_trips_js_shape() {
        let loc = Location {
            latitude: 28.5,
            longitude: 77.3,
            altitude: 210.0,
            accuracy_m: 5.0,
            timestamp_ms: 1234,
            speed_mps: 2.0,
            course_deg: 45.0,
        };
        assert_eq!(location_from_js(&location_to_js(&loc)), loc);
    }

    #[test]
    fn proximity_event_round_trips_js_shape() {
        let event = ProximityEvent {
            ref_latitude: 1.0,
            ref_longitude: 2.0,
            ref_altitude: 3.0,
            entering: true,
            current_location: Location {
                latitude: 1.1,
                ..Location::default()
            },
        };
        assert_eq!(
            proximity_event_from_js(&proximity_event_to_js(&event)),
            event
        );
    }

    #[test]
    fn sms_wrapper_returns_message_and_notif_ids() {
        let (platform, webview) = webview();
        platform.device().smsc().register_address("+91-sup");
        let sms = webview.js_interface(interface_names::SMS).unwrap();
        let out = sms
            .invoke(
                "sendTextMessage",
                &[
                    JsValue::str("+91-sup"),
                    JsValue::str("hello"),
                    JsValue::Bool(true),
                ],
            )
            .unwrap();
        assert!(out.get("messageId").as_number().unwrap() > 0.0);
        let notif_raw = out.get("notifId").as_number().unwrap() as u64;
        // After delivery, the notification appears in the table.
        platform.device().advance_ms(1_000);
        let id = NotificationId::from_raw(notif_raw).unwrap();
        let pending = webview.notifications().take(id);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].get("delivered"), JsValue::Bool(true));
    }

    #[test]
    fn security_errors_cross_as_error_codes() {
        use mobivine_android::permissions::PermissionSet;
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let webview = WebView::new(platform.new_context());
        install_wrappers(&webview);
        let sms = webview.js_interface(interface_names::SMS).unwrap();
        let err = sms
            .invoke(
                "sendTextMessage",
                &[JsValue::str("+1"), JsValue::str("x"), JsValue::Bool(false)],
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Security);
    }

    #[test]
    fn zero_deadline_budget_fails_fast_at_the_bridge() {
        let (platform, webview) = webview();
        platform.device().smsc().register_address("+91-sup");
        let sms = webview.js_interface(interface_names::SMS).unwrap();
        let send_args = [
            JsValue::str("+91-sup"),
            JsValue::str("too late"),
            JsValue::Bool(false),
        ];

        // Context path: the exhausted budget is rejected at the bridge.
        let err = sms
            .invoke_with_context("sendTextMessage", &send_args, None, Some(0))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Deadline);
        assert!(
            err.message.contains("deadline budget exhausted"),
            "{}",
            err.message
        );

        // Wire path: the same fail-fast, surfaced from the arena
        // crossing before any argument decoding pays off.
        let err = sms
            .invoke_wire(
                "sendTextMessage",
                None,
                Some(0),
                |call| {
                    let mark = call.begin();
                    let to = call.push_str("+91-sup");
                    call.stage_item(to);
                    let body = call.push_str("too late");
                    call.stage_item(body);
                    let report = call.push_bool(false);
                    call.stage_item(report);
                    call.end_array(mark)
                },
                |reply| Ok(reply.to_js()),
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Deadline);

        // Batched path: the exhausted budget poisons each entry with
        // its own deadline code instead of failing the whole crossing.
        let err = sms
            .invoke_batch(
                None,
                Some(0),
                |call| {
                    let args = call.empty_args();
                    call.push_frame("getServiceCenterAddress", args);
                },
                |replies| match replies.get(0) {
                    Some(Ok(value)) => Ok(value.to_js()),
                    Some(Err((code, message))) => Err(BridgeError {
                        code,
                        message: message.to_owned(),
                    }),
                    None => Err(BridgeError::bridge("missing reply")),
                },
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Deadline);

        // None of it reached the platform: nothing was ever submitted.
        platform.device().advance_ms(5_000);
        assert!(platform.device().smsc().inbox("+91-sup").is_empty());

        // A positive budget goes through — it was the budget, not the
        // call, that the bridge rejected.
        sms.invoke_with_context("sendTextMessage", &send_args, None, Some(5_000))
            .unwrap();
        platform.device().advance_ms(5_000);
        assert_eq!(platform.device().smsc().inbox("+91-sup").len(), 1);
    }

    #[test]
    fn unknown_method_is_bridge_error() {
        let (_platform, webview) = webview();
        let http = webview.js_interface(interface_names::HTTP).unwrap();
        assert_eq!(
            http.invoke("download", &[]).unwrap_err().code,
            ErrorCode::Bridge
        );
    }
}
