//! Plane-aware telemetry for the M-Proxy call path.
//!
//! The paper's layering — application → M-Proxy semantic plane →
//! enrichment → binding plane → platform module — is exactly the shape
//! an observability pipeline wants to see: every uniform call descends
//! the same stack on every platform, so one span per layer yields
//! directly comparable traces across Android, S60 and the WebView.
//!
//! This module provides the core-side instrumentation:
//!
//! * [`TelemetryRuntime`] — one [`Tracer`] plus one shared
//!   [`MetricsRegistry`] (the device's, so device subsystems and
//!   middleware publish into the same registry),
//! * traced decorators ([`TracedLocationProxy`], [`TracedSmsProxy`],
//!   [`TracedHttpProxy`], [`TracedCallProxy`]) that the
//!   [`crate::registry::Mobivine`] runtime installs **twice** per
//!   proxy: once at the outermost semantic plane
//!   ([`Plane::Proxy`]) and once at the binding plane
//!   ([`Plane::Binding`]) below the resilience layer — so retries show
//!   up as multiple binding-plane child spans under one proxy-plane
//!   span.
//!
//! The proxy-plane decorator also feeds the metrics registry: a
//! `proxy_calls_total` / `proxy_errors_total` counter pair and a
//! `proxy_call_ms` latency histogram, all labelled
//! `(proxy, method, platform)`.
//!
//! **The per-call path performs no heap allocation and takes no global
//! lock.** Everything string-shaped is resolved once, at decorator
//! construction (`Mobivine::with_telemetry` wiring time): each method
//! gets a pre-formatted [`SpanName`] and — at the proxy plane — a
//! [`CallInstruments`] bundle of pre-resolved counter/histogram
//! handles. A traced call is then: clone two `Arc` span names, two or
//! three atomic increments, one histogram bucket add, and a record
//! moved into a per-thread span ring. `Labels::call` must never appear
//! inside the per-call methods (CI greps for it); it belongs in
//! [`CallInstruments::resolve`] alone.
//!
//! The proxy plane also closes the incident-debugging loop: it stamps
//! `deadline = blown` on the span when the ambient
//! [`crate::overload::Deadline`] expired mid-call (so the flight
//! recorder's tail-based policy can promote the trace), attaches the
//! promoted trace id to the latency histogram bucket as an OpenMetrics
//! exemplar, and feeds `(ok, latency)` into any [`SloEngine`]
//! objectives watching the series — all through handles resolved at
//! wiring time, so the healthy warmed path stays allocation-free.
//!
//! Spans parent implicitly through the ambient span stack
//! ([`mobivine_telemetry::span::ambient`]): if the application opened
//! its own root span the proxy call nests under it; otherwise the
//! proxy-plane decorator starts a fresh trace.

use std::sync::Arc;

use mobivine_device::Device;
use mobivine_telemetry::recorder::take_promotion;
use mobivine_telemetry::span::{ambient, Plane, SpanName, DEFAULT_SPAN_RETENTION};
use mobivine_telemetry::{
    Counter, Histogram, IncidentStore, Labels, MetricsRegistry, PromotionPolicy, Recorder,
    RecorderCounters, SloEngine, SloRecorder, Tracer,
};

use crate::api::{CallProxy, HttpProxy, LocationProxy, ProxyBase, SmsProxy};
use crate::error::{ProxyError, ProxyErrorKind};
use crate::property::PropertyValue;
use crate::types::{CallProgress, DeliveryListener, HttpResult, Location, SharedProximityListener};

/// One runtime's telemetry wiring: the tracer collecting span records
/// (with its flight-recorder promotion policy), the metrics registry
/// every layer publishes into, and — when configured — the SLO engine
/// grading proxy-plane outcomes against declared objectives.
#[derive(Clone)]
pub struct TelemetryRuntime {
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    slo: Option<Arc<SloEngine>>,
}

impl TelemetryRuntime {
    /// Creates a runtime collecting spans into a fresh [`Tracer`] and
    /// metrics into `metrics` (usually the device's registry, so the
    /// whole call path shares one exporter surface). The flight
    /// recorder is on by default with [`PromotionPolicy::default`]:
    /// errored and deadline-blown traces are promoted into the
    /// incident store before ring wrap-around can overwrite them.
    pub fn new(metrics: Arc<MetricsRegistry>) -> Self {
        Self::with_retention(metrics, DEFAULT_SPAN_RETENTION)
    }

    /// Like [`TelemetryRuntime::new`], but the tracer's per-thread
    /// span rings keep at most `span_retention` records each — the
    /// knob fleet-scale runs use to bound trace memory per device.
    pub fn with_retention(metrics: Arc<MetricsRegistry>, span_retention: usize) -> Self {
        Self::with_recorder(metrics, span_retention, PromotionPolicy::default())
    }

    /// Full-control constructor: span retention plus an explicit
    /// tail-based [`PromotionPolicy`]. The recorder's health counters
    /// (`telemetry_spans_evicted_total`,
    /// `telemetry_traces_promoted_total`,
    /// `telemetry_promotions_dropped_total`) are resolved against
    /// `metrics` here, once, so bumping them on the call path is pure
    /// atomics.
    pub fn with_recorder(
        metrics: Arc<MetricsRegistry>,
        span_retention: usize,
        policy: PromotionPolicy,
    ) -> Self {
        let tracer = Tracer::with_recorder(span_retention, Recorder::new(policy));
        let none = Labels::empty();
        tracer.install_counters(RecorderCounters {
            evicted: metrics.counter("telemetry_spans_evicted_total", &none),
            promoted: metrics.counter("telemetry_traces_promoted_total", &none),
            promoted_dropped: metrics.counter("telemetry_promotions_dropped_total", &none),
        });
        Self {
            tracer,
            metrics,
            slo: None,
        }
    }

    /// Attaches an SLO engine; proxy-plane decorators wired after this
    /// call feed every finished call's `(ok, latency)` into the
    /// engine's matching objectives.
    pub fn with_slo(mut self, slo: Arc<SloEngine>) -> Self {
        self.slo = Some(slo);
        self
    }

    /// The tracer holding every finished span.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The SLO engine, when one was attached via
    /// [`TelemetryRuntime::with_slo`].
    pub fn slo(&self) -> Option<&Arc<SloEngine>> {
        self.slo.as_ref()
    }

    /// The bounded store of promoted (incident) traces, when the
    /// tracer carries a flight recorder — always the case for runtimes
    /// built through this type's constructors.
    pub fn incidents(&self) -> Option<&Arc<IncidentStore>> {
        self.tracer.incident_store()
    }
}

/// The static name of an error kind, for the span `error` attribute.
/// Matches the `Debug` rendering the attribute used to carry, without
/// the per-error `format!`.
pub(crate) fn kind_name(kind: ProxyErrorKind) -> &'static str {
    match kind {
        ProxyErrorKind::Security => "Security",
        ProxyErrorKind::IllegalArgument => "IllegalArgument",
        ProxyErrorKind::Unavailable => "Unavailable",
        ProxyErrorKind::Io => "Io",
        ProxyErrorKind::UnsupportedOnPlatform => "UnsupportedOnPlatform",
        ProxyErrorKind::UnknownProperty => "UnknownProperty",
        ProxyErrorKind::BadPropertyValue => "BadPropertyValue",
        ProxyErrorKind::MissingProperty => "MissingProperty",
        ProxyErrorKind::PolicyDenied => "PolicyDenied",
        ProxyErrorKind::CircuitOpen => "CircuitOpen",
        ProxyErrorKind::DeadlineExceeded => "DeadlineExceeded",
        ProxyErrorKind::Overloaded => "Overloaded",
        ProxyErrorKind::AlreadyApplied => "AlreadyApplied",
    }
}

/// The pre-resolved metric handles for one `(proxy, method, platform)`
/// series: the call/error counter pair and the latency histogram the
/// proxy plane publishes. Resolved once at wiring time; recording
/// through them is pure atomics.
struct CallInstruments {
    calls: Counter,
    errors: Counter,
    latency: Histogram,
}

impl CallInstruments {
    /// The only sanctioned `Labels::call` construction on the traced
    /// path — everything downstream reuses these handles.
    fn resolve(
        metrics: &MetricsRegistry,
        proxy: &'static str,
        method: &'static str,
        platform: &str,
    ) -> Self {
        let labels = Labels::call(proxy, method, platform);
        Self {
            calls: metrics.counter("proxy_calls_total", &labels),
            errors: metrics.counter("proxy_errors_total", &labels),
            latency: metrics.histogram("proxy_call_ms", &labels),
        }
    }
}

/// One method's wiring-time state: its pre-formatted span name and, at
/// the proxy plane, its metric handles and the SLO recorder feeding
/// whichever declared objectives watch this `(proxy, method,
/// platform)` series.
struct MethodInstrument {
    method: &'static str,
    span_name: SpanName,
    instruments: Option<CallInstruments>,
    slo: Option<SloRecorder>,
}

/// The per-decorator instrumentation kit: where to time, trace and
/// count. All names and handles are resolved in [`Instrument::new`];
/// the per-call [`Instrument::traced`] only copies symbols and bumps
/// atomics.
struct Instrument {
    device: Device,
    tracer: Tracer,
    plane: Plane,
    platform: SpanName,
    methods: Vec<MethodInstrument>,
}

impl Instrument {
    fn new(
        device: Device,
        runtime: &TelemetryRuntime,
        plane: Plane,
        proxy: &'static str,
        platform: &str,
        methods: &[&'static str],
    ) -> Self {
        let methods = methods
            .iter()
            .map(|&method| MethodInstrument {
                method,
                span_name: SpanName::from(format!("{plane}:{proxy}.{method}")),
                instruments: (plane == Plane::Proxy)
                    .then(|| CallInstruments::resolve(&runtime.metrics, proxy, method, platform)),
                slo: (plane == Plane::Proxy)
                    .then_some(runtime.slo.as_ref())
                    .flatten()
                    .map(|engine| engine.recorder(proxy, method, platform))
                    .filter(|recorder| !recorder.is_empty()),
            })
            .collect();
        Self {
            device,
            tracer: runtime.tracer.clone(),
            plane,
            platform: SpanName::from(platform.to_owned()),
            methods,
        }
    }

    fn method(&self, method: &'static str) -> &MethodInstrument {
        self.methods
            .iter()
            .find(|m| m.method == method)
            .expect("method listed in the traced_proxy! method table")
    }

    /// Runs one proxy call inside a span; the proxy plane additionally
    /// publishes call/error counters, the latency histogram (with an
    /// OpenMetrics exemplar when the call's trace was just promoted),
    /// and the SLO recorder for this series.
    ///
    /// The span is ended *before* the latency record so that when this
    /// span is a trace root, the flight recorder's tail-based
    /// classification has already run — [`take_promotion`] then hands
    /// back the promoted [`mobivine_telemetry::TraceId`] to pin on the
    /// latency bucket as an exemplar.
    fn traced<T>(
        &self,
        method: &'static str,
        call: impl FnOnce() -> Result<T, ProxyError>,
    ) -> Result<T, ProxyError> {
        let entry = self.method(method);
        let now = self.device.now_ms();
        let mut span = ambient::child(entry.span_name.clone(), self.plane, now)
            .unwrap_or_else(|| self.tracer.root(entry.span_name.clone(), self.plane, now));
        span.attr("platform", self.platform.clone());
        let result = call();
        let end = self.device.now_ms();
        if let Err(e) = &result {
            span.attr("error", kind_name(e.kind()));
        }
        if entry.instruments.is_some() {
            if let Some(deadline) = crate::overload::current_deadline() {
                if end > deadline.expires_at_ms() {
                    span.attr("deadline", "blown");
                }
            }
        }
        span.end(end);
        if let Some(instruments) = &entry.instruments {
            instruments.calls.inc();
            if result.is_err() {
                instruments.errors.inc();
            }
            let latency = end.saturating_sub(now);
            instruments.latency.record(latency);
            if let Some(trace_id) = take_promotion(&self.tracer) {
                instruments.latency.attach_exemplar(latency, trace_id);
            }
            if let Some(slo) = &entry.slo {
                slo.record(end, result.is_ok(), latency);
            }
        }
        result
    }
}

macro_rules! traced_proxy {
    ($(#[$doc:meta])* $name:ident, $trait:ident, $label:literal,
     [$($method:literal),+ $(,)?]) => {
        $(#[$doc])*
        pub struct $name {
            inner: Arc<dyn $trait>,
            instrument: Instrument,
        }

        impl $name {
            /// Wraps `inner` at `plane`, timing against `device`'s
            /// simulated clock and reporting through `runtime`. Span
            /// names and (proxy-plane) metric handles for every method
            /// are resolved here, once.
            pub fn new(
                inner: Arc<dyn $trait>,
                device: Device,
                runtime: &TelemetryRuntime,
                plane: Plane,
                platform: &str,
            ) -> Self {
                Self {
                    inner,
                    instrument: Instrument::new(
                        device,
                        runtime,
                        plane,
                        $label,
                        platform,
                        &[$($method),+],
                    ),
                }
            }
        }

        impl ProxyBase for $name {
            fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError> {
                // Property writes are local configuration, not platform
                // calls — forwarded untraced.
                self.inner.set_property(key, value)
            }
        }
    };
}

traced_proxy!(
    /// [`LocationProxy`] decorator recording one span (and, at the
    /// proxy plane, metrics) per call.
    TracedLocationProxy,
    LocationProxy,
    "Location",
    [
        "addProximityAlert",
        "removeProximityAlert",
        "getLocation",
        "getLocationWithPower"
    ]
);

impl LocationProxy for TracedLocationProxy {
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError> {
        self.instrument.traced("addProximityAlert", || {
            self.inner
                .add_proximity_alert(latitude, longitude, altitude, radius, timer_s, listener)
        })
    }

    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError> {
        self.instrument.traced("removeProximityAlert", || {
            self.inner.remove_proximity_alert(listener)
        })
    }

    fn get_location(&self) -> Result<Location, ProxyError> {
        self.instrument
            .traced("getLocation", || self.inner.get_location())
    }

    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        self.instrument.traced("getLocationWithPower", || {
            self.inner.get_location_with_power()
        })
    }
}

traced_proxy!(
    /// [`SmsProxy`] decorator recording one span (and, at the proxy
    /// plane, metrics) per call.
    TracedSmsProxy,
    SmsProxy,
    "SMS",
    ["sendTextMessage"]
);

impl SmsProxy for TracedSmsProxy {
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError> {
        self.instrument.traced("sendTextMessage", || {
            self.inner
                .send_text_message(destination, text, delivery_listener)
        })
    }
}

traced_proxy!(
    /// [`HttpProxy`] decorator recording one span (and, at the proxy
    /// plane, metrics) per call.
    TracedHttpProxy,
    HttpProxy,
    "Http",
    ["request"]
);

impl HttpProxy for TracedHttpProxy {
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError> {
        self.instrument
            .traced("request", || self.inner.request(method, url, body))
    }
}

traced_proxy!(
    /// [`CallProxy`] decorator recording one span (and, at the proxy
    /// plane, metrics) per call.
    TracedCallProxy,
    CallProxy,
    "Call",
    ["makeACall", "callProgress", "endCall"]
);

impl CallProxy for TracedCallProxy {
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError> {
        self.instrument
            .traced("makeACall", || self.inner.make_a_call(number))
    }

    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError> {
        self.instrument
            .traced("callProgress", || self.inner.call_progress(call_id))
    }

    fn end_call(&self, call_id: u64) -> Result<(), ProxyError> {
        self.instrument
            .traced("endCall", || self.inner.end_call(call_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_telemetry::export::{chrome_trace_json, validate_chrome_trace};
    use mobivine_telemetry::span::validate_tree;

    struct FixedLocation;

    impl ProxyBase for FixedLocation {
        fn set_property(&self, _key: &str, _value: PropertyValue) -> Result<(), ProxyError> {
            Ok(())
        }
    }

    impl LocationProxy for FixedLocation {
        fn add_proximity_alert(
            &self,
            _latitude: f64,
            _longitude: f64,
            _altitude: f64,
            _radius: f64,
            _timer_s: i64,
            _listener: SharedProximityListener,
        ) -> Result<(), ProxyError> {
            Ok(())
        }

        fn remove_proximity_alert(
            &self,
            _listener: &SharedProximityListener,
        ) -> Result<bool, ProxyError> {
            Ok(true)
        }

        fn get_location(&self) -> Result<Location, ProxyError> {
            Ok(Location::default())
        }
    }

    fn runtime() -> (Device, TelemetryRuntime) {
        let device = Device::builder().build();
        let telemetry = TelemetryRuntime::new(Arc::clone(device.metrics()));
        (device, telemetry)
    }

    #[test]
    fn proxy_plane_records_span_and_metrics() {
        let (device, telemetry) = runtime();
        let proxy = TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device,
            &telemetry,
            Plane::Proxy,
            "android",
        );
        proxy.get_location().unwrap();
        let spans = telemetry.tracer().finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "proxy:Location.getLocation");
        let labels = Labels::call("Location", "getLocation", "android");
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("proxy_calls_total", &labels),
            1
        );
        assert_eq!(
            telemetry
                .metrics()
                .histogram("proxy_call_ms", &labels)
                .count(),
            1
        );
    }

    #[test]
    fn instruments_are_resolved_at_wiring_time() {
        let (device, telemetry) = runtime();
        let proxy = TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device,
            &telemetry,
            Plane::Proxy,
            "android",
        );
        // The series exist (at zero) before the first call: resolution
        // happened in `new`, not per call.
        let labels = Labels::call("Location", "getLocation", "android");
        assert_eq!(
            telemetry
                .metrics()
                .histogram("proxy_call_ms", &labels)
                .count(),
            0
        );
        for _ in 0..3 {
            proxy.get_location().unwrap();
        }
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("proxy_calls_total", &labels),
            3
        );
    }

    #[test]
    fn binding_plane_skips_metrics_but_nests_under_proxy_plane() {
        let (device, telemetry) = runtime();
        let binding: Arc<dyn LocationProxy> = Arc::new(TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device.clone(),
            &telemetry,
            Plane::Binding,
            "s60",
        ));
        let proxy = TracedLocationProxy::new(binding, device, &telemetry, Plane::Proxy, "s60");
        proxy.get_location().unwrap();
        let spans = telemetry.tracer().finished();
        assert_eq!(spans.len(), 2);
        validate_tree(&spans).expect("single connected tree");
        let binding_span = spans
            .iter()
            .find(|s| s.plane == Plane::Binding)
            .expect("binding span");
        let proxy_span = spans.iter().find(|s| s.plane == Plane::Proxy).unwrap();
        assert_eq!(binding_span.parent_id, Some(proxy_span.span_id));
        let labels = Labels::call("Location", "getLocation", "s60");
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("proxy_calls_total", &labels),
            1,
            "only the proxy plane counts"
        );
    }

    #[test]
    fn errors_are_counted_and_attributed() {
        struct Failing;
        impl ProxyBase for Failing {
            fn set_property(&self, _k: &str, _v: PropertyValue) -> Result<(), ProxyError> {
                Ok(())
            }
        }
        impl HttpProxy for Failing {
            fn request(&self, _m: &str, _u: &str, _b: &[u8]) -> Result<HttpResult, ProxyError> {
                Err(ProxyError::new(crate::error::ProxyErrorKind::Io, "down"))
            }
        }
        let (device, telemetry) = runtime();
        let proxy = TracedHttpProxy::new(
            Arc::new(Failing),
            device,
            &telemetry,
            Plane::Proxy,
            "android",
        );
        assert!(proxy.request("GET", "http://s/x", b"").is_err());
        let labels = Labels::call("Http", "request", "android");
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("proxy_errors_total", &labels),
            1
        );
        let spans = telemetry.tracer().finished();
        assert!(spans[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "error" && v == "Io"));
    }

    #[test]
    fn every_error_kind_has_a_static_name_matching_debug() {
        for kind in [
            ProxyErrorKind::Security,
            ProxyErrorKind::IllegalArgument,
            ProxyErrorKind::Unavailable,
            ProxyErrorKind::Io,
            ProxyErrorKind::UnsupportedOnPlatform,
            ProxyErrorKind::UnknownProperty,
            ProxyErrorKind::BadPropertyValue,
            ProxyErrorKind::MissingProperty,
            ProxyErrorKind::PolicyDenied,
            ProxyErrorKind::CircuitOpen,
            ProxyErrorKind::DeadlineExceeded,
            ProxyErrorKind::Overloaded,
        ] {
            assert_eq!(kind_name(kind), format!("{kind:?}"));
        }
    }

    #[test]
    fn blown_deadline_promotes_the_trace_and_pins_an_exemplar() {
        use mobivine_telemetry::PromotionReason;

        struct SlowLocation(Device);
        impl ProxyBase for SlowLocation {
            fn set_property(&self, _k: &str, _v: PropertyValue) -> Result<(), ProxyError> {
                Ok(())
            }
        }
        impl LocationProxy for SlowLocation {
            fn add_proximity_alert(
                &self,
                _latitude: f64,
                _longitude: f64,
                _altitude: f64,
                _radius: f64,
                _timer_s: i64,
                _listener: SharedProximityListener,
            ) -> Result<(), ProxyError> {
                Ok(())
            }
            fn remove_proximity_alert(
                &self,
                _listener: &SharedProximityListener,
            ) -> Result<bool, ProxyError> {
                Ok(true)
            }
            fn get_location(&self) -> Result<Location, ProxyError> {
                self.0.advance_ms(50);
                Ok(Location::default())
            }
        }

        let (device, telemetry) = runtime();
        let proxy = TracedLocationProxy::new(
            Arc::new(SlowLocation(device.clone())),
            device.clone(),
            &telemetry,
            Plane::Proxy,
            "android",
        );
        let deadline = crate::overload::Deadline::after(device.now_ms(), 10);
        crate::overload::with_deadline(deadline, || proxy.get_location().unwrap());

        let spans = telemetry.tracer().finished();
        assert!(spans[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "deadline" && v == "blown"));

        let store = telemetry.incidents().expect("recorder is on by default");
        assert_eq!(store.len(), 1, "blown deadline promotes the trace");
        let traces = store.traces();
        assert!(matches!(traces[0].reason, PromotionReason::DeadlineBlown));
        assert!(traces[0].complete, "promoted tree validates");

        let labels = Labels::call("Location", "getLocation", "android");
        let exemplars = telemetry
            .metrics()
            .histogram("proxy_call_ms", &labels)
            .exemplars();
        assert_eq!(exemplars.len(), 1, "promotion pins a bucket exemplar");
        assert_eq!(exemplars[0].1, traces[0].trace_id);
        assert_eq!(exemplars[0].2, 50, "exemplar carries the observed latency");
    }

    #[test]
    fn healthy_calls_within_deadline_are_not_promoted() {
        let (device, telemetry) = runtime();
        let proxy = TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device.clone(),
            &telemetry,
            Plane::Proxy,
            "android",
        );
        let deadline = crate::overload::Deadline::after(device.now_ms(), 100);
        crate::overload::with_deadline(deadline, || proxy.get_location().unwrap());
        assert!(telemetry.incidents().unwrap().is_empty());
        let labels = Labels::call("Location", "getLocation", "android");
        assert!(telemetry
            .metrics()
            .histogram("proxy_call_ms", &labels)
            .exemplars()
            .is_empty());
    }

    #[test]
    fn proxy_plane_feeds_slo_objectives() {
        use mobivine_telemetry::{SloObjective, SloTarget};

        let device = Device::builder().build();
        let engine = Arc::new(SloEngine::new(vec![
            SloObjective {
                name: "location-availability".into(),
                proxy: "Location".into(),
                method: "getLocation".into(),
                platform: "android".into(),
                target: SloTarget::Availability {
                    target_ppm: 999_000,
                },
            },
            SloObjective {
                name: "sms-availability".into(),
                proxy: "SMS".into(),
                method: "sendTextMessage".into(),
                platform: "android".into(),
                target: SloTarget::Availability {
                    target_ppm: 999_000,
                },
            },
        ]));
        let telemetry =
            TelemetryRuntime::new(Arc::clone(device.metrics())).with_slo(Arc::clone(&engine));
        let proxy = TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device.clone(),
            &telemetry,
            Plane::Proxy,
            "android",
        );
        for _ in 0..5 {
            proxy.get_location().unwrap();
        }
        let report = engine.report(device.now_ms());
        let status = &report.statuses[0];
        assert_eq!(status.fast.good, 5, "matching objective sees the calls");
        assert_eq!(status.fast.bad, 0);
        let sms = &report.statuses[1];
        assert_eq!(
            sms.fast.good + sms.fast.bad,
            0,
            "non-matching series stays idle"
        );
    }

    #[test]
    fn error_promotion_is_on_by_default() {
        use mobivine_telemetry::PromotionReason;

        struct Failing;
        impl ProxyBase for Failing {
            fn set_property(&self, _k: &str, _v: PropertyValue) -> Result<(), ProxyError> {
                Ok(())
            }
        }
        impl HttpProxy for Failing {
            fn request(&self, _m: &str, _u: &str, _b: &[u8]) -> Result<HttpResult, ProxyError> {
                Err(ProxyError::new(crate::error::ProxyErrorKind::Io, "down"))
            }
        }
        let (device, telemetry) = runtime();
        let proxy = TracedHttpProxy::new(
            Arc::new(Failing),
            device,
            &telemetry,
            Plane::Proxy,
            "android",
        );
        assert!(proxy.request("GET", "http://s/x", b"").is_err());
        let store = telemetry.incidents().unwrap();
        assert_eq!(store.promoted_total(), 1);
        assert!(matches!(&store.traces()[0].reason, PromotionReason::Error(kind) if kind == "Io"));
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("telemetry_traces_promoted_total", &Labels::empty()),
            1,
            "promotion bumps the registry counter"
        );
    }

    #[test]
    fn exported_trace_round_trips() {
        let (device, telemetry) = runtime();
        let proxy = TracedLocationProxy::new(
            Arc::new(FixedLocation),
            device,
            &telemetry,
            Plane::Proxy,
            "android",
        );
        proxy.get_location().unwrap();
        let json = chrome_trace_json(&telemetry.tracer().finished());
        validate_chrome_trace(&json).expect("valid chrome trace");
    }
}
